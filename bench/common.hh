/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses: the
 * standard sweep command line (--jobs/--json-dir/--no-cache/--quiet
 * plus the observability options --trace-out/--sample-interval/
 * --audit-log/--flight-out/--latency-json/--topn and --debug-flags),
 * SweepRunner construction, and config shorthands. All simulation
 * points flow through harness::RunRequest lists submitted to a
 * SweepRunner, so every harness parallelizes with --jobs, shares the
 * in-process result cache, and can emit Chrome traces, stat
 * time-series, security audit logs and flight-recorder latency
 * breakdowns for every simulated point.
 */

#ifndef CAPCHECK_BENCH_COMMON_HH
#define CAPCHECK_BENCH_COMMON_HH

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "base/table.hh"
#include "base/trace.hh"
#include "harness/sweep_runner.hh"
#include "system/soc_config_builder.hh"
#include "system/soc_system.hh"
#include "workloads/kernel.hh"

namespace capcheck::bench
{

inline void
printHeader(const std::string &what, const std::string &paper_ref)
{
    std::cout << "\n=== " << what << " (reproduces " << paper_ref
              << ") ===\n";
}

/** The options every bench harness accepts. */
struct BenchOptions
{
    unsigned jobs = 0;   ///< --jobs N (0 = hardware concurrency)
    std::string jsonDir; ///< --json-dir DIR ("" = no JSON output)
    bool cache = true;   ///< --no-cache disables result reuse
    bool quiet = false;  ///< --quiet silences progress lines

    /** --trace-out DIR: per-run Chrome trace timelines. */
    std::string traceOut;
    /** --sample-interval N: stat snapshots every N cycles. */
    Cycles sampleInterval = 0;
    /** --audit-log DIR: per-run JSONL security audit logs. */
    std::string auditLog;
    /** --flight-out DIR: per-run top-N-slowest-flight tables. */
    std::string flightOut;
    /** --latency-json DIR: per-run latency histograms (p50/p95/p99). */
    std::string latencyJson;
    /** --topn N: slowest flights kept per run. */
    unsigned topN = 10;
};

inline void
printUsage(const char *argv0)
{
    std::cout
        << "usage: " << argv0
        << " [--jobs N] [--json-dir DIR] [--no-cache] [--quiet]\n"
        << "       [--trace-out DIR] [--sample-interval N]"
        << " [--audit-log DIR]\n"
        << "       [--flight-out DIR] [--latency-json DIR] [--topn N]"
        << " [--debug-flags LIST]\n"
        << "  --jobs N            worker threads (default: all cores)\n"
        << "  --json-dir DIR      write run-<hash>.json + manifest\n"
        << "  --no-cache          re-simulate repeated requests\n"
        << "  --quiet             no per-run progress lines on stderr\n"
        << "  --trace-out DIR     write run-<hash>.trace.json Chrome\n"
        << "                      trace timelines (Perfetto-loadable)\n"
        << "  --sample-interval N snapshot stats every N cycles into\n"
        << "                      run-<hash>.samples.json\n"
        << "  --audit-log DIR     write run-<hash>.audit.jsonl\n"
        << "                      security audit logs\n"
        << "  --flight-out DIR    write run-<hash>.flights.json tables\n"
        << "                      of the slowest DMA requests with\n"
        << "                      per-hop latency breakdowns\n"
        << "  --latency-json DIR  write run-<hash>.latency.json log2\n"
        << "                      latency histograms (p50/p95/p99) and\n"
        << "                      per-component cycle attribution\n"
        << "  --topn N            slowest flights kept per run (10)\n"
        << "  --debug-flags LIST  enable debug flags (? lists them)\n";
}

inline BenchOptions
parseOptions(int argc, char **argv)
{
    // Honour CAPCHECK_DEBUG in every harness, not just the examples.
    trace::DebugFlag::applyEnvironment();

    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs an argument\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--jobs" || arg == "-j") {
            opts.jobs = static_cast<unsigned>(std::atoi(next()));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opts.jobs = static_cast<unsigned>(
                std::atoi(arg.c_str() + std::strlen("--jobs=")));
        } else if (arg == "--json-dir") {
            opts.jsonDir = next();
        } else if (arg.rfind("--json-dir=", 0) == 0) {
            opts.jsonDir = arg.substr(std::strlen("--json-dir="));
        } else if (arg == "--no-cache") {
            opts.cache = false;
        } else if (arg == "--trace-out") {
            opts.traceOut = next();
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            opts.traceOut = arg.substr(std::strlen("--trace-out="));
        } else if (arg == "--sample-interval") {
            opts.sampleInterval =
                static_cast<Cycles>(std::atoll(next()));
        } else if (arg.rfind("--sample-interval=", 0) == 0) {
            opts.sampleInterval = static_cast<Cycles>(std::atoll(
                arg.c_str() + std::strlen("--sample-interval=")));
        } else if (arg == "--audit-log") {
            opts.auditLog = next();
        } else if (arg.rfind("--audit-log=", 0) == 0) {
            opts.auditLog = arg.substr(std::strlen("--audit-log="));
        } else if (arg == "--flight-out") {
            opts.flightOut = next();
        } else if (arg.rfind("--flight-out=", 0) == 0) {
            opts.flightOut = arg.substr(std::strlen("--flight-out="));
        } else if (arg == "--latency-json") {
            opts.latencyJson = next();
        } else if (arg.rfind("--latency-json=", 0) == 0) {
            opts.latencyJson =
                arg.substr(std::strlen("--latency-json="));
        } else if (arg == "--topn") {
            opts.topN = static_cast<unsigned>(std::atoi(next()));
        } else if (arg.rfind("--topn=", 0) == 0) {
            opts.topN = static_cast<unsigned>(
                std::atoi(arg.c_str() + std::strlen("--topn=")));
        } else if (arg == "--debug-flags") {
            const std::string list = next();
            if (list == "?") {
                trace::DebugFlag::listFlags(std::cout);
                std::exit(0);
            }
            trace::DebugFlag::applyList(list);
        } else if (arg.rfind("--debug-flags=", 0) == 0) {
            const std::string list =
                arg.substr(std::strlen("--debug-flags="));
            if (list == "?") {
                trace::DebugFlag::listFlags(std::cout);
                std::exit(0);
            }
            trace::DebugFlag::applyList(list);
        } else if (arg == "--quiet" || arg == "-q") {
            opts.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            std::exit(0);
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            printUsage(argv[0]);
            std::exit(2);
        }
    }
    return opts;
}

inline harness::SweepRunner::Options
toRunnerOptions(const BenchOptions &opts)
{
    harness::SweepRunner::Options ro;
    ro.jobs = opts.jobs;
    ro.cacheEnabled = opts.cache;
    ro.progress = opts.quiet ? nullptr : &std::cerr;
    ro.jsonDir = opts.jsonDir;
    ro.traceDir = opts.traceOut;
    ro.sampleInterval = opts.sampleInterval;
    ro.auditDir = opts.auditLog;
    ro.flightDir = opts.flightOut;
    ro.latencyDir = opts.latencyJson;
    ro.topN = opts.topN;
    return ro;
}

/** Parse the standard command line and build the harness runner. */
inline harness::SweepRunner
makeRunner(int argc, char **argv)
{
    return harness::SweepRunner(toRunnerOptions(parseOptions(argc,
                                                             argv)));
}

/** Validated SocConfig for @p mode with default platform parameters. */
inline system::SocConfig
modeConfig(system::SystemMode mode, std::uint64_t seed = 1)
{
    return system::SocConfigBuilder().mode(mode).seed(seed).build();
}

/**
 * Run one benchmark under one mode with default parameters.
 *
 * @deprecated The serial pre-SweepRunner entry point; it also kept the
 * silent num_tasks = 0 convention. Build an explicit
 * harness::RunRequest (which resolves the task count at construction)
 * and submit it to a SweepRunner instead. This shim forwards to the
 * process-wide serial runner so legacy callers still benefit from the
 * result cache.
 */
[[deprecated("build a harness::RunRequest and submit it to a "
             "SweepRunner")]]
inline system::RunResult
runMode(const std::string &benchmark, system::SystemMode mode,
        unsigned num_tasks = 0, std::uint64_t seed = 1)
{
    return harness::SweepRunner::shared().runOne(
        harness::RunRequest::single(benchmark, modeConfig(mode, seed),
                                    num_tasks));
}

} // namespace capcheck::bench

#endif // CAPCHECK_BENCH_COMMON_HH
