/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses: the
 * standard sweep command line (--jobs/--json-dir/--no-cache/--quiet
 * plus the observability options --trace-out/--sample-interval/
 * --audit-log/--flight-out/--latency-json/--topn and --debug-flags),
 * SweepRunner construction, and config shorthands. All simulation
 * points flow through harness::RunRequest lists submitted to a
 * SweepRunner, so every harness parallelizes with --jobs, shares the
 * in-process result cache, and can emit Chrome traces, stat
 * time-series, security audit logs and flight-recorder latency
 * breakdowns for every simulated point.
 */

#ifndef CAPCHECK_BENCH_COMMON_HH
#define CAPCHECK_BENCH_COMMON_HH

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "base/table.hh"
#include "base/trace.hh"
#include "harness/sweep_runner.hh"
#include "system/soc_config_builder.hh"
#include "system/soc_system.hh"
#include "system/topology.hh"
#include "workloads/kernel.hh"

namespace capcheck::bench
{

namespace detail
{
/**
 * The --topology file from the last parseOptions() call. modeConfig()
 * folds it into every SocConfig so one flag retargets a whole
 * harness's sweep without touching each request-building loop.
 */
inline std::string cliTopologyFile; // NOLINT(cert-err58-cpp)
/**
 * True when the loaded file forces a checker scheme ("capchecker" /
 * "checker_bank" rather than "auto"): such a shape can only elaborate
 * under modes with a CHERI CPU, so modeConfig() keeps the builtin
 * shape for the non-CHERI points instead of fataling mid-sweep.
 */
inline bool cliTopologyNeedsChecker = false;
} // namespace detail

inline void
printHeader(const std::string &what, const std::string &paper_ref)
{
    std::cout << "\n=== " << what << " (reproduces " << paper_ref
              << ") ===\n";
}

/** The options every bench harness accepts. */
struct BenchOptions
{
    unsigned jobs = 0;   ///< --jobs N (0 = hardware concurrency)
    std::string jsonDir; ///< --json-dir DIR ("" = no JSON output)
    bool cache = true;   ///< --no-cache disables result reuse
    bool quiet = false;  ///< --quiet silences progress lines

    /** --trace-out DIR: per-run Chrome trace timelines. */
    std::string traceOut;
    /** --sample-interval N: stat snapshots every N cycles. */
    Cycles sampleInterval = 0;
    /** --audit-log DIR: per-run JSONL security audit logs. */
    std::string auditLog;
    /** --flight-out DIR: per-run top-N-slowest-flight tables. */
    std::string flightOut;
    /** --latency-json DIR: per-run latency histograms (p50/p95/p99). */
    std::string latencyJson;
    /** --topn N: slowest flights kept per run. */
    unsigned topN = 10;

    /** --topology FILE: JSON platform topology for every run. */
    std::string topology;
    /** --dump-topology[=MODE]: print canonical topology JSON, exit. */
    bool dumpTopology = false;
    /** Builtin dumped when no --topology file names one. */
    std::string dumpTopologyMode = "ccpu+caccel";
};

inline void
printUsage(const char *argv0)
{
    std::cout
        << "usage: " << argv0
        << " [--jobs N] [--json-dir DIR] [--no-cache] [--quiet]\n"
        << "       [--trace-out DIR] [--sample-interval N]"
        << " [--audit-log DIR]\n"
        << "       [--flight-out DIR] [--latency-json DIR] [--topn N]"
        << " [--debug-flags LIST]\n"
        << "       [--topology FILE] [--dump-topology]\n"
        << "  --jobs N            worker threads (default: all cores)\n"
        << "  --json-dir DIR      write run-<hash>.json + manifest\n"
        << "  --no-cache          re-simulate repeated requests\n"
        << "  --quiet             no per-run progress lines on stderr\n"
        << "  --trace-out DIR     write run-<hash>.trace.json Chrome\n"
        << "                      trace timelines (Perfetto-loadable)\n"
        << "  --sample-interval N snapshot stats every N cycles into\n"
        << "                      run-<hash>.samples.json\n"
        << "  --audit-log DIR     write run-<hash>.audit.jsonl\n"
        << "                      security audit logs\n"
        << "  --flight-out DIR    write run-<hash>.flights.json tables\n"
        << "                      of the slowest DMA requests with\n"
        << "                      per-hop latency breakdowns\n"
        << "  --latency-json DIR  write run-<hash>.latency.json log2\n"
        << "                      latency histograms (p50/p95/p99) and\n"
        << "                      per-component cycle attribution\n"
        << "  --topn N            slowest flights kept per run (10)\n"
        << "  --topology FILE     load the platform topology from a\n"
        << "                      JSON file instead of the builtin\n"
        << "                      shape for each mode\n"
        << "  --dump-topology     print the (builtin or loaded)\n"
        << "                      topology as canonical JSON and exit\n"
        << "  --debug-flags LIST  enable debug flags (? lists them)\n";
}

inline BenchOptions
parseOptions(int argc, char **argv)
{
    // Honour CAPCHECK_DEBUG in every harness, not just the examples.
    trace::DebugFlag::applyEnvironment();

    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs an argument\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--jobs" || arg == "-j") {
            opts.jobs = static_cast<unsigned>(std::atoi(next()));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opts.jobs = static_cast<unsigned>(
                std::atoi(arg.c_str() + std::strlen("--jobs=")));
        } else if (arg == "--json-dir") {
            opts.jsonDir = next();
        } else if (arg.rfind("--json-dir=", 0) == 0) {
            opts.jsonDir = arg.substr(std::strlen("--json-dir="));
        } else if (arg == "--no-cache") {
            opts.cache = false;
        } else if (arg == "--trace-out") {
            opts.traceOut = next();
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            opts.traceOut = arg.substr(std::strlen("--trace-out="));
        } else if (arg == "--sample-interval") {
            opts.sampleInterval =
                static_cast<Cycles>(std::atoll(next()));
        } else if (arg.rfind("--sample-interval=", 0) == 0) {
            opts.sampleInterval = static_cast<Cycles>(std::atoll(
                arg.c_str() + std::strlen("--sample-interval=")));
        } else if (arg == "--audit-log") {
            opts.auditLog = next();
        } else if (arg.rfind("--audit-log=", 0) == 0) {
            opts.auditLog = arg.substr(std::strlen("--audit-log="));
        } else if (arg == "--flight-out") {
            opts.flightOut = next();
        } else if (arg.rfind("--flight-out=", 0) == 0) {
            opts.flightOut = arg.substr(std::strlen("--flight-out="));
        } else if (arg == "--latency-json") {
            opts.latencyJson = next();
        } else if (arg.rfind("--latency-json=", 0) == 0) {
            opts.latencyJson =
                arg.substr(std::strlen("--latency-json="));
        } else if (arg == "--topology") {
            opts.topology = next();
        } else if (arg.rfind("--topology=", 0) == 0) {
            opts.topology = arg.substr(std::strlen("--topology="));
        } else if (arg == "--dump-topology" ||
                   arg.rfind("--dump-topology=", 0) == 0) {
            opts.dumpTopology = true;
            if (arg.rfind("--dump-topology=", 0) == 0)
                opts.dumpTopologyMode =
                    arg.substr(std::strlen("--dump-topology="));
        } else if (arg == "--topn") {
            opts.topN = static_cast<unsigned>(std::atoi(next()));
        } else if (arg.rfind("--topn=", 0) == 0) {
            opts.topN = static_cast<unsigned>(
                std::atoi(arg.c_str() + std::strlen("--topn=")));
        } else if (arg == "--debug-flags") {
            const std::string list = next();
            if (list == "?") {
                trace::DebugFlag::listFlags(std::cout);
                std::exit(0);
            }
            trace::DebugFlag::applyList(list);
        } else if (arg.rfind("--debug-flags=", 0) == 0) {
            const std::string list =
                arg.substr(std::strlen("--debug-flags="));
            if (list == "?") {
                trace::DebugFlag::listFlags(std::cout);
                std::exit(0);
            }
            trace::DebugFlag::applyList(list);
        } else if (arg == "--quiet" || arg == "-q") {
            opts.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            std::exit(0);
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            printUsage(argv[0]);
            std::exit(2);
        }
    }
    detail::cliTopologyFile = opts.topology;
    if (!opts.topology.empty() && !opts.dumpTopology) {
        // Fail at the command line, not mid-sweep: a missing or
        // malformed file is an argument error, not a simulation one.
        try {
            const system::Topology topo =
                system::Topology::loadFile(opts.topology);
            for (const system::TopologyNode &node : topo.nodes) {
                if (node.kind != "protect")
                    continue;
                const json::JsonValue *scheme =
                    node.params.get("scheme");
                if (scheme && (scheme->asString() == "capchecker" ||
                               scheme->asString() == "checker_bank"))
                    detail::cliTopologyNeedsChecker = true;
            }
        } catch (const system::TopologyError &e) {
            std::cerr << e.what() << "\n";
            std::exit(2);
        }
    }
    if (opts.dumpTopology) {
        try {
            const system::Topology topo =
                !opts.topology.empty()
                    ? system::Topology::loadFile(opts.topology)
                    : system::Topology::builtinByName(
                          opts.dumpTopologyMode);
            std::cout << topo.toJsonText();
            std::exit(0);
        } catch (const system::TopologyError &e) {
            std::cerr << e.what() << "\n";
            std::exit(2);
        }
    }
    return opts;
}

inline harness::SweepRunner::Options
toRunnerOptions(const BenchOptions &opts)
{
    harness::SweepRunner::Options ro;
    ro.jobs = opts.jobs;
    ro.cacheEnabled = opts.cache;
    ro.progress = opts.quiet ? nullptr : &std::cerr;
    ro.jsonDir = opts.jsonDir;
    ro.traceDir = opts.traceOut;
    ro.sampleInterval = opts.sampleInterval;
    ro.auditDir = opts.auditLog;
    ro.flightDir = opts.flightOut;
    ro.latencyDir = opts.latencyJson;
    ro.topN = opts.topN;
    return ro;
}

/** Parse the standard command line and build the harness runner. */
inline harness::SweepRunner
makeRunner(int argc, char **argv)
{
    return harness::SweepRunner(toRunnerOptions(parseOptions(argc,
                                                             argv)));
}

/**
 * Validated SocConfig for @p mode with default platform parameters.
 * Honours the harness-wide --topology flag: when one was parsed, every
 * accelerator-mode config (and therefore every RunRequest) elaborates
 * that file. CPU-only modes have no platform to shape, so harnesses
 * that mix cpu and accel points keep working under --topology.
 */
inline system::SocConfig
modeConfig(system::SystemMode mode, std::uint64_t seed = 1)
{
    return system::SocConfigBuilder()
        .mode(mode)
        .seed(seed)
        .topologyFile(system::modeUsesAccel(mode) &&
                              (!detail::cliTopologyNeedsChecker ||
                               system::modeUsesCapChecker(mode))
                          ? detail::cliTopologyFile
                          : std::string())
        .build();
}

} // namespace capcheck::bench

#endif // CAPCHECK_BENCH_COMMON_HH
