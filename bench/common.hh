/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses: the
 * standard sweep command line (--jobs/--json-dir/--no-cache/--quiet),
 * SweepRunner construction, and config shorthands. All simulation
 * points flow through harness::RunRequest lists submitted to a
 * SweepRunner, so every harness parallelizes with --jobs and shares
 * the in-process result cache.
 */

#ifndef CAPCHECK_BENCH_COMMON_HH
#define CAPCHECK_BENCH_COMMON_HH

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "base/table.hh"
#include "harness/sweep_runner.hh"
#include "system/soc_config_builder.hh"
#include "system/soc_system.hh"
#include "workloads/kernel.hh"

namespace capcheck::bench
{

inline void
printHeader(const std::string &what, const std::string &paper_ref)
{
    std::cout << "\n=== " << what << " (reproduces " << paper_ref
              << ") ===\n";
}

/** The options every bench harness accepts. */
struct BenchOptions
{
    unsigned jobs = 0;   ///< --jobs N (0 = hardware concurrency)
    std::string jsonDir; ///< --json-dir DIR ("" = no JSON output)
    bool cache = true;   ///< --no-cache disables result reuse
    bool quiet = false;  ///< --quiet silences progress lines
};

inline void
printUsage(const char *argv0)
{
    std::cout
        << "usage: " << argv0
        << " [--jobs N] [--json-dir DIR] [--no-cache] [--quiet]\n"
        << "  --jobs N       worker threads (default: all cores)\n"
        << "  --json-dir DIR write run-<hash>.json + manifest there\n"
        << "  --no-cache     re-simulate repeated requests\n"
        << "  --quiet        no per-run progress lines on stderr\n";
}

inline BenchOptions
parseOptions(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs an argument\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--jobs" || arg == "-j") {
            opts.jobs = static_cast<unsigned>(std::atoi(next()));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opts.jobs = static_cast<unsigned>(
                std::atoi(arg.c_str() + std::strlen("--jobs=")));
        } else if (arg == "--json-dir") {
            opts.jsonDir = next();
        } else if (arg.rfind("--json-dir=", 0) == 0) {
            opts.jsonDir = arg.substr(std::strlen("--json-dir="));
        } else if (arg == "--no-cache") {
            opts.cache = false;
        } else if (arg == "--quiet" || arg == "-q") {
            opts.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            std::exit(0);
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            printUsage(argv[0]);
            std::exit(2);
        }
    }
    return opts;
}

inline harness::SweepRunner::Options
toRunnerOptions(const BenchOptions &opts)
{
    harness::SweepRunner::Options ro;
    ro.jobs = opts.jobs;
    ro.cacheEnabled = opts.cache;
    ro.progress = opts.quiet ? nullptr : &std::cerr;
    ro.jsonDir = opts.jsonDir;
    return ro;
}

/** Parse the standard command line and build the harness runner. */
inline harness::SweepRunner
makeRunner(int argc, char **argv)
{
    return harness::SweepRunner(toRunnerOptions(parseOptions(argc,
                                                             argv)));
}

/** Validated SocConfig for @p mode with default platform parameters. */
inline system::SocConfig
modeConfig(system::SystemMode mode, std::uint64_t seed = 1)
{
    return system::SocConfigBuilder().mode(mode).seed(seed).build();
}

/**
 * Run one benchmark under one mode with default parameters.
 *
 * @deprecated The serial pre-SweepRunner entry point; it also kept the
 * silent num_tasks = 0 convention. Build an explicit
 * harness::RunRequest (which resolves the task count at construction)
 * and submit it to a SweepRunner instead. This shim forwards to the
 * process-wide serial runner so legacy callers still benefit from the
 * result cache.
 */
[[deprecated("build a harness::RunRequest and submit it to a "
             "SweepRunner")]]
inline system::RunResult
runMode(const std::string &benchmark, system::SystemMode mode,
        unsigned num_tasks = 0, std::uint64_t seed = 1)
{
    return harness::SweepRunner::shared().runOne(
        harness::RunRequest::single(benchmark, modeConfig(mode, seed),
                                    num_tasks));
}

} // namespace capcheck::bench

#endif // CAPCHECK_BENCH_COMMON_HH
