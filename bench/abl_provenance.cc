/**
 * @file
 * Ablation: Fine vs Coarse provenance (Fig. 5's two CapChecker
 * implementations). Performance should be essentially identical — the
 * modes differ in *security granularity* (Table 3), not in datapath
 * cost — which this harness verifies across all benchmarks via one
 * 38-point SweepRunner request list.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "bench/common.hh"

using namespace capcheck;
using system::SystemMode;

int
main(int argc, char **argv)
{
    auto runner = bench::makeSweeper(argc, argv);
    bench::printHeader("Ablation: Fine vs Coarse provenance", "Fig. 5");

    const auto &names = workloads::allKernelNames();
    std::vector<harness::RunRequest> requests;
    for (const std::string &name : names) {
        for (const capchecker::Provenance prov :
             {capchecker::Provenance::fine,
              capchecker::Provenance::coarse}) {
            requests.push_back(harness::RunRequest::single(
                name, system::SocConfigBuilder()
                          .mode(SystemMode::ccpuCaccel)
                          .provenance(prov)
                          .build()));
        }
    }

    const auto outcomes = runner.run(requests, "abl_provenance");

    TextTable table({"Benchmark", "Fine cycles", "Coarse cycles",
                     "Delta", "Both correct"});

    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &fine = outcomes[2 * i].result;
        const auto &coarse = outcomes[2 * i + 1].result;

        table.addRow({names[i], std::to_string(fine.totalCycles),
                      std::to_string(coarse.totalCycles),
                      fmtPercent(coarse.overheadVs(fine)),
                      (fine.functionallyCorrect &&
                       coarse.functionallyCorrect)
                          ? "yes"
                          : "NO"});
    }
    table.print(std::cout);

    std::cout << "\nExpectation: near-zero performance difference; the "
                 "modes trade security granularity (OB vs TA), not "
                 "cycles.\n";
    return 0;
}
