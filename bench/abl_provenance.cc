/**
 * @file
 * Ablation: Fine vs Coarse provenance (Fig. 5's two CapChecker
 * implementations). Performance should be essentially identical — the
 * modes differ in *security granularity* (Table 3), not in datapath
 * cost — which this harness verifies across all benchmarks.
 */

#include <iostream>

#include "base/table.hh"
#include "bench/common.hh"

using namespace capcheck;
using system::SystemMode;

int
main()
{
    bench::printHeader("Ablation: Fine vs Coarse provenance", "Fig. 5");

    TextTable table({"Benchmark", "Fine cycles", "Coarse cycles",
                     "Delta", "Both correct"});

    for (const std::string &name : workloads::allKernelNames()) {
        system::SocConfig cfg;
        cfg.mode = SystemMode::ccpuCaccel;
        cfg.provenance = capchecker::Provenance::fine;
        const auto fine = system::SocSystem(cfg).runBenchmark(name);
        cfg.provenance = capchecker::Provenance::coarse;
        const auto coarse = system::SocSystem(cfg).runBenchmark(name);

        table.addRow({name, std::to_string(fine.totalCycles),
                      std::to_string(coarse.totalCycles),
                      fmtPercent(coarse.overheadVs(fine)),
                      (fine.functionallyCorrect &&
                       coarse.functionallyCorrect)
                          ? "yes"
                          : "NO"});
    }
    table.print(std::cout);

    std::cout << "\nExpectation: near-zero performance difference; the "
                 "modes trade security granularity (OB vs TA), not "
                 "cycles.\n";
    return 0;
}
