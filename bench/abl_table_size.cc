/**
 * @file
 * Ablation (Section 5.2.3 / 6.3): capability-table size. Sweeps the
 * CapChecker table from 8 to 1024 entries, reporting the modelled area
 * and whether each benchmark's 8-instance working set fits without
 * driver stalls — including the CFU-class sub-100-LUT configuration
 * the paper describes for TinyML systems.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "bench/common.hh"
#include "model/area_power.hh"

using namespace capcheck;
using system::SystemMode;

int
main(int argc, char **argv)
{
    auto runner = bench::makeSweeper(argc, argv);
    bench::printHeader("Ablation: capability-table size",
                       "Sections 5.2.3 and 6.3");

    TextTable table({"Entries", "LUTs", "Benchmarks fitting (of 19)",
                     "Largest working set"});

    unsigned max_ws = 0;
    std::string max_name;
    for (const std::string &name : workloads::allKernelNames()) {
        const unsigned ws = static_cast<unsigned>(
            workloads::kernelSpec(name).buffers.size() * 8);
        if (ws > max_ws) {
            max_ws = ws;
            max_name = name;
        }
    }

    for (const unsigned entries : {2u, 8u, 16u, 32u, 64u, 128u, 256u,
                                   512u, 1024u}) {
        unsigned fitting = 0;
        for (const std::string &name : workloads::allKernelNames()) {
            const unsigned ws = static_cast<unsigned>(
                workloads::kernelSpec(name).buffers.size() * 8);
            fitting += ws <= entries;
        }
        table.addRow(
            {std::to_string(entries),
             std::to_string(model::AreaPowerModel::capCheckerLuts(
                 entries)),
             std::to_string(fitting),
             max_name + " (" + std::to_string(max_ws) + ")"});
    }
    table.print(std::cout);

    // Timing impact of an undersized table: the driver stalls and
    // tasks serialize into waves (Fig. 6's stall behaviour).
    std::cout << "\nWave serialization under table pressure "
                 "(gemm_ncubed, 3 capabilities per task, 8 tasks):\n";

    const std::vector<unsigned> entry_sweep = {3, 6, 12, 24, 256};

    std::vector<harness::RunRequest> requests;
    requests.push_back(harness::RunRequest::single(
        "gemm_ncubed", bench::modeConfig(SystemMode::ccpuCaccel)));
    for (const unsigned entries : entry_sweep) {
        requests.push_back(harness::RunRequest::single(
            "gemm_ncubed", system::SocConfigBuilder()
                               .mode(SystemMode::ccpuCaccel)
                               .capTableEntries(entries)
                               .build()));
    }

    const auto outcomes = runner.run(requests, "abl_table_size");
    const auto &full = outcomes[0].result;

    TextTable waves({"Entries", "Tasks per wave", "Total cycles",
                     "vs 256 entries"});
    for (std::size_t e = 0; e < entry_sweep.size(); ++e) {
        const auto &r = outcomes[1 + e].result;
        waves.addRow(
            {std::to_string(entry_sweep[e]),
             std::to_string(entry_sweep[e] / 3),
             std::to_string(r.totalCycles),
             fmtPercent(static_cast<double>(r.totalCycles) /
                            static_cast<double>(full.totalCycles) -
                        1.0)});
    }
    waves.print(std::cout);

    std::cout << "\nPaper anchors: 256 entries ~30k LUTs and fits every "
                 "benchmark; a CFU-class checker (couple of entries) "
                 "costs under 100 LUTs; an undersized table forces the "
                 "driver to stall tasks until evictions free entries.\n";
    return 0;
}
