/**
 * @file
 * Reproduces Fig. 8: performance, power, and circuit-area overhead of
 * adding the CapChecker (ccpu+caccel vs ccpu+accel), per benchmark
 * plus the geometric mean. Area and power come from the analytic FPGA
 * model (DESIGN.md records this substitution for Vivado P&R reports).
 * The 38 simulation points run through the SweepRunner.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "bench/common.hh"
#include "model/area_power.hh"

using namespace capcheck;
using system::SystemMode;

int
main(int argc, char **argv)
{
    auto runner = bench::makeSweeper(argc, argv);
    bench::printHeader(
        "Fig. 8: overhead of adding the CapChecker per benchmark",
        "Fig. 8");

    const auto &names = workloads::allKernelNames();
    std::vector<harness::RunRequest> requests;
    for (const std::string &name : names) {
        requests.push_back(harness::RunRequest::single(
            name, bench::modeConfig(SystemMode::ccpuAccel)));
        requests.push_back(harness::RunRequest::single(
            name, bench::modeConfig(SystemMode::ccpuCaccel)));
    }

    const auto outcomes = runner.run(requests, "fig8_overhead");

    TextTable table({"Benchmark", "Perf overhead", "Power overhead",
                     "Area overhead", "base cycles", "w/ checker"});

    std::vector<double> perf_ratios;
    std::vector<double> power_ratios;
    std::vector<double> area_ratios;

    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const auto &base = outcomes[2 * i].result;
        const auto &with = outcomes[2 * i + 1].result;
        const double perf = with.overheadVs(base);

        // Area: CPU + accelerator pool, with/without the CapChecker.
        const auto &spec = workloads::kernelSpec(name);
        const std::uint64_t base_luts =
            model::AreaPowerModel::cpuLuts(true) +
            model::AreaPowerModel::accelLuts(spec, 8);
        const std::uint64_t cap_luts =
            model::AreaPowerModel::capCheckerLuts(256);
        const double area =
            static_cast<double>(cap_luts) /
            static_cast<double>(base_luts);

        // Power: switching activity = DMA beats per cycle.
        const double act_base =
            static_cast<double>(base.dmaBeats) /
            static_cast<double>(base.totalCycles);
        const double act_with =
            static_cast<double>(with.dmaBeats) /
            static_cast<double>(with.totalCycles);
        const double p_base =
            model::AreaPowerModel::totalPowerW(base_luts, act_base);
        const double p_with =
            model::AreaPowerModel::totalPowerW(base_luts, act_with) +
            model::AreaPowerModel::capCheckerPowerW(256, act_with);
        const double power = p_with / p_base - 1.0;

        perf_ratios.push_back(1.0 + perf);
        power_ratios.push_back(1.0 + power);
        area_ratios.push_back(1.0 + area);

        table.addRow({name, fmtPercent(perf), fmtPercent(power),
                      fmtPercent(area),
                      std::to_string(base.totalCycles),
                      std::to_string(with.totalCycles)});
    }

    table.addRow({"geomean",
                  fmtPercent(system::geometricMean(perf_ratios) - 1.0),
                  fmtPercent(system::geometricMean(power_ratios) - 1.0),
                  fmtPercent(system::geometricMean(area_ratios) - 1.0),
                  "-", "-"});
    table.print(std::cout);

    std::cout << "\nPaper expectation: performance overhead within 5% "
                 "for most benchmarks (1.4% mean), md_knn the outlier "
                 "because its absolute run is short; area overhead "
                 "~15% (256-entry CapChecker ~30k LUTs); power "
                 "overhead small.\n";
    return 0;
}
