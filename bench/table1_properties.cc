/**
 * @file
 * Reproduces Table 1: comparison of traditional hardware protection
 * methods for controlling device memory accesses. Properties are read
 * from the live checker models rather than hard-coded prose.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "base/table.hh"
#include "bench/common.hh"
#include "capchecker/capchecker.hh"
#include "protect/iommu.hh"
#include "protect/iopmp.hh"
#include "protect/no_protection.hh"

using namespace capcheck;

namespace
{

std::string
yesNo(bool v)
{
    return v ? "yes" : "no";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseOptions(argc, argv); // uniform CLI; no simulations here
    std::cout << "=== Table 1: hardware protection methods for device "
                 "memory accesses ===\n";

    protect::NoProtection none;
    protect::Iopmp iopmp;
    protect::Iommu iommu;
    capchecker::CapChecker cheri;

    std::vector<protect::SchemeProperties> cols = {
        none.properties(), iopmp.properties(), iommu.properties(),
        cheri.properties()};
    cols[3].name = "CHERI (CapChecker)";

    TextTable table({"Property", cols[0].name, cols[1].name,
                     cols[2].name, cols[3].name});

    auto row = [&](const std::string &label, auto getter) {
        std::vector<std::string> cells = {label};
        for (const auto &col : cols)
            cells.push_back(getter(col));
        table.addRow(cells);
    };

    row("Spatial enforcement", [](const auto &c) {
        return yesNo(c.spatialEnforcement);
    });
    row("- granularity (bytes)", [](const auto &c) {
        return c.spatialEnforcement ? std::to_string(c.granularityBytes)
                                    : std::string("-");
    });
    row("Common object representation", [](const auto &c) {
        return yesNo(c.commonObjectRepresentation);
    });
    row("Unforgeability",
        [](const auto &c) { return yesNo(c.unforgeable); });
    row("Scalability", [](const auto &c) { return c.scalable; });
    row("Address translation",
        [](const auto &c) { return c.addressTranslation; });
    row("Suitable for microcontrollers", [](const auto &c) {
        return yesNo(c.suitsMicrocontrollers);
    });
    row("Suitable for application processors", [](const auto &c) {
        return yesNo(c.suitsApplicationProcessors);
    });

    table.print(std::cout);
    std::cout << "\nPaper reference values: CHERI granularity 1 B, "
                 "IOMMU 4096 B, IOPMP 1 B; only CHERI is unforgeable "
                 "with a common object representation.\n";
    return 0;
}
