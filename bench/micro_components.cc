/**
 * @file
 * google-benchmark microbenchmarks of the hardware-model hot paths:
 * CHERI-Concentrate encode/decode, CapChecker request checks in both
 * provenance modes, capability-table operations, and the IOMMU check
 * path. These guard the simulator's own performance and document the
 * relative functional cost of each protection scheme.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "base/random.hh"
#include "capchecker/capchecker.hh"
#include "cheri/compressed.hh"
#include "protect/iommu.hh"
#include "protect/iopmp.hh"

using namespace capcheck;

namespace
{

void
BM_CcEncode(benchmark::State &state)
{
    Rng rng(7);
    std::uint64_t i = 0;
    for (auto _ : state) {
        const Addr base = (rng.next() & 0x00ffffffffff00ull);
        const std::uint64_t len = 1 + (rng.next() & 0xffffff);
        benchmark::DoNotOptimize(
            cheri::ccEncode(base, u128(base) + len));
        ++i;
    }
}
BENCHMARK(BM_CcEncode);

void
BM_CcDecode(benchmark::State &state)
{
    const auto enc = cheri::ccEncode(0x10000, 0x10000 + 0x4321);
    Addr addr = 0x10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cheri::ccDecode(enc.pesbt, addr));
        addr += 16;
        if (addr >= 0x10000 + 0x4000)
            addr = 0x10000;
    }
}
BENCHMARK(BM_CcDecode);

std::unique_ptr<capchecker::CapChecker>
makeLoadedChecker(capchecker::Provenance prov, unsigned tasks,
                  unsigned objects)
{
    capchecker::CapChecker::Params params;
    params.provenance = prov;
    auto checker_ptr = std::make_unique<capchecker::CapChecker>(params);
    capchecker::CapChecker &checker = *checker_ptr;
    const cheri::Capability root = cheri::Capability::root();
    for (TaskId t = 0; t < tasks; ++t) {
        for (ObjectId o = 0; o < objects; ++o) {
            checker.installCapability(
                t, o,
                root.setBounds(0x100000ull * (t * objects + o + 1),
                               0x1000)
                    .andPerms(cheri::permDataRW));
        }
    }
    return checker_ptr;
}

void
BM_CapCheckerFine(benchmark::State &state)
{
    auto checker = makeLoadedChecker(capchecker::Provenance::fine, 8,
                                     static_cast<unsigned>(
                                         state.range(0)));
    MemRequest req;
    req.cmd = MemCmd::read;
    req.size = 8;
    req.task = 3;
    req.object = static_cast<ObjectId>(state.range(0) / 2);
    req.addr = 0x100000ull * (3 * state.range(0) + req.object + 1) + 64;
    for (auto _ : state)
        benchmark::DoNotOptimize(checker->check(req));
}
BENCHMARK(BM_CapCheckerFine)->Arg(3)->Arg(7)->Arg(16);

void
BM_CapCheckerCoarse(benchmark::State &state)
{
    auto checker = makeLoadedChecker(capchecker::Provenance::coarse, 8,
                                     7);
    MemRequest req;
    req.cmd = MemCmd::write;
    req.size = 8;
    req.task = 3;
    req.object = invalidObjectId;
    const Addr phys = 0x100000ull * (3 * 7 + 2 + 1) + 64;
    req.addr = (Addr{2} << capchecker::CapChecker::coarseAddrBits) | phys;
    for (auto _ : state)
        benchmark::DoNotOptimize(checker->check(req));
}
BENCHMARK(BM_CapCheckerCoarse);

void
BM_IommuCheckTlbHit(benchmark::State &state)
{
    protect::Iommu iommu;
    iommu.mapRange(1, 0x10000, 0x10000, true);
    MemRequest req;
    req.cmd = MemCmd::read;
    req.size = 8;
    req.task = 1;
    req.addr = 0x14000;
    (void)iommu.check(req); // warm the IOTLB
    for (auto _ : state)
        benchmark::DoNotOptimize(iommu.check(req));
}
BENCHMARK(BM_IommuCheckTlbHit);

void
BM_IopmpCheck(benchmark::State &state)
{
    protect::Iopmp iopmp(16);
    for (unsigned i = 0; i < 16; ++i)
        iopmp.addRegion({1, 0x10000ull * (i + 1), 0x1000, true, true});
    MemRequest req;
    req.cmd = MemCmd::read;
    req.size = 8;
    req.task = 1;
    req.addr = 0x10000ull * 16 + 64;
    for (auto _ : state)
        benchmark::DoNotOptimize(iopmp.check(req));
}
BENCHMARK(BM_IopmpCheck);

void
BM_CapTableInstallEvict(benchmark::State &state)
{
    capchecker::CapTable table(256);
    const cheri::Capability cap =
        cheri::Capability::root().setBounds(0x10000, 0x1000);
    for (auto _ : state) {
        for (ObjectId o = 0; o < 7; ++o)
            benchmark::DoNotOptimize(table.install(1, o, cap));
        table.evictTask(1);
    }
}
BENCHMARK(BM_CapTableInstallEvict);

} // namespace

BENCHMARK_MAIN();
