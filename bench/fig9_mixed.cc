/**
 * @file
 * Reproduces Fig. 9: CapChecker overhead for 20 systems that each mix
 * 8 randomly selected accelerator architectures (one task per
 * accelerator), compared with the geometric mean of the
 * single-benchmark systems of Fig. 8. All 40 simulation points are
 * submitted as one request list, so --jobs parallelizes across them.
 */

#include <iostream>
#include <vector>

#include "base/random.hh"
#include "base/table.hh"
#include "bench/common.hh"

using namespace capcheck;
using system::SystemMode;

int
main(int argc, char **argv)
{
    auto runner = bench::makeSweeper(argc, argv);
    bench::printHeader(
        "Fig. 9: overhead of 20 systems with mixed accelerators",
        "Fig. 9");

    const auto &names = workloads::allKernelNames();

    std::vector<harness::RunRequest> requests;
    std::vector<std::string> labels;
    for (unsigned sys_id = 0; sys_id < 20; ++sys_id) {
        Rng rng(1000 + sys_id);
        std::vector<std::string> mix;
        std::string label;
        for (unsigned i = 0; i < 8; ++i) {
            const auto &pick = names[rng.nextBounded(names.size())];
            mix.push_back(pick);
            label += (i ? "," : "") + pick.substr(0, 4);
        }
        labels.push_back(label);

        const std::uint64_t seed = 42 + sys_id;
        requests.push_back(harness::RunRequest::mixed(
            mix, bench::modeConfig(SystemMode::ccpuAccel, seed)));
        requests.push_back(harness::RunRequest::mixed(
            mix, bench::modeConfig(SystemMode::ccpuCaccel, seed)));
    }

    const auto outcomes = runner.run(requests, "fig9_mixed");

    TextTable table({"System", "Accelerators", "base cycles",
                     "w/ checker", "Perf overhead"});

    std::vector<double> ratios;
    for (unsigned sys_id = 0; sys_id < 20; ++sys_id) {
        const auto &base = outcomes[2 * sys_id].result;
        const auto &with = outcomes[2 * sys_id + 1].result;

        const double overhead = with.overheadVs(base);
        ratios.push_back(1.0 + overhead);
        table.addRow({std::to_string(sys_id), labels[sys_id],
                      std::to_string(base.totalCycles),
                      std::to_string(with.totalCycles),
                      fmtPercent(overhead)});
    }

    table.addRow({"geomean", "-", "-", "-",
                  fmtPercent(system::geometricMean(ratios) - 1.0)});
    table.print(std::cout);

    std::cout << "\nPaper expectation: mixed-system overheads cluster "
                 "close to the Fig. 8 geometric mean.\n";
    return 0;
}
