/**
 * @file
 * Reproduces Fig. 9: CapChecker overhead for 20 systems that each mix
 * 8 randomly selected accelerator architectures (one task per
 * accelerator), compared with the geometric mean of the
 * single-benchmark systems of Fig. 8.
 */

#include <iostream>
#include <vector>

#include "base/random.hh"
#include "base/table.hh"
#include "bench/common.hh"

using namespace capcheck;
using system::SystemMode;

int
main()
{
    bench::printHeader(
        "Fig. 9: overhead of 20 systems with mixed accelerators",
        "Fig. 9");

    const auto &names = workloads::allKernelNames();

    TextTable table({"System", "Accelerators", "base cycles",
                     "w/ checker", "Perf overhead"});

    std::vector<double> ratios;
    for (unsigned sys_id = 0; sys_id < 20; ++sys_id) {
        Rng rng(1000 + sys_id);
        std::vector<std::string> mix;
        std::string label;
        for (unsigned i = 0; i < 8; ++i) {
            const auto &pick = names[rng.nextBounded(names.size())];
            mix.push_back(pick);
            label += (i ? "," : "") + pick.substr(0, 4);
        }

        system::SocConfig cfg;
        cfg.seed = 42 + sys_id;
        cfg.mode = SystemMode::ccpuAccel;
        const auto base = system::SocSystem(cfg).runMixed(mix);
        cfg.mode = SystemMode::ccpuCaccel;
        const auto with = system::SocSystem(cfg).runMixed(mix);

        const double overhead = with.overheadVs(base);
        ratios.push_back(1.0 + overhead);
        table.addRow({std::to_string(sys_id), label,
                      std::to_string(base.totalCycles),
                      std::to_string(with.totalCycles),
                      fmtPercent(overhead)});
    }

    table.addRow({"geomean", "-", "-", "-",
                  fmtPercent(system::geometricMean(ratios) - 1.0)});
    table.print(std::cout);

    std::cout << "\nPaper expectation: mixed-system overheads cluster "
                 "close to the Fig. 8 geometric mean.\n";
    return 0;
}
