/**
 * @file
 * Wall-clock benchmark of the fast simulation kernels (sim/kernels
 * registry) against the reference implementations, on the
 * configuration they target: replaying millions of checked DMA beats
 * from concurrent accelerator instances. Compute-bound workloads
 * interleave a datapath delay with every beat, so their event streams
 * are identical under both kernels and wall-clock parity is expected;
 * this harness instead runs a DMA-bound kernel (kmp: external-buffer
 * streaming with almost no datapath delay) at full instance
 * contention, where the reference player burns one polling tick per
 * instance per cycle and the reference queue carries every stale
 * reschedule.
 *
 * Methodology: the ref and fast sweeps run interleaved for --repeat
 * rounds inside one process and the reported wall-clock per kernel is
 * the best (minimum) round, which strips scheduler noise that a
 * single timed run cannot (these are host wall-clock numbers; see
 * BENCH_kernels.json for one machine's figures). Output ends with a
 * "kernel_bench: ref=... fast=... speedup=..." line that
 * scripts/kernel_check.sh parses for the perf gate.
 *
 * Usage: kernel_bench [--repeat N] [--tasks N] [--quiet]
 */

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "base/table.hh"
#include "bench/common.hh"
#include "obs/prof.hh"

using namespace capcheck;
using system::SystemMode;

namespace
{

/** Execute one request under the self-profiler and return the
 *  accumulated host-time profile. */
prof::RunProfile
profileOne(const harness::RunRequest &req)
{
    prof::RunProfile profile;
    {
        const prof::ProfileSession session(profile);
        const auto result = req.execute();
        if (!result.functionallyCorrect)
            fatal("kernel_bench: functional failure in %s",
                  result.benchmark.c_str());
    }
    return profile;
}

/** Self milliseconds of @p domain; 0 when the domain never ran. */
double
domainSelfMillis(const prof::RunProfile &profile,
                 const std::string &domain)
{
    for (const auto &dom : profile.domainTotals()) {
        if (dom.domain == domain)
            return static_cast<double>(dom.selfNanos) / 1e6;
    }
    return 0.0;
}

double
wallSeconds(bench::Sweeper &runner,
            const std::vector<harness::RunRequest> &requests)
{
    const auto t0 = std::chrono::steady_clock::now();
    const auto outcomes = runner.run(requests, "kernel_bench");
    const auto t1 = std::chrono::steady_clock::now();
    for (const auto &out : outcomes) {
        if (!out.result.functionallyCorrect)
            fatal("kernel_bench: functional failure in %s",
                  out.result.benchmark.c_str());
    }
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned repeat = 3;
    unsigned tasks = 8;
    std::vector<char *> passthrough;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (i > 0 && arg == "--repeat" && i + 1 < argc)
            repeat = static_cast<unsigned>(std::stoul(argv[++i]));
        else if (i > 0 && arg == "--tasks" && i + 1 < argc)
            tasks = static_cast<unsigned>(std::stoul(argv[++i]));
        else
            passthrough.push_back(argv[i]);
    }
    auto opts = bench::parseOptions(
        static_cast<int>(passthrough.size()), passthrough.data());
    // Every round must simulate: a result-cache (or dedup) hit would
    // time a hash lookup instead of a kernel.
    opts.sweep.cacheEnabled = false;

    bench::printHeader("Simulation-kernel wall clock",
                       "sim/kernels fast-path speedup");

    // The replay-bound points: a DMA-streaming benchmark at full
    // instance contention, with and without the CapChecker (the
    // checked configuration also exercises the capability-table fast
    // index). Seeds differ per point so no two requests deduplicate.
    const auto requests_for = [&](sim::SimKernel kernel) {
        std::vector<harness::RunRequest> reqs;
        std::uint64_t seed = 1;
        for (const SystemMode mode :
             {SystemMode::ccpuAccel, SystemMode::ccpuCaccel}) {
            for (unsigned r = 0; r < 3; ++r) {
                auto cfg = system::SocConfigBuilder()
                               .mode(mode)
                               .seed(seed++)
                               .simKernel(kernel)
                               .build();
                reqs.push_back(harness::RunRequest::single(
                    "kmp", cfg, tasks));
            }
        }
        return reqs;
    };
    const auto ref_reqs = requests_for(sim::SimKernel::ref);
    const auto fast_reqs = requests_for(sim::SimKernel::fast);

    bench::Sweeper runner(opts.sweep);
    double ref_best = 0;
    double fast_best = 0;
    for (unsigned round = 0; round < repeat; ++round) {
        const double ref_secs = wallSeconds(runner, ref_reqs);
        const double fast_secs = wallSeconds(runner, fast_reqs);
        ref_best = round == 0 ? ref_secs
                              : std::min(ref_best, ref_secs);
        fast_best = round == 0 ? fast_secs
                               : std::min(fast_best, fast_secs);
    }

    const double speedup = ref_best / fast_best;

    TextTable table({"Metric", "Value"});
    table.addRow({"benchmark", "kmp (DMA-bound, external buffers)"});
    table.addRow({"tasks per point", std::to_string(tasks)});
    table.addRow({"points per sweep",
                  std::to_string(ref_reqs.size())});
    table.addRow({"rounds (best-of)", std::to_string(repeat)});
    table.addRow({"ref wall (s)", std::to_string(ref_best)});
    table.addRow({"fast wall (s)", std::to_string(fast_best)});
    table.addRow({"speedup", std::to_string(speedup)});
    table.print(std::cout);

    // Where the saved wall-clock comes from: one checked ref point
    // and one checked fast point re-executed under the host-time
    // self-profiler, attributed per domain. The timed rounds above
    // run unprofiled; this is a separate diagnostic pass.
    if (prof::compiledIn()) {
        const prof::RunProfile ref_prof = profileOne(ref_reqs.back());
        const prof::RunProfile fast_prof =
            profileOne(fast_reqs.back());

        std::vector<std::string> domains;
        for (const auto &dom : ref_prof.domainTotals())
            domains.push_back(dom.domain);
        for (const auto &dom : fast_prof.domainTotals()) {
            if (std::find(domains.begin(), domains.end(),
                          dom.domain) == domains.end())
                domains.push_back(dom.domain);
        }
        std::sort(domains.begin(), domains.end());

        std::cout << "\nHost-time attribution, one checked point "
                     "(ref vs fast):\n";
        TextTable attr({"domain", "refMs", "fastMs", "delta"});
        for (const std::string &domain : domains) {
            const double ref_ms =
                domainSelfMillis(ref_prof, domain);
            const double fast_ms =
                domainSelfMillis(fast_prof, domain);
            std::string delta = fmtDouble(fast_ms - ref_ms, 2);
            if (fast_ms > ref_ms)
                delta = "+" + delta;
            attr.addRow({domain, fmtDouble(ref_ms, 2),
                         fmtDouble(fast_ms, 2), delta});
        }
        attr.print(std::cout);
    }

    // Machine-readable trailer for scripts/kernel_check.sh.
    std::cout << "kernel_bench: ref=" << ref_best
              << " fast=" << fast_best << " speedup=" << speedup
              << "\n";
    return 0;
}
