/**
 * @file
 * Reproduces Fig. 10: wall-clock breakdown of every benchmark across
 * the five system configurations (cpu, ccpu, cpu+accel, ccpu+accel,
 * ccpu+caccel), split into driver allocation, kernel execution, and
 * driver deallocation. The 95-point grid runs through the SweepRunner.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "bench/common.hh"

using namespace capcheck;
using system::SystemMode;

int
main(int argc, char **argv)
{
    auto runner = bench::makeSweeper(argc, argv);
    bench::printHeader(
        "Fig. 10: wall-clock breakdown across configurations",
        "Fig. 10");

    constexpr SystemMode modes[] = {
        SystemMode::cpu, SystemMode::ccpu, SystemMode::cpuAccel,
        SystemMode::ccpuAccel, SystemMode::ccpuCaccel};
    constexpr std::size_t num_modes = std::size(modes);

    const auto &names = workloads::allKernelNames();
    std::vector<harness::RunRequest> requests;
    for (const std::string &name : names) {
        for (const SystemMode mode : modes) {
            requests.push_back(harness::RunRequest::single(
                name, bench::modeConfig(mode)));
        }
    }

    const auto outcomes = runner.run(requests, "fig10_breakdown");

    TextTable table({"Benchmark", "Config", "alloc", "kernel",
                     "dealloc", "total", "vs cpu"});

    for (std::size_t i = 0; i < names.size(); ++i) {
        Cycles cpu_total = 0;
        for (std::size_t m = 0; m < num_modes; ++m) {
            const auto &r = outcomes[i * num_modes + m].result;
            if (modes[m] == SystemMode::cpu)
                cpu_total = r.totalCycles;
            table.addRow(
                {names[i], system::systemModeName(modes[m]),
                 std::to_string(r.driverAllocCycles),
                 std::to_string(r.kernelCycles),
                 std::to_string(r.driverDeallocCycles),
                 std::to_string(r.totalCycles),
                 fmtDouble(static_cast<double>(r.totalCycles) /
                               static_cast<double>(cpu_total),
                           4)});
        }
    }
    table.print(std::cout);

    std::cout << "\nPaper expectation: the CapChecker's overhead "
                 "(ccpu+caccel vs ccpu+accel) is smaller than CHERI's "
                 "CPU overhead (ccpu vs cpu) for most benchmarks; "
                 "gemm_blocked runs *faster* on the CHERI CPU thanks "
                 "to 128-bit capability copies.\n";
    return 0;
}
