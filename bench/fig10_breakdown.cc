/**
 * @file
 * Reproduces Fig. 10: wall-clock breakdown of every benchmark across
 * the five system configurations (cpu, ccpu, cpu+accel, ccpu+accel,
 * ccpu+caccel), split into driver allocation, kernel execution, and
 * driver deallocation.
 */

#include <iostream>

#include "base/table.hh"
#include "bench/common.hh"

using namespace capcheck;
using system::SystemMode;

int
main()
{
    bench::printHeader(
        "Fig. 10: wall-clock breakdown across configurations",
        "Fig. 10");

    constexpr SystemMode modes[] = {
        SystemMode::cpu, SystemMode::ccpu, SystemMode::cpuAccel,
        SystemMode::ccpuAccel, SystemMode::ccpuCaccel};

    TextTable table({"Benchmark", "Config", "alloc", "kernel",
                     "dealloc", "total", "vs cpu"});

    for (const std::string &name : workloads::allKernelNames()) {
        Cycles cpu_total = 0;
        for (const SystemMode mode : modes) {
            const auto r = bench::runMode(name, mode);
            if (mode == SystemMode::cpu)
                cpu_total = r.totalCycles;
            table.addRow(
                {name, system::systemModeName(mode),
                 std::to_string(r.driverAllocCycles),
                 std::to_string(r.kernelCycles),
                 std::to_string(r.driverDeallocCycles),
                 std::to_string(r.totalCycles),
                 fmtDouble(static_cast<double>(r.totalCycles) /
                               static_cast<double>(cpu_total),
                           4)});
        }
    }
    table.print(std::cout);

    std::cout << "\nPaper expectation: the CapChecker's overhead "
                 "(ccpu+caccel vs ccpu+accel) is smaller than CHERI's "
                 "CPU overhead (ccpu vs cpu) for most benchmarks; "
                 "gemm_blocked runs *faster* on the CHERI CPU thanks "
                 "to 128-bit capability copies.\n";
    return 0;
}
