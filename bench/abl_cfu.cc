/**
 * @file
 * Ablation (Section 6.3): the TinyML / custom-functional-unit (CFU)
 * end of the design space — a microcontroller-class system with a
 * single small accelerator and a CapChecker sized for its handful of
 * pointers. The paper's anchor: such a checker costs fewer than 100
 * LUTs next to a ~10k LUT system.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "bench/common.hh"
#include "model/area_power.hh"

using namespace capcheck;
using system::SystemMode;

int
main(int argc, char **argv)
{
    auto runner = bench::makeSweeper(argc, argv);
    bench::printHeader("Ablation: CFU-class TinyML system",
                       "Section 6.3 (CFU discussion)");

    // One aes CFU (a single 128-byte context pointer) on a
    // microcontroller: one instance, one task, a minimal table.
    std::vector<harness::RunRequest> requests;
    requests.push_back(harness::RunRequest::single(
        "aes",
        system::SocConfigBuilder()
            .mode(SystemMode::ccpuAccel)
            .numInstances(1)
            .build(),
        /*num_tasks=*/1));
    requests.push_back(harness::RunRequest::single(
        "aes",
        system::SocConfigBuilder()
            .mode(SystemMode::ccpuCaccel)
            .numInstances(1)
            .capTableEntries(2)
            .build(),
        /*num_tasks=*/1));

    const auto outcomes = runner.run(requests, "abl_cfu");
    const auto &base = outcomes[0].result;
    const auto &prot = outcomes[1].result;

    const auto system_luts = model::AreaPowerModel::microcontrollerLuts();
    const auto checker_luts = model::AreaPowerModel::capCheckerLuts(2);

    TextTable table({"Metric", "Value"});
    table.addRow({"system area (LUTs)", std::to_string(system_luts)});
    table.addRow({"2-entry CapChecker (LUTs)",
                  std::to_string(checker_luts)});
    table.addRow({"area overhead",
                  fmtPercent(static_cast<double>(checker_luts) /
                             static_cast<double>(system_luts))});
    table.addRow({"unprotected cycles",
                  std::to_string(base.totalCycles)});
    table.addRow({"protected cycles",
                  std::to_string(prot.totalCycles)});
    table.addRow({"perf overhead",
                  fmtPercent(prot.overheadVs(base))});
    table.addRow({"results correct",
                  prot.functionallyCorrect ? "yes" : "NO"});
    table.print(std::cout);

    std::cout << "\nPaper anchors: <100 LUTs of checker on a ~10k LUT "
                 "TinyML system (we model "
              << checker_luts << " LUTs, "
              << fmtPercent(static_cast<double>(checker_luts) /
                            static_cast<double>(system_luts))
              << " of the system).\n";
    return 0;
}
