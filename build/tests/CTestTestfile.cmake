# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_cheri[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_accel[1]_include.cmake")
include("/root/repo/build/tests/test_capchecker[1]_include.cmake")
include("/root/repo/build/tests/test_protect[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_security[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
