file(REMOVE_RECURSE
  "CMakeFiles/test_base.dir/base/bitfield_test.cc.o"
  "CMakeFiles/test_base.dir/base/bitfield_test.cc.o.d"
  "CMakeFiles/test_base.dir/base/random_test.cc.o"
  "CMakeFiles/test_base.dir/base/random_test.cc.o.d"
  "CMakeFiles/test_base.dir/base/stats_test.cc.o"
  "CMakeFiles/test_base.dir/base/stats_test.cc.o.d"
  "CMakeFiles/test_base.dir/base/table_test.cc.o"
  "CMakeFiles/test_base.dir/base/table_test.cc.o.d"
  "CMakeFiles/test_base.dir/base/trace_test.cc.o"
  "CMakeFiles/test_base.dir/base/trace_test.cc.o.d"
  "test_base"
  "test_base.pdb"
  "test_base[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
