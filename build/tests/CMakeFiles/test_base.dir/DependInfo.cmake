
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/base/bitfield_test.cc" "tests/CMakeFiles/test_base.dir/base/bitfield_test.cc.o" "gcc" "tests/CMakeFiles/test_base.dir/base/bitfield_test.cc.o.d"
  "/root/repo/tests/base/random_test.cc" "tests/CMakeFiles/test_base.dir/base/random_test.cc.o" "gcc" "tests/CMakeFiles/test_base.dir/base/random_test.cc.o.d"
  "/root/repo/tests/base/stats_test.cc" "tests/CMakeFiles/test_base.dir/base/stats_test.cc.o" "gcc" "tests/CMakeFiles/test_base.dir/base/stats_test.cc.o.d"
  "/root/repo/tests/base/table_test.cc" "tests/CMakeFiles/test_base.dir/base/table_test.cc.o" "gcc" "tests/CMakeFiles/test_base.dir/base/table_test.cc.o.d"
  "/root/repo/tests/base/trace_test.cc" "tests/CMakeFiles/test_base.dir/base/trace_test.cc.o" "gcc" "tests/CMakeFiles/test_base.dir/base/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capcheck.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
