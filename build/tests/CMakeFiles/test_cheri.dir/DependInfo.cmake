
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cheri/capability_test.cc" "tests/CMakeFiles/test_cheri.dir/cheri/capability_test.cc.o" "gcc" "tests/CMakeFiles/test_cheri.dir/cheri/capability_test.cc.o.d"
  "/root/repo/tests/cheri/captree_test.cc" "tests/CMakeFiles/test_cheri.dir/cheri/captree_test.cc.o" "gcc" "tests/CMakeFiles/test_cheri.dir/cheri/captree_test.cc.o.d"
  "/root/repo/tests/cheri/compressed_test.cc" "tests/CMakeFiles/test_cheri.dir/cheri/compressed_test.cc.o" "gcc" "tests/CMakeFiles/test_cheri.dir/cheri/compressed_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capcheck.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
