# Empty dependencies file for test_cheri.
# This may be replaced when dependencies are built.
