file(REMOVE_RECURSE
  "CMakeFiles/test_cheri.dir/cheri/capability_test.cc.o"
  "CMakeFiles/test_cheri.dir/cheri/capability_test.cc.o.d"
  "CMakeFiles/test_cheri.dir/cheri/captree_test.cc.o"
  "CMakeFiles/test_cheri.dir/cheri/captree_test.cc.o.d"
  "CMakeFiles/test_cheri.dir/cheri/compressed_test.cc.o"
  "CMakeFiles/test_cheri.dir/cheri/compressed_test.cc.o.d"
  "test_cheri"
  "test_cheri.pdb"
  "test_cheri[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cheri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
