file(REMOVE_RECURSE
  "CMakeFiles/test_capchecker.dir/capchecker/cap_cache_test.cc.o"
  "CMakeFiles/test_capchecker.dir/capchecker/cap_cache_test.cc.o.d"
  "CMakeFiles/test_capchecker.dir/capchecker/cap_table_test.cc.o"
  "CMakeFiles/test_capchecker.dir/capchecker/cap_table_test.cc.o.d"
  "CMakeFiles/test_capchecker.dir/capchecker/capchecker_fuzz_test.cc.o"
  "CMakeFiles/test_capchecker.dir/capchecker/capchecker_fuzz_test.cc.o.d"
  "CMakeFiles/test_capchecker.dir/capchecker/capchecker_test.cc.o"
  "CMakeFiles/test_capchecker.dir/capchecker/capchecker_test.cc.o.d"
  "CMakeFiles/test_capchecker.dir/capchecker/mmio_fuzz_test.cc.o"
  "CMakeFiles/test_capchecker.dir/capchecker/mmio_fuzz_test.cc.o.d"
  "CMakeFiles/test_capchecker.dir/capchecker/mmio_test.cc.o"
  "CMakeFiles/test_capchecker.dir/capchecker/mmio_test.cc.o.d"
  "test_capchecker"
  "test_capchecker.pdb"
  "test_capchecker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capchecker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
