# Empty compiler generated dependencies file for test_capchecker.
# This may be replaced when dependencies are built.
