file(REMOVE_RECURSE
  "CMakeFiles/test_protect.dir/protect/check_stage_test.cc.o"
  "CMakeFiles/test_protect.dir/protect/check_stage_test.cc.o.d"
  "CMakeFiles/test_protect.dir/protect/checker_bank_test.cc.o"
  "CMakeFiles/test_protect.dir/protect/checker_bank_test.cc.o.d"
  "CMakeFiles/test_protect.dir/protect/iommu_test.cc.o"
  "CMakeFiles/test_protect.dir/protect/iommu_test.cc.o.d"
  "CMakeFiles/test_protect.dir/protect/iopmp_test.cc.o"
  "CMakeFiles/test_protect.dir/protect/iopmp_test.cc.o.d"
  "test_protect"
  "test_protect.pdb"
  "test_protect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
