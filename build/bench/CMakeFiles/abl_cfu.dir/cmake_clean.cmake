file(REMOVE_RECURSE
  "CMakeFiles/abl_cfu.dir/abl_cfu.cc.o"
  "CMakeFiles/abl_cfu.dir/abl_cfu.cc.o.d"
  "abl_cfu"
  "abl_cfu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cfu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
