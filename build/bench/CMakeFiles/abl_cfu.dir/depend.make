# Empty dependencies file for abl_cfu.
# This may be replaced when dependencies are built.
