# Empty compiler generated dependencies file for abl_shared_checker.
# This may be replaced when dependencies are built.
