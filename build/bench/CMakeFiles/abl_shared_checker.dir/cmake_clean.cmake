file(REMOVE_RECURSE
  "CMakeFiles/abl_shared_checker.dir/abl_shared_checker.cc.o"
  "CMakeFiles/abl_shared_checker.dir/abl_shared_checker.cc.o.d"
  "abl_shared_checker"
  "abl_shared_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_shared_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
