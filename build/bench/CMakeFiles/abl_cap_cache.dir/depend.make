# Empty dependencies file for abl_cap_cache.
# This may be replaced when dependencies are built.
