file(REMOVE_RECURSE
  "CMakeFiles/abl_cap_cache.dir/abl_cap_cache.cc.o"
  "CMakeFiles/abl_cap_cache.dir/abl_cap_cache.cc.o.d"
  "abl_cap_cache"
  "abl_cap_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cap_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
