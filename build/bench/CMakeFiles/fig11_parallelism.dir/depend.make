# Empty dependencies file for fig11_parallelism.
# This may be replaced when dependencies are built.
