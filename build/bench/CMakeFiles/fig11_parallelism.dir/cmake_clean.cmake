file(REMOVE_RECURSE
  "CMakeFiles/fig11_parallelism.dir/fig11_parallelism.cc.o"
  "CMakeFiles/fig11_parallelism.dir/fig11_parallelism.cc.o.d"
  "fig11_parallelism"
  "fig11_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
