file(REMOVE_RECURSE
  "CMakeFiles/abl_table_size.dir/abl_table_size.cc.o"
  "CMakeFiles/abl_table_size.dir/abl_table_size.cc.o.d"
  "abl_table_size"
  "abl_table_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_table_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
