# Empty compiler generated dependencies file for abl_table_size.
# This may be replaced when dependencies are built.
