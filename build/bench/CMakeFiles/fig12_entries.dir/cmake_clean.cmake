file(REMOVE_RECURSE
  "CMakeFiles/fig12_entries.dir/fig12_entries.cc.o"
  "CMakeFiles/fig12_entries.dir/fig12_entries.cc.o.d"
  "fig12_entries"
  "fig12_entries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_entries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
