# Empty dependencies file for fig12_entries.
# This may be replaced when dependencies are built.
