file(REMOVE_RECURSE
  "CMakeFiles/abl_provenance.dir/abl_provenance.cc.o"
  "CMakeFiles/abl_provenance.dir/abl_provenance.cc.o.d"
  "abl_provenance"
  "abl_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
