# Empty compiler generated dependencies file for abl_provenance.
# This may be replaced when dependencies are built.
