file(REMOVE_RECURSE
  "CMakeFiles/abl_check_latency.dir/abl_check_latency.cc.o"
  "CMakeFiles/abl_check_latency.dir/abl_check_latency.cc.o.d"
  "abl_check_latency"
  "abl_check_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_check_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
