# Empty compiler generated dependencies file for abl_check_latency.
# This may be replaced when dependencies are built.
