file(REMOVE_RECURSE
  "CMakeFiles/abl_burst.dir/abl_burst.cc.o"
  "CMakeFiles/abl_burst.dir/abl_burst.cc.o.d"
  "abl_burst"
  "abl_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
