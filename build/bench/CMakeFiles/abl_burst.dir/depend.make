# Empty dependencies file for abl_burst.
# This may be replaced when dependencies are built.
