# Empty compiler generated dependencies file for table3_security.
# This may be replaced when dependencies are built.
