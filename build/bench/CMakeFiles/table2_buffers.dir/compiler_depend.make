# Empty compiler generated dependencies file for table2_buffers.
# This may be replaced when dependencies are built.
