file(REMOVE_RECURSE
  "CMakeFiles/table2_buffers.dir/table2_buffers.cc.o"
  "CMakeFiles/table2_buffers.dir/table2_buffers.cc.o.d"
  "table2_buffers"
  "table2_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
