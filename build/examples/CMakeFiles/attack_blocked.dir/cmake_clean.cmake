file(REMOVE_RECURSE
  "CMakeFiles/attack_blocked.dir/attack_blocked.cpp.o"
  "CMakeFiles/attack_blocked.dir/attack_blocked.cpp.o.d"
  "attack_blocked"
  "attack_blocked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_blocked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
