# Empty dependencies file for attack_blocked.
# This may be replaced when dependencies are built.
