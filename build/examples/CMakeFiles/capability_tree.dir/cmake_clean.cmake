file(REMOVE_RECURSE
  "CMakeFiles/capability_tree.dir/capability_tree.cpp.o"
  "CMakeFiles/capability_tree.dir/capability_tree.cpp.o.d"
  "capability_tree"
  "capability_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capability_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
