# Empty compiler generated dependencies file for capability_tree.
# This may be replaced when dependencies are built.
