# Empty compiler generated dependencies file for capcheck.
# This may be replaced when dependencies are built.
