
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/accelerator.cc" "src/CMakeFiles/capcheck.dir/accel/accelerator.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/accel/accelerator.cc.o.d"
  "/root/repo/src/accel/trace_accessor.cc" "src/CMakeFiles/capcheck.dir/accel/trace_accessor.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/accel/trace_accessor.cc.o.d"
  "/root/repo/src/accel/trace_player.cc" "src/CMakeFiles/capcheck.dir/accel/trace_player.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/accel/trace_player.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/capcheck.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/base/logging.cc.o.d"
  "/root/repo/src/base/random.cc" "src/CMakeFiles/capcheck.dir/base/random.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/base/random.cc.o.d"
  "/root/repo/src/base/stats.cc" "src/CMakeFiles/capcheck.dir/base/stats.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/base/stats.cc.o.d"
  "/root/repo/src/base/table.cc" "src/CMakeFiles/capcheck.dir/base/table.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/base/table.cc.o.d"
  "/root/repo/src/base/trace.cc" "src/CMakeFiles/capcheck.dir/base/trace.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/base/trace.cc.o.d"
  "/root/repo/src/capchecker/cap_cache.cc" "src/CMakeFiles/capcheck.dir/capchecker/cap_cache.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/capchecker/cap_cache.cc.o.d"
  "/root/repo/src/capchecker/cap_table.cc" "src/CMakeFiles/capcheck.dir/capchecker/cap_table.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/capchecker/cap_table.cc.o.d"
  "/root/repo/src/capchecker/capchecker.cc" "src/CMakeFiles/capcheck.dir/capchecker/capchecker.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/capchecker/capchecker.cc.o.d"
  "/root/repo/src/capchecker/mmio.cc" "src/CMakeFiles/capcheck.dir/capchecker/mmio.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/capchecker/mmio.cc.o.d"
  "/root/repo/src/cheri/capability.cc" "src/CMakeFiles/capcheck.dir/cheri/capability.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/cheri/capability.cc.o.d"
  "/root/repo/src/cheri/captree.cc" "src/CMakeFiles/capcheck.dir/cheri/captree.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/cheri/captree.cc.o.d"
  "/root/repo/src/cheri/compressed.cc" "src/CMakeFiles/capcheck.dir/cheri/compressed.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/cheri/compressed.cc.o.d"
  "/root/repo/src/cheri/perms.cc" "src/CMakeFiles/capcheck.dir/cheri/perms.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/cheri/perms.cc.o.d"
  "/root/repo/src/cpu/cache_model.cc" "src/CMakeFiles/capcheck.dir/cpu/cache_model.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/cpu/cache_model.cc.o.d"
  "/root/repo/src/cpu/cpu_model.cc" "src/CMakeFiles/capcheck.dir/cpu/cpu_model.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/cpu/cpu_model.cc.o.d"
  "/root/repo/src/driver/driver.cc" "src/CMakeFiles/capcheck.dir/driver/driver.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/driver/driver.cc.o.d"
  "/root/repo/src/mem/allocator.cc" "src/CMakeFiles/capcheck.dir/mem/allocator.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/mem/allocator.cc.o.d"
  "/root/repo/src/mem/interconnect.cc" "src/CMakeFiles/capcheck.dir/mem/interconnect.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/mem/interconnect.cc.o.d"
  "/root/repo/src/mem/mem_ctrl.cc" "src/CMakeFiles/capcheck.dir/mem/mem_ctrl.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/mem/mem_ctrl.cc.o.d"
  "/root/repo/src/mem/packet.cc" "src/CMakeFiles/capcheck.dir/mem/packet.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/mem/packet.cc.o.d"
  "/root/repo/src/mem/tagged_memory.cc" "src/CMakeFiles/capcheck.dir/mem/tagged_memory.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/mem/tagged_memory.cc.o.d"
  "/root/repo/src/model/area_power.cc" "src/CMakeFiles/capcheck.dir/model/area_power.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/model/area_power.cc.o.d"
  "/root/repo/src/protect/check_stage.cc" "src/CMakeFiles/capcheck.dir/protect/check_stage.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/protect/check_stage.cc.o.d"
  "/root/repo/src/protect/checker.cc" "src/CMakeFiles/capcheck.dir/protect/checker.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/protect/checker.cc.o.d"
  "/root/repo/src/protect/checker_bank.cc" "src/CMakeFiles/capcheck.dir/protect/checker_bank.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/protect/checker_bank.cc.o.d"
  "/root/repo/src/protect/iommu.cc" "src/CMakeFiles/capcheck.dir/protect/iommu.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/protect/iommu.cc.o.d"
  "/root/repo/src/protect/iopmp.cc" "src/CMakeFiles/capcheck.dir/protect/iopmp.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/protect/iopmp.cc.o.d"
  "/root/repo/src/protect/no_protection.cc" "src/CMakeFiles/capcheck.dir/protect/no_protection.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/protect/no_protection.cc.o.d"
  "/root/repo/src/security/attack.cc" "src/CMakeFiles/capcheck.dir/security/attack.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/security/attack.cc.o.d"
  "/root/repo/src/security/cwe.cc" "src/CMakeFiles/capcheck.dir/security/cwe.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/security/cwe.cc.o.d"
  "/root/repo/src/security/scenarios.cc" "src/CMakeFiles/capcheck.dir/security/scenarios.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/security/scenarios.cc.o.d"
  "/root/repo/src/sim/clocked.cc" "src/CMakeFiles/capcheck.dir/sim/clocked.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/sim/clocked.cc.o.d"
  "/root/repo/src/sim/eventq.cc" "src/CMakeFiles/capcheck.dir/sim/eventq.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/sim/eventq.cc.o.d"
  "/root/repo/src/system/run_result.cc" "src/CMakeFiles/capcheck.dir/system/run_result.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/system/run_result.cc.o.d"
  "/root/repo/src/system/soc_config.cc" "src/CMakeFiles/capcheck.dir/system/soc_config.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/system/soc_config.cc.o.d"
  "/root/repo/src/system/soc_system.cc" "src/CMakeFiles/capcheck.dir/system/soc_system.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/system/soc_system.cc.o.d"
  "/root/repo/src/workloads/accessor.cc" "src/CMakeFiles/capcheck.dir/workloads/accessor.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/accessor.cc.o.d"
  "/root/repo/src/workloads/buffer_spec.cc" "src/CMakeFiles/capcheck.dir/workloads/buffer_spec.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/buffer_spec.cc.o.d"
  "/root/repo/src/workloads/kernel.cc" "src/CMakeFiles/capcheck.dir/workloads/kernel.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernel.cc.o.d"
  "/root/repo/src/workloads/kernels/aes.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/aes.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/aes.cc.o.d"
  "/root/repo/src/workloads/kernels/aes_core.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/aes_core.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/aes_core.cc.o.d"
  "/root/repo/src/workloads/kernels/backprop.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/backprop.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/backprop.cc.o.d"
  "/root/repo/src/workloads/kernels/bfs_bulk.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/bfs_bulk.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/bfs_bulk.cc.o.d"
  "/root/repo/src/workloads/kernels/bfs_queue.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/bfs_queue.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/bfs_queue.cc.o.d"
  "/root/repo/src/workloads/kernels/fft_strided.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/fft_strided.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/fft_strided.cc.o.d"
  "/root/repo/src/workloads/kernels/fft_transpose.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/fft_transpose.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/fft_transpose.cc.o.d"
  "/root/repo/src/workloads/kernels/gemm_blocked.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/gemm_blocked.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/gemm_blocked.cc.o.d"
  "/root/repo/src/workloads/kernels/gemm_ncubed.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/gemm_ncubed.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/gemm_ncubed.cc.o.d"
  "/root/repo/src/workloads/kernels/kmp.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/kmp.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/kmp.cc.o.d"
  "/root/repo/src/workloads/kernels/md_grid.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/md_grid.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/md_grid.cc.o.d"
  "/root/repo/src/workloads/kernels/md_knn.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/md_knn.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/md_knn.cc.o.d"
  "/root/repo/src/workloads/kernels/nw.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/nw.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/nw.cc.o.d"
  "/root/repo/src/workloads/kernels/sort_merge.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/sort_merge.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/sort_merge.cc.o.d"
  "/root/repo/src/workloads/kernels/sort_radix.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/sort_radix.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/sort_radix.cc.o.d"
  "/root/repo/src/workloads/kernels/spmv_crs.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/spmv_crs.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/spmv_crs.cc.o.d"
  "/root/repo/src/workloads/kernels/spmv_ellpack.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/spmv_ellpack.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/spmv_ellpack.cc.o.d"
  "/root/repo/src/workloads/kernels/stencil2d.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/stencil2d.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/stencil2d.cc.o.d"
  "/root/repo/src/workloads/kernels/stencil3d.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/stencil3d.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/stencil3d.cc.o.d"
  "/root/repo/src/workloads/kernels/viterbi.cc" "src/CMakeFiles/capcheck.dir/workloads/kernels/viterbi.cc.o" "gcc" "src/CMakeFiles/capcheck.dir/workloads/kernels/viterbi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
