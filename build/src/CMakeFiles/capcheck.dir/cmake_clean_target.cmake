file(REMOVE_RECURSE
  "libcapcheck.a"
)
