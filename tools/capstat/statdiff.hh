/**
 * @file
 * Library behind the capstat CLI: loads the latency-attribution JSON
 * artefacts the flight recorder writes (single-run documents or merged
 * multi-run reports), merges them keyed by run label, and diffs two
 * reports metric-by-metric with a percentage tolerance so CI can gate
 * on latency regressions (p99 first and foremost).
 *
 * Everything is keyed by the human-stable run label embedded in the
 * artefacts — not by config hash — so a committed baseline survives
 * hash-affecting config refactors.
 */

#ifndef CAPCHECK_TOOLS_CAPSTAT_STATDIFF_HH
#define CAPCHECK_TOOLS_CAPSTAT_STATDIFF_HH

#include <ostream>
#include <string>
#include <vector>

#include "base/json_value.hh"

namespace capcheck::tools
{

/** One run's latency metrics: the artefact's "flights" stat tree. */
struct RunMetrics
{
    std::string label;
    json::JsonValue flights;

    /** File this run was loaded from; "" for in-memory runs. Used by
     *  diff error messages to say where a missing label came from. */
    std::string source;

    /** Metric by dotted path under "flights" (e.g. "endToEnd.p99");
     *  NaN when the path is absent. */
    double metric(const std::string &path) const;
};

/** A set of runs, unique and sorted by label. */
struct LatencyReport
{
    std::vector<RunMetrics> runs;

    /** Every file loaded into this report, in load order — the set of
     *  places a label could have been expected to appear. */
    std::vector<std::string> sources;

    const RunMetrics *find(const std::string &label) const;
};

/**
 * Load @p path into @p report. Accepts either a single-run latency
 * artefact ({"label": ..., "flights": {...}}) or a merged report
 * ({"runs": [...]}). Runs merge into the existing report; a duplicate
 * label overwrites the earlier entry (last file wins).
 * @return false with a one-line @p error on parse/shape problems.
 */
bool loadLatencyDocument(const std::string &path, LatencyReport &report,
                         std::string *error = nullptr);

/** Serialize @p report as a merged document (deterministic bytes). */
std::string mergedJson(const LatencyReport &report);

/** One compared metric of one run. */
struct MetricDelta
{
    std::string label;
    std::string metric;
    double baseline = 0;
    double current = 0;
    /** Percent change, current vs baseline (+ = slower). */
    double pct = 0;
    bool regression = false;
};

struct DiffOptions
{
    /** Allowed percent increase before a metric counts as regressed. */
    double tolerancePct = 5.0;

    /** Dotted metric paths under "flights" to compare. */
    std::vector<std::string> metrics = {
        "endToEnd.p50",
        "endToEnd.p95",
        "endToEnd.p99",
    };
};

struct DiffResult
{
    std::vector<MetricDelta> deltas;
    /** Labels in the baseline with no counterpart in current. */
    std::vector<std::string> missing;
    /** Labels in current with no baseline (informational). */
    std::vector<std::string> added;

    /** @{ Parallel to missing/added: the file each label was loaded
     *  from ("" when untracked). */
    std::vector<std::string> missingSources;
    std::vector<std::string> addedSources;
    /** @} */

    /** @{ Files the two sides were loaded from, so the "missing"
     *  message can name where the label was expected. */
    std::vector<std::string> baselineFiles;
    std::vector<std::string> currentFiles;
    /** @} */

    bool regression() const;
};

/**
 * Remove every " KEY=<token>" field from the run labels in @p report
 * (run labels are space-separated "key=value" fields after the
 * benchmark name). Lets CI diff reports whose labels differ only in a
 * deliberate axis — e.g. strip "kernel" to compare a `--kernel fast`
 * sweep against the reference baseline with --tolerance 0. Labels
 * colliding after the strip overwrite earlier ones (last wins), and
 * the report is re-sorted.
 */
void stripLabelField(LatencyReport &report, const std::string &key);

/** Compare @p current against @p baseline label-by-label. */
DiffResult diffReports(const LatencyReport &baseline,
                       const LatencyReport &current,
                       const DiffOptions &opts);

/** Human-readable diff table; returns DiffResult::regression(). */
bool printDiff(std::ostream &os, const DiffResult &diff,
               const DiffOptions &opts);

/** Per-run latency summary table (p50/p95/p99 + hop means). */
void printReport(std::ostream &os, const LatencyReport &report);

/**
 * Print the top-N-slowest-flights table of one flights.json artefact.
 * @p limit trims the table (0 = all recorded flights).
 * @return false with @p error when the file does not parse.
 */
bool printTopFlights(std::ostream &os, const std::string &path,
                     unsigned limit, std::string *error = nullptr);

} // namespace capcheck::tools

#endif // CAPCHECK_TOOLS_CAPSTAT_STATDIFF_HH
