#include "statdiff.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "base/json.hh"
#include "base/table.hh"

namespace capcheck::tools
{

namespace
{

/**
 * Re-emit a parsed value through the streaming writer. Numbers that
 * are exactly representable integers are written as integers so a
 * merged report looks like the artefacts it came from.
 */
void
writeValue(json::JsonWriter &w, const json::JsonValue &v)
{
    using Kind = json::JsonValue::Kind;
    switch (v.kind()) {
      case Kind::null:
        w.nullValue();
        break;
      case Kind::boolean:
        w.value(v.asBool());
        break;
      case Kind::number: {
        const double d = v.asNumber();
        if (d == std::floor(d) && std::abs(d) < 9007199254740992.0 &&
            !std::signbit(d)) {
            w.value(static_cast<std::uint64_t>(d));
        } else if (d == std::floor(d) &&
                   std::abs(d) < 9007199254740992.0) {
            w.value(static_cast<std::int64_t>(d));
        } else {
            w.value(d);
        }
        break;
      }
      case Kind::string:
        w.value(v.asString());
        break;
      case Kind::array:
        w.beginArray();
        for (const json::JsonValue &e : v.elements())
            writeValue(w, e);
        w.endArray();
        break;
      case Kind::object:
        w.beginObject();
        for (const auto &[key, member] : v.members()) {
            w.key(key);
            writeValue(w, member);
        }
        w.endObject();
        break;
    }
}

void
insertRun(LatencyReport &report, RunMetrics run)
{
    const auto it = std::find_if(
        report.runs.begin(), report.runs.end(),
        [&](const RunMetrics &r) { return r.label == run.label; });
    if (it != report.runs.end()) {
        *it = std::move(run);
        return;
    }
    report.runs.push_back(std::move(run));
    std::sort(report.runs.begin(), report.runs.end(),
              [](const RunMetrics &a, const RunMetrics &b) {
                  return a.label < b.label;
              });
}

bool
shapeError(const std::string &path, const char *what, std::string *error)
{
    if (error)
        *error = path + ": " + what;
    return false;
}

/** Percent change current vs baseline with a sane zero-baseline rule. */
double
pctChange(double baseline, double current)
{
    if (baseline > 0)
        return (current - baseline) / baseline * 100.0;
    return current > 0 ? 100.0 : 0.0;
}

std::string
fmtCycles(double v)
{
    if (std::isnan(v))
        return "-";
    return fmtDouble(v, 2);
}

/** "a.json, b.json" or "(no files)" for diff provenance messages. */
std::string
joinFiles(const std::vector<std::string> &files)
{
    if (files.empty())
        return "(no files)";
    std::string out;
    for (const std::string &f : files) {
        if (!out.empty())
            out += ", ";
        out += f;
    }
    return out;
}

} // namespace

double
RunMetrics::metric(const std::string &path) const
{
    const json::JsonValue *v = flights.at(path);
    if (!v || !v->isNumber())
        return std::nan("");
    return v->asNumber();
}

const RunMetrics *
LatencyReport::find(const std::string &label) const
{
    for (const RunMetrics &run : runs) {
        if (run.label == label)
            return &run;
    }
    return nullptr;
}

void
stripLabelField(LatencyReport &report, const std::string &key)
{
    const std::string needle = " " + key + "=";
    std::vector<RunMetrics> stripped;
    stripped.swap(report.runs);
    for (RunMetrics &run : stripped) {
        const auto at = run.label.find(needle);
        if (at != std::string::npos) {
            const auto end =
                run.label.find(' ', at + needle.size());
            run.label.erase(at, end == std::string::npos
                                    ? std::string::npos
                                    : end - at);
        }
        insertRun(report, std::move(run));
    }
}

bool
loadLatencyDocument(const std::string &path, LatencyReport &report,
                    std::string *error)
{
    std::string parse_error;
    const auto doc = json::parseJsonFile(path, &parse_error);
    if (!doc) {
        if (error)
            *error = path + ": " + parse_error;
        return false;
    }
    if (!doc->isObject())
        return shapeError(path, "not a JSON object", error);

    report.sources.push_back(path);

    // Merged report: {"runs": [{"label": ..., "flights": {...}}]}.
    if (const json::JsonValue *runs = doc->get("runs")) {
        if (!runs->isArray())
            return shapeError(path, "\"runs\" is not an array", error);
        for (const json::JsonValue &entry : runs->elements()) {
            const json::JsonValue *label = entry.get("label");
            const json::JsonValue *flights = entry.get("flights");
            if (!label || !label->isString() || !flights ||
                !flights->isObject()) {
                return shapeError(
                    path, "run entry without label/flights", error);
            }
            insertRun(report,
                      RunMetrics{label->asString(), *flights, path});
        }
        return true;
    }

    // Single-run artefact: {"label": ..., "flights": {...}}.
    const json::JsonValue *label = doc->get("label");
    const json::JsonValue *flights = doc->get("flights");
    if (!label || !label->isString() || !flights || !flights->isObject())
        return shapeError(path, "missing label/flights members", error);
    insertRun(report, RunMetrics{label->asString(), *flights, path});
    return true;
}

std::string
mergedJson(const LatencyReport &report)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("runs").beginArray();
    for (const RunMetrics &run : report.runs) {
        w.beginObject();
        w.key("label").value(run.label);
        w.key("flights");
        writeValue(w, run.flights);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    return os.str();
}

bool
DiffResult::regression() const
{
    for (const MetricDelta &d : deltas) {
        if (d.regression)
            return true;
    }
    return false;
}

DiffResult
diffReports(const LatencyReport &baseline, const LatencyReport &current,
            const DiffOptions &opts)
{
    DiffResult diff;
    diff.baselineFiles = baseline.sources;
    diff.currentFiles = current.sources;
    for (const RunMetrics &base : baseline.runs) {
        const RunMetrics *cur = current.find(base.label);
        if (!cur) {
            diff.missing.push_back(base.label);
            diff.missingSources.push_back(base.source);
            continue;
        }
        for (const std::string &metric : opts.metrics) {
            MetricDelta d;
            d.label = base.label;
            d.metric = metric;
            d.baseline = base.metric(metric);
            d.current = cur->metric(metric);
            if (std::isnan(d.baseline) || std::isnan(d.current))
                continue; // metric absent on one side: not comparable
            d.pct = pctChange(d.baseline, d.current);
            d.regression = d.pct > opts.tolerancePct;
            diff.deltas.push_back(std::move(d));
        }
    }
    for (const RunMetrics &run : current.runs) {
        if (!baseline.find(run.label)) {
            diff.added.push_back(run.label);
            diff.addedSources.push_back(run.source);
        }
    }
    return diff;
}

bool
printDiff(std::ostream &os, const DiffResult &diff,
          const DiffOptions &opts)
{
    TextTable table({"run", "metric", "baseline", "current", "change",
                     "verdict"});
    for (const MetricDelta &d : diff.deltas) {
        std::string change = fmtDouble(d.pct, 2) + "%";
        if (d.pct > 0)
            change = "+" + change;
        table.addRow({d.label, d.metric, fmtCycles(d.baseline),
                      fmtCycles(d.current), change,
                      d.regression ? "REGRESSION" : "ok"});
    }
    table.print(os);
    // One-sided labels name the file they came from and the file(s)
    // the counterpart was expected in, so a typo'd baseline path or a
    // renamed run label is diagnosable from the message alone.
    for (std::size_t i = 0; i < diff.missing.size(); ++i) {
        os << "missing from current: '" << diff.missing[i] << "'";
        if (i < diff.missingSources.size() &&
            !diff.missingSources[i].empty()) {
            os << " (baselined in " << diff.missingSources[i]
               << "; expected in " << joinFiles(diff.currentFiles)
               << ")";
        }
        os << "\n";
    }
    for (std::size_t i = 0; i < diff.added.size(); ++i) {
        os << "new run (no baseline): '" << diff.added[i] << "'";
        if (i < diff.addedSources.size() &&
            !diff.addedSources[i].empty()) {
            os << " (found in " << diff.addedSources[i]
               << "; no counterpart in "
               << joinFiles(diff.baselineFiles) << ")";
        }
        os << "\n";
    }

    const bool regressed = diff.regression();
    os << (regressed ? "FAIL" : "PASS") << ": "
       << diff.deltas.size() << " metrics compared, tolerance "
       << fmtDouble(opts.tolerancePct, 1) << "%\n";
    return regressed;
}

void
printReport(std::ostream &os, const LatencyReport &report)
{
    TextTable table({"run", "flights", "p50", "p95", "p99", "mean",
                     "xbar", "check", "drain", "mem"});
    for (const RunMetrics &run : report.runs) {
        const double samples = run.metric("endToEnd.samples");
        table.addRow({
            run.label,
            std::isnan(samples)
                ? std::string("-")
                : std::to_string(static_cast<std::uint64_t>(samples)),
            fmtCycles(run.metric("endToEnd.p50")),
            fmtCycles(run.metric("endToEnd.p95")),
            fmtCycles(run.metric("endToEnd.p99")),
            fmtCycles(run.metric("endToEnd.mean")),
            fmtCycles(run.metric("hops.xbarWait.mean")),
            fmtCycles(run.metric("hops.check.mean")),
            fmtCycles(run.metric("hops.drain.mean")),
            fmtCycles(run.metric("hops.mem.mean")),
        });
    }
    table.print(os);
    os << "(end-to-end percentiles in cycles; hop columns are mean "
          "cycles per flight)\n";
}

bool
printTopFlights(std::ostream &os, const std::string &path,
                unsigned limit, std::string *error)
{
    std::string parse_error;
    const auto doc = json::parseJsonFile(path, &parse_error);
    if (!doc) {
        if (error)
            *error = path + ": " + parse_error;
        return false;
    }
    const json::JsonValue *flights =
        doc->isObject() ? doc->get("flights") : nullptr;
    if (!flights || !flights->isArray()) {
        shapeError(path, "missing \"flights\" array", error);
        return false;
    }

    const json::JsonValue *label = doc->get("label");
    if (label && label->isString())
        os << "run: " << label->asString() << "\n";

    auto num = [](const json::JsonValue &v, const char *key) {
        const json::JsonValue *m = v.get(key);
        return m && m->isNumber() ? m->asNumber() : std::nan("");
    };
    auto str = [](const json::JsonValue &v,
                  const char *key) -> std::string {
        const json::JsonValue *m = v.get(key);
        return m && m->isString() ? m->asString() : "-";
    };
    auto intStr = [&](const json::JsonValue &v, const char *key) {
        const double d = num(v, key);
        return std::isnan(d)
                   ? std::string("-")
                   : std::to_string(static_cast<std::uint64_t>(d));
    };

    TextTable table({"flight", "task", "cmd", "addr", "cache", "denied",
                     "xbar", "check", "drain", "mem", "endToEnd"});
    unsigned printed = 0;
    for (const json::JsonValue &f : flights->elements()) {
        if (limit && printed >= limit)
            break;
        const json::JsonValue *hops = f.get("hops");
        auto hop = [&](const char *key) {
            return hops ? intStr(*hops, key) : std::string("-");
        };
        const json::JsonValue *denied = f.get("denied");
        table.addRow({intStr(f, "flight"), intStr(f, "task"),
                      str(f, "cmd"), str(f, "addr"), str(f, "cache"),
                      denied && denied->isBool() && denied->asBool()
                          ? "yes"
                          : "no",
                      hop("xbarWait"), hop("check"), hop("drain"),
                      hop("mem"), intStr(f, "endToEnd")});
        ++printed;
    }
    table.print(os);
    os << "(per-hop cycles; slowest first)\n";
    return true;
}

} // namespace capcheck::tools
