/**
 * @file
 * Library behind `capstat prof`: loads the host-time self-profiler
 * artefacts the sweep harnesses write (run-<hash>.prof.json, schema
 * capcheck.prof.v1, single-run or merged multi-run documents), merges
 * them keyed by run label, renders per-domain/per-site attribution
 * tables, and diffs two profiles domain-by-domain on share-of-wall so
 * CI can gate on host-time attribution drift.
 *
 * Shares are compared in percentage points (a domain moving from 10%
 * to 13% of the run is +3.0pts) rather than relative percent — host
 * profiles are noisy at the small-domain tail and relative deltas
 * there would gate on jitter.
 */

#ifndef CAPCHECK_TOOLS_CAPSTAT_PROF_HH
#define CAPCHECK_TOOLS_CAPSTAT_PROF_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace capcheck::tools
{

/** One domain row of a profile ("capcheck", "sim", ... "other"). */
struct ProfDomain
{
    std::string domain;
    std::uint64_t selfNanos = 0;
    std::uint64_t totalNanos = 0;
    std::uint64_t calls = 0;
    /** Share of the run's wall time, 0..1, as recorded. */
    double share = 0;
};

/** One instrumented site row ("capcheck" / "table.lookup"). */
struct ProfSite
{
    std::string domain;
    std::string name;
    std::uint64_t selfNanos = 0;
    std::uint64_t totalNanos = 0;
    std::uint64_t calls = 0;
};

/** One run's host-time profile. */
struct ProfRun
{
    std::string label;
    std::string kernel;
    std::uint64_t wallNanos = 0;
    std::vector<ProfDomain> domains;
    std::vector<ProfSite> sites;

    /** File this run was loaded from; "" for in-memory runs. */
    std::string source;

    /** Share of @p domain (0..1); NaN when the domain is absent. */
    double domainShare(const std::string &domain) const;
};

/** A set of profiled runs, unique and sorted by label. */
struct ProfReport
{
    std::vector<ProfRun> runs;

    /** Every file loaded into this report, in load order. */
    std::vector<std::string> sources;

    const ProfRun *find(const std::string &label) const;
};

/**
 * Load @p path into @p report. Accepts either a single-run profile
 * (schema capcheck.prof.v1: {"label", "kernel", "wallNanos",
 * "domains", "sites"}) or a merged report ({"runs": [...]}). Runs
 * merge into the existing report; a duplicate label overwrites the
 * earlier entry (last file wins).
 * @return false with a one-line @p error on parse/shape problems.
 */
bool loadProfDocument(const std::string &path, ProfReport &report,
                      std::string *error = nullptr);

/** Serialize @p report as a merged document (deterministic bytes). */
std::string mergedProfJson(const ProfReport &report);

/** One compared domain of one run. */
struct ProfDelta
{
    std::string label;
    std::string domain;
    /** Shares of wall time, 0..1. */
    double baselineShare = 0;
    double currentShare = 0;
    /** Share change in percentage points (+ = domain grew). */
    double deltaPts = 0;
    bool regression = false;
};

struct ProfDiffOptions
{
    /** Allowed share growth, in percentage points of the run's wall
     *  time, before a domain counts as regressed. */
    double tolerancePts = 3.0;
};

struct ProfDiffResult
{
    std::vector<ProfDelta> deltas;
    /** Labels in the baseline with no counterpart in current. */
    std::vector<std::string> missing;
    /** Labels in current with no baseline (informational). */
    std::vector<std::string> added;

    /** @{ Parallel to missing/added: source file of each label. */
    std::vector<std::string> missingSources;
    std::vector<std::string> addedSources;
    /** @} */

    /** @{ Files the two sides were loaded from. */
    std::vector<std::string> baselineFiles;
    std::vector<std::string> currentFiles;
    /** @} */

    bool regression() const;
};

/** Compare @p current against @p baseline label-by-label. Every
 *  domain present on either side is compared (absent = share 0, so a
 *  brand-new domain eating 10% of the run is caught). */
ProfDiffResult diffProfReports(const ProfReport &baseline,
                               const ProfReport &current,
                               const ProfDiffOptions &opts);

/** Human-readable diff table; returns ProfDiffResult::regression(). */
bool printProfDiff(std::ostream &os, const ProfDiffResult &diff,
                   const ProfDiffOptions &opts);

/** Per-run domain attribution tables (self ms, share, calls), plus a
 *  top-sites table per run when site rows are present (@p top_sites
 *  trims it; 0 = all sites). */
void printProfReport(std::ostream &os, const ProfReport &report,
                     unsigned top_sites = 10);

} // namespace capcheck::tools

#endif // CAPCHECK_TOOLS_CAPSTAT_PROF_HH
