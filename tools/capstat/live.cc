#include "live.hh"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "base/json_value.hh"
#include "base/table.hh"
#include "obs/metrics.hh"
#include "service/frame.hh"
#include "service/socket.hh"
#include "service/sweep_service.hh"
#include "service/wire.hh"

namespace capcheck::tools
{

namespace
{

using service::Fd;

/** One framed request/reply exchange; throws on any failure. */
json::JsonValue
roundTrip(Fd &conn, const std::string &payload)
{
    service::sendFrame(conn.get(), payload);
    auto reply = service::recvFrame(conn.get());
    if (!reply) {
        throw service::ServiceError(service::errConnect,
                                    "daemon closed the connection");
    }
    std::string err;
    auto v = json::parseJson(*reply, &err);
    if (!v) {
        throw service::ServiceError(
            service::errProtocol,
            "unparseable frame from daemon: " + err);
    }
    return std::move(*v);
}

std::string
u64s(std::uint64_t v)
{
    return std::to_string(v);
}

void
renderSnapshot(std::ostream &os, const service::ServiceStats &stats,
               unsigned poll)
{
    const obs::MetricsSnapshot &m = stats.metrics;
    os << "-- poll " << poll << " --\n";
    if (!stats.metricsPresent) {
        // Pre-telemetry daemon: fall back to the legacy counters.
        os << "  (daemon sent no metrics registry; legacy stats)\n"
           << "  executed=" << stats.executed
           << " cacheHits=" << stats.cacheHits
           << " queue=" << stats.queueDepth
           << " clients=" << stats.activeClients
           << " rejectedOverload=" << stats.rejectedOverload << "\n";
        return;
    }

    const double upSeconds =
        static_cast<double>(m.gaugeValue("uptime.millis")) / 1000.0;
    os << "  up " << fmtDouble(upSeconds, 1) << "s, "
       << m.gaugeValue("workers.total") << " workers ("
       << m.gaugeValue("workers.busy") << " busy), clients="
       << m.gaugeValue("clients.active")
       << " queue=" << m.gaugeValue("queue.depth")
       << " inflight=" << m.gaugeValue("requests.inflight") << "\n";
    os << "  batches: received="
       << m.counterValue("batches.received")
       << " admitted=" << m.counterValue("batches.admitted")
       << " rejected=" << m.counterValue("batches.rejected") << "\n";
    os << "  requests: received="
       << m.counterValue("requests.received")
       << " admitted=" << m.counterValue("requests.admitted")
       << " executed=" << m.counterValue("requests.executed")
       << " failed=" << m.counterValue("requests.failed")
       << " cacheHits[mem=" << m.counterValue("requests.cacheHitsMem")
       << " disk=" << m.counterValue("requests.cacheHitsDisk")
       << " coalesced=" << m.counterValue("requests.coalesced")
       << "]\n";
    os << "  cache: mem " << m.gaugeValue("cache.mem.entries")
       << " entries / " << m.gaugeValue("cache.mem.bytes") << " B";
    if (stats.diskCachePresent) {
        os << ", disk " << m.gaugeValue("cache.disk.entries")
           << " entries / " << m.gaugeValue("cache.disk.bytes")
           << " B";
    }
    os << "\n";
    os << "  wire: in " << m.counterValue("frames.in") << " frames / "
       << m.counterValue("bytes.in") << " B, out "
       << m.counterValue("frames.out") << " frames / "
       << m.counterValue("bytes.out") << " B\n";

    TextTable table({"span", "samples", "p50us", "p95us", "p99us",
                     "meanUs", "maxUs"});
    for (const obs::MetricsSnapshot::Histo &h : m.histograms) {
        if (h.name.rfind("span.", 0) != 0)
            continue;
        table.addRow({h.name.substr(std::strlen("span.")),
                      u64s(h.samples), fmtDouble(h.p50, 1),
                      fmtDouble(h.p95, 1), fmtDouble(h.p99, 1),
                      fmtDouble(h.mean(), 1), u64s(h.max)});
    }
    if (table.rows() > 0)
        table.print(os);

    // Host-time attribution from the worker pool's self-profiler:
    // prof.<domain>.selfNanos / prof.<domain>.calls counters, shares
    // against the profiled wall total.
    const std::uint64_t profWall = m.counterValue("prof.wallNanos");
    if (profWall > 0) {
        os << "  host profile: "
           << fmtDouble(static_cast<double>(profWall) / 1e9, 2)
           << "s profiled across executed requests\n";
        TextTable prof({"domain", "selfMs", "share", "calls"});
        const std::string prefix = "prof.";
        const std::string suffix = ".selfNanos";
        for (const obs::MetricsSnapshot::Counter &c : m.counters) {
            if (c.name.rfind(prefix, 0) != 0 ||
                c.name.size() <= prefix.size() + suffix.size() ||
                c.name.compare(c.name.size() - suffix.size(),
                               suffix.size(), suffix) != 0)
                continue;
            const std::string domain = c.name.substr(
                prefix.size(),
                c.name.size() - prefix.size() - suffix.size());
            prof.addRow(
                {domain,
                 fmtDouble(static_cast<double>(c.value) / 1e6, 1),
                 fmtDouble(static_cast<double>(c.value) /
                               static_cast<double>(profWall),
                           3),
                 u64s(m.counterValue(prefix + domain + ".calls"))});
        }
        if (prof.rows() > 0)
            prof.print(os);
    }
}

} // namespace

bool
parseLiveArgs(const std::vector<std::string> &args, LiveOptions &opts,
              std::string *error)
{
    const auto bad = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const auto value = [&](const char *flag,
                               std::string &out) -> bool {
            const std::string eq = std::string(flag) + "=";
            if (arg == flag) {
                if (i + 1 >= args.size())
                    return false;
                out = args[++i];
                return true;
            }
            if (arg.rfind(eq, 0) == 0) {
                out = arg.substr(eq.size());
                return true;
            }
            return false;
        };
        std::string v;
        if (arg == "--once") {
            opts.once = true;
        } else if (arg == "--interval" ||
                   arg.rfind("--interval=", 0) == 0) {
            if (!value("--interval", v))
                return bad("--interval needs milliseconds");
            opts.intervalMillis =
                static_cast<unsigned>(std::atoi(v.c_str()));
        } else if (arg == "--count" ||
                   arg.rfind("--count=", 0) == 0) {
            if (!value("--count", v))
                return bad("--count needs a poll count");
            opts.count =
                static_cast<unsigned>(std::atoi(v.c_str()));
        } else if (arg == "--latency-out" ||
                   arg.rfind("--latency-out=", 0) == 0) {
            if (!value("--latency-out", v))
                return bad("--latency-out needs a file");
            opts.latencyOut = v;
        } else if (arg == "--label" ||
                   arg.rfind("--label=", 0) == 0) {
            if (!value("--label", v))
                return bad("--label needs a run label");
            opts.label = v;
        } else if (!arg.empty() && arg[0] == '-') {
            return bad("unknown live option '" + arg + "'");
        } else if (opts.socketPath.empty()) {
            opts.socketPath = arg;
        } else {
            return bad("live takes exactly one socket path");
        }
    }
    if (opts.socketPath.empty())
        return bad("live needs the daemon socket path");
    if (opts.once)
        opts.count = 1;
    return true;
}

int
runLive(std::ostream &os, const LiveOptions &opts)
{
    std::string err;
    Fd conn = service::connectUnix(opts.socketPath, &err);
    if (!conn.valid()) {
        os << "capstat: cannot connect to capcheckd at '"
           << opts.socketPath << "': " << err << "\n";
        return 2;
    }

    try {
        const json::JsonValue pongv =
            roundTrip(conn, service::encodePing());
        const auto pong = service::pongFromJson(pongv);
        if (!pong) {
            os << "capstat: expected pong, got '"
               << service::messageType(pongv) << "'\n";
            return 2;
        }
        os << "capcheckd on " << opts.socketPath << ": protocol "
           << pong->protocol << ", build "
           << (pong->build.empty() ? "(unknown)" : pong->build)
           << "\n";
        if (pong->protocol != service::protocolVersion) {
            os << "capstat: warning: protocol skew (this capstat "
               << "speaks " << service::protocolVersion << ")\n";
        }
        if (!pong->build.empty() &&
            pong->build != service::buildHash()) {
            os << "capstat: warning: build skew (this capstat is "
               << service::buildHash() << ")\n";
        }

        service::ServiceStats last;
        for (unsigned poll = 1;
             opts.count == 0 || poll <= opts.count; ++poll) {
            const json::JsonValue sv =
                roundTrip(conn, service::encodeStatsQuery());
            auto stats = service::statsFromJson(sv);
            if (!stats) {
                os << "capstat: expected stats, got '"
                   << service::messageType(sv) << "'\n";
                return 2;
            }
            renderSnapshot(os, *stats, poll);
            os.flush();
            last = std::move(*stats);
            if (opts.count == 0 || poll < opts.count) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(
                        opts.intervalMillis));
            }
        }

        if (!opts.latencyOut.empty()) {
            if (!last.metricsPresent) {
                os << "capstat: daemon sent no metrics; not writing "
                   << opts.latencyOut << "\n";
                return 2;
            }
            std::ofstream lf(opts.latencyOut, std::ios::trunc);
            if (!lf) {
                os << "capstat: cannot write '" << opts.latencyOut
                   << "'\n";
                return 2;
            }
            lf << last.metrics.serviceLatencyJson(opts.label);
        }
    } catch (const service::ServiceError &e) {
        os << "capstat: " << e.what() << "\n";
        return 2;
    } catch (const service::FrameError &e) {
        os << "capstat: " << e.what() << "\n";
        return 2;
    }
    return 0;
}

} // namespace capcheck::tools
