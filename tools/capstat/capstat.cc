/**
 * @file
 * capstat: inspect and gate on the flight-recorder latency artefacts.
 *
 *   capstat report  LATENCY.json...           per-run p50/p95/p99 table
 *   capstat merge   -o OUT LATENCY.json...    merge runs into one report
 *   capstat diff    BASELINE CURRENT          compare; exit 1 on
 *                   [--tolerance PCT]         p50/p95/p99 regression
 *                   [--metric PATH]...
 *                   [--strip-label KEY]...    drop " KEY=..." from run
 *                                             labels on both sides
 *   capstat top     FLIGHTS.json [-n N]       slowest-requests table
 *   capstat live    SOCKET [--interval MS]    live capcheckd dashboard
 *                   [--count N | --once]      (queue/cache/span table)
 *                   [--latency-out FILE]
 *   capstat prof report PROF.json...          host-time attribution
 *                   [--sites N]               tables per profiled run
 *   capstat prof merge -o OUT PROF.json...    merge profiles
 *   capstat prof diff BASELINE CURRENT...     compare domain shares;
 *                   [--tolerance PTS]         exit 1 when a domain
 *                                             grows > PTS points
 *
 * Both report and diff accept single-run artefacts (run-*.latency.json)
 * and merged reports interchangeably; runs are keyed by their embedded
 * label, so a committed baseline keeps matching after config-hash
 * changes. `capstat live --latency-out` writes the daemon's span
 * histograms as a service-latency document that diff/report consume
 * like any other latency artefact — daemon p95 gates in CI ride on
 * that. `capstat prof` does the same for the host-time self-profiler
 * artefacts (run-*.prof.json from --prof-out), gating on share-of-run
 * percentage points instead of latency percent.
 * Exit codes: 0 ok, 1 regression, 2 usage/IO error.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "live.hh"
#include "prof.hh"
#include "statdiff.hh"

namespace
{

using namespace capcheck::tools;

void
usage(std::ostream &os)
{
    os << "usage: capstat report LATENCY.json...\n"
          "       capstat merge -o OUT.json LATENCY.json...\n"
          "       capstat diff [--tolerance PCT] [--metric PATH]...\n"
          "                    [--strip-label KEY]...\n"
          "                    BASELINE.json CURRENT.json...\n"
          "       capstat top FLIGHTS.json [-n N]\n"
          "       capstat live SOCKET [--interval MS] [--count N]\n"
          "                    [--once] [--latency-out FILE]\n"
          "                    [--label LABEL]\n"
          "       capstat prof report [--sites N] PROF.json...\n"
          "       capstat prof merge -o OUT.json PROF.json...\n"
          "       capstat prof diff [--tolerance PTS]\n"
          "                    BASELINE.json CURRENT.json...\n";
}

int
fail(const std::string &message)
{
    std::cerr << "capstat: " << message << "\n";
    return 2;
}

bool
loadAll(const std::vector<std::string> &paths, LatencyReport &report)
{
    for (const std::string &path : paths) {
        std::string error;
        if (!loadLatencyDocument(path, report, &error)) {
            fail(error);
            return false;
        }
    }
    return true;
}

int
cmdReport(const std::vector<std::string> &paths)
{
    if (paths.empty())
        return fail("report needs at least one latency artefact");
    LatencyReport report;
    if (!loadAll(paths, report))
        return 2;
    printReport(std::cout, report);
    return 0;
}

int
cmdMerge(const std::vector<std::string> &args)
{
    std::string out;
    std::vector<std::string> paths;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "-o" || args[i] == "--out") {
            if (i + 1 >= args.size())
                return fail("-o needs a file argument");
            out = args[++i];
        } else {
            paths.push_back(args[i]);
        }
    }
    if (paths.empty())
        return fail("merge needs at least one latency artefact");
    LatencyReport report;
    if (!loadAll(paths, report))
        return 2;
    const std::string doc = mergedJson(report);
    if (out.empty()) {
        std::cout << doc;
        return 0;
    }
    std::ofstream os(out);
    if (!os)
        return fail("cannot write '" + out + "'");
    os << doc;
    return 0;
}

int
cmdDiff(const std::vector<std::string> &args)
{
    DiffOptions opts;
    std::vector<std::string> metrics;
    std::vector<std::string> stripKeys;
    std::vector<std::string> paths;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--tolerance") {
            if (i + 1 >= args.size())
                return fail("--tolerance needs a percentage");
            opts.tolerancePct = std::atof(args[++i].c_str());
        } else if (args[i].rfind("--tolerance=", 0) == 0) {
            opts.tolerancePct =
                std::atof(args[i].c_str() + std::strlen("--tolerance="));
        } else if (args[i] == "--metric") {
            if (i + 1 >= args.size())
                return fail("--metric needs a dotted path");
            metrics.push_back(args[++i]);
        } else if (args[i].rfind("--metric=", 0) == 0) {
            metrics.push_back(
                args[i].substr(std::strlen("--metric=")));
        } else if (args[i] == "--strip-label") {
            if (i + 1 >= args.size())
                return fail("--strip-label needs a label field key");
            stripKeys.push_back(args[++i]);
        } else if (args[i].rfind("--strip-label=", 0) == 0) {
            stripKeys.push_back(
                args[i].substr(std::strlen("--strip-label=")));
        } else {
            paths.push_back(args[i]);
        }
    }
    if (paths.size() < 2)
        return fail("diff needs a baseline and at least one current "
                    "artefact");
    if (!metrics.empty())
        opts.metrics = std::move(metrics);

    LatencyReport baseline;
    std::string error;
    if (!loadLatencyDocument(paths.front(), baseline, &error))
        return fail(error);
    LatencyReport current;
    if (!loadAll({paths.begin() + 1, paths.end()}, current))
        return 2;

    // Strip deliberate label axes (e.g. "kernel") from both sides so
    // runs that differ only in that axis diff against each other.
    for (const std::string &key : stripKeys) {
        stripLabelField(baseline, key);
        stripLabelField(current, key);
    }

    return printDiff(std::cout, diffReports(baseline, current, opts),
                     opts)
               ? 1
               : 0;
}

int
cmdLive(const std::vector<std::string> &args)
{
    LiveOptions opts;
    std::string error;
    if (!parseLiveArgs(args, opts, &error))
        return fail(error);
    return runLive(std::cout, opts);
}

int
cmdTop(const std::vector<std::string> &args)
{
    unsigned limit = 0;
    std::vector<std::string> paths;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "-n" || args[i] == "--limit") {
            if (i + 1 >= args.size())
                return fail("-n needs a count");
            limit = static_cast<unsigned>(std::atoi(args[++i].c_str()));
        } else {
            paths.push_back(args[i]);
        }
    }
    if (paths.size() != 1)
        return fail("top needs exactly one flights artefact");
    std::string error;
    if (!printTopFlights(std::cout, paths.front(), limit, &error))
        return fail(error);
    return 0;
}

bool
loadAllProf(const std::vector<std::string> &paths, ProfReport &report)
{
    for (const std::string &path : paths) {
        std::string error;
        if (!loadProfDocument(path, report, &error)) {
            fail(error);
            return false;
        }
    }
    return true;
}

int
cmdProfReport(const std::vector<std::string> &args)
{
    unsigned sites = 10;
    std::vector<std::string> paths;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--sites") {
            if (i + 1 >= args.size())
                return fail("--sites needs a count");
            sites = static_cast<unsigned>(std::atoi(args[++i].c_str()));
        } else if (args[i].rfind("--sites=", 0) == 0) {
            sites = static_cast<unsigned>(
                std::atoi(args[i].c_str() + std::strlen("--sites=")));
        } else {
            paths.push_back(args[i]);
        }
    }
    if (paths.empty())
        return fail("prof report needs at least one profile artefact");
    ProfReport report;
    if (!loadAllProf(paths, report))
        return 2;
    printProfReport(std::cout, report, sites);
    return 0;
}

int
cmdProfMerge(const std::vector<std::string> &args)
{
    std::string out;
    std::vector<std::string> paths;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "-o" || args[i] == "--out") {
            if (i + 1 >= args.size())
                return fail("-o needs a file argument");
            out = args[++i];
        } else {
            paths.push_back(args[i]);
        }
    }
    if (paths.empty())
        return fail("prof merge needs at least one profile artefact");
    ProfReport report;
    if (!loadAllProf(paths, report))
        return 2;
    const std::string doc = mergedProfJson(report);
    if (out.empty()) {
        std::cout << doc;
        return 0;
    }
    std::ofstream os(out);
    if (!os)
        return fail("cannot write '" + out + "'");
    os << doc;
    return 0;
}

int
cmdProfDiff(const std::vector<std::string> &args)
{
    ProfDiffOptions opts;
    std::vector<std::string> paths;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--tolerance") {
            if (i + 1 >= args.size())
                return fail("--tolerance needs percentage points");
            opts.tolerancePts = std::atof(args[++i].c_str());
        } else if (args[i].rfind("--tolerance=", 0) == 0) {
            opts.tolerancePts =
                std::atof(args[i].c_str() + std::strlen("--tolerance="));
        } else {
            paths.push_back(args[i]);
        }
    }
    if (paths.size() < 2)
        return fail("prof diff needs a baseline and at least one "
                    "current artefact");

    ProfReport baseline;
    std::string error;
    if (!loadProfDocument(paths.front(), baseline, &error))
        return fail(error);
    ProfReport current;
    if (!loadAllProf({paths.begin() + 1, paths.end()}, current))
        return 2;

    return printProfDiff(std::cout,
                         diffProfReports(baseline, current, opts),
                         opts)
               ? 1
               : 0;
}

int
cmdProf(const std::vector<std::string> &args)
{
    if (args.empty())
        return fail("prof needs a subcommand: report, merge or diff");
    const std::string sub = args.front();
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (sub == "report")
        return cmdProfReport(rest);
    if (sub == "merge")
        return cmdProfMerge(rest);
    if (sub == "diff")
        return cmdProfDiff(rest);
    return fail("unknown prof subcommand '" + sub + "'");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(std::cerr);
        return 2;
    }
    const std::string cmd = argv[1];
    const std::vector<std::string> args(argv + 2, argv + argc);

    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        usage(std::cout);
        return 0;
    }
    if (cmd == "report")
        return cmdReport(args);
    if (cmd == "merge")
        return cmdMerge(args);
    if (cmd == "diff")
        return cmdDiff(args);
    if (cmd == "top")
        return cmdTop(args);
    if (cmd == "live")
        return cmdLive(args);
    if (cmd == "prof")
        return cmdProf(args);

    usage(std::cerr);
    return 2;
}
