#include "prof.hh"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <tuple>

#include "base/json.hh"
#include "base/json_value.hh"
#include "base/table.hh"

namespace capcheck::tools
{

namespace
{

bool
shapeError(const std::string &path, const char *what, std::string *error)
{
    if (error)
        *error = path + ": " + what;
    return false;
}

std::uint64_t
u64Member(const json::JsonValue &v, const char *key)
{
    const json::JsonValue *m = v.get(key);
    if (!m || !m->isNumber())
        return 0;
    const double d = m->asNumber();
    return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

double
numMember(const json::JsonValue &v, const char *key)
{
    const json::JsonValue *m = v.get(key);
    return m && m->isNumber() ? m->asNumber() : 0.0;
}

std::string
strMember(const json::JsonValue &v, const char *key)
{
    const json::JsonValue *m = v.get(key);
    return m && m->isString() ? m->asString() : std::string();
}

void
insertRun(ProfReport &report, ProfRun run)
{
    const auto it = std::find_if(
        report.runs.begin(), report.runs.end(),
        [&](const ProfRun &r) { return r.label == run.label; });
    if (it != report.runs.end()) {
        *it = std::move(run);
        return;
    }
    report.runs.push_back(std::move(run));
    std::sort(report.runs.begin(), report.runs.end(),
              [](const ProfRun &a, const ProfRun &b) {
                  return a.label < b.label;
              });
}

/** Parse one run object ({"label","kernel","wallNanos","domains",
 *  "sites"}); false when the required members are malformed. */
bool
parseRun(const json::JsonValue &v, const std::string &path,
         ProfRun &run)
{
    const json::JsonValue *label = v.get("label");
    const json::JsonValue *domains = v.get("domains");
    if (!label || !label->isString() || !domains || !domains->isArray())
        return false;
    run.label = label->asString();
    run.kernel = strMember(v, "kernel");
    run.wallNanos = u64Member(v, "wallNanos");
    run.source = path;
    for (const json::JsonValue &d : domains->elements()) {
        ProfDomain dom;
        dom.domain = strMember(d, "domain");
        dom.selfNanos = u64Member(d, "selfNanos");
        dom.totalNanos = u64Member(d, "totalNanos");
        dom.calls = u64Member(d, "calls");
        dom.share = numMember(d, "share");
        run.domains.push_back(std::move(dom));
    }
    if (const json::JsonValue *sites = v.get("sites");
        sites && sites->isArray()) {
        for (const json::JsonValue &s : sites->elements()) {
            ProfSite site;
            site.domain = strMember(s, "domain");
            site.name = strMember(s, "name");
            site.selfNanos = u64Member(s, "selfNanos");
            site.totalNanos = u64Member(s, "totalNanos");
            site.calls = u64Member(s, "calls");
            run.sites.push_back(std::move(site));
        }
    }
    return true;
}

std::string
fmtMillis(std::uint64_t nanos)
{
    return fmtDouble(static_cast<double>(nanos) / 1e6, 2);
}

std::string
fmtShare(double share)
{
    if (std::isnan(share))
        return "-";
    return fmtDouble(share * 100.0, 1) + "%";
}

/** "a.json, b.json" or "(no files)" for diff provenance messages. */
std::string
joinFiles(const std::vector<std::string> &files)
{
    if (files.empty())
        return "(no files)";
    std::string out;
    for (const std::string &f : files) {
        if (!out.empty())
            out += ", ";
        out += f;
    }
    return out;
}

} // namespace

double
ProfRun::domainShare(const std::string &domain) const
{
    for (const ProfDomain &d : domains) {
        if (d.domain == domain) {
            if (d.share > 0 || wallNanos == 0)
                return d.share;
            return static_cast<double>(d.selfNanos) /
                   static_cast<double>(wallNanos);
        }
    }
    return std::nan("");
}

const ProfRun *
ProfReport::find(const std::string &label) const
{
    for (const ProfRun &run : runs) {
        if (run.label == label)
            return &run;
    }
    return nullptr;
}

bool
loadProfDocument(const std::string &path, ProfReport &report,
                 std::string *error)
{
    std::string parse_error;
    const auto doc = json::parseJsonFile(path, &parse_error);
    if (!doc) {
        if (error)
            *error = path + ": " + parse_error;
        return false;
    }
    if (!doc->isObject())
        return shapeError(path, "not a JSON object", error);

    report.sources.push_back(path);

    // Merged report: {"runs": [{...profile...}]}.
    if (const json::JsonValue *runs = doc->get("runs")) {
        if (!runs->isArray())
            return shapeError(path, "\"runs\" is not an array", error);
        for (const json::JsonValue &entry : runs->elements()) {
            ProfRun run;
            if (!parseRun(entry, path, run)) {
                return shapeError(
                    path, "run entry without label/domains", error);
            }
            insertRun(report, std::move(run));
        }
        return true;
    }

    // Single-run artefact (schema capcheck.prof.v1).
    ProfRun run;
    if (!parseRun(*doc, path, run))
        return shapeError(path, "missing label/domains members", error);
    insertRun(report, std::move(run));
    return true;
}

std::string
mergedProfJson(const ProfReport &report)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("schema").value("capcheck.prof.v1");
    w.key("runs").beginArray();
    for (const ProfRun &run : report.runs) {
        w.beginObject();
        w.key("label").value(run.label);
        w.key("kernel").value(run.kernel);
        w.key("wallNanos").value(run.wallNanos);
        w.key("domains").beginArray();
        for (const ProfDomain &d : run.domains) {
            w.beginObject();
            w.key("domain").value(d.domain);
            w.key("selfNanos").value(d.selfNanos);
            w.key("totalNanos").value(d.totalNanos);
            w.key("calls").value(d.calls);
            w.key("share").value(d.share);
            w.endObject();
        }
        w.endArray();
        w.key("sites").beginArray();
        for (const ProfSite &s : run.sites) {
            w.beginObject();
            w.key("domain").value(s.domain);
            w.key("name").value(s.name);
            w.key("selfNanos").value(s.selfNanos);
            w.key("totalNanos").value(s.totalNanos);
            w.key("calls").value(s.calls);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    return os.str();
}

bool
ProfDiffResult::regression() const
{
    for (const ProfDelta &d : deltas) {
        if (d.regression)
            return true;
    }
    return false;
}

ProfDiffResult
diffProfReports(const ProfReport &baseline, const ProfReport &current,
                const ProfDiffOptions &opts)
{
    ProfDiffResult diff;
    diff.baselineFiles = baseline.sources;
    diff.currentFiles = current.sources;
    for (const ProfRun &base : baseline.runs) {
        const ProfRun *cur = current.find(base.label);
        if (!cur) {
            diff.missing.push_back(base.label);
            diff.missingSources.push_back(base.source);
            continue;
        }
        // Union of domains on both sides, sorted: a domain absent on
        // one side compares as share 0, so newly appearing hot
        // domains regress rather than silently skipping comparison.
        std::set<std::string> names;
        for (const ProfDomain &d : base.domains)
            names.insert(d.domain);
        for (const ProfDomain &d : cur->domains)
            names.insert(d.domain);
        for (const std::string &name : names) {
            ProfDelta d;
            d.label = base.label;
            d.domain = name;
            const double bs = base.domainShare(name);
            const double cs = cur->domainShare(name);
            d.baselineShare = std::isnan(bs) ? 0.0 : bs;
            d.currentShare = std::isnan(cs) ? 0.0 : cs;
            d.deltaPts =
                (d.currentShare - d.baselineShare) * 100.0;
            d.regression = d.deltaPts > opts.tolerancePts;
            diff.deltas.push_back(std::move(d));
        }
    }
    for (const ProfRun &run : current.runs) {
        if (!baseline.find(run.label)) {
            diff.added.push_back(run.label);
            diff.addedSources.push_back(run.source);
        }
    }
    return diff;
}

bool
printProfDiff(std::ostream &os, const ProfDiffResult &diff,
              const ProfDiffOptions &opts)
{
    TextTable table({"run", "domain", "baseline", "current", "delta",
                     "verdict"});
    for (const ProfDelta &d : diff.deltas) {
        std::string delta = fmtDouble(d.deltaPts, 1) + "pts";
        if (d.deltaPts > 0)
            delta = "+" + delta;
        table.addRow({d.label, d.domain, fmtShare(d.baselineShare),
                      fmtShare(d.currentShare), delta,
                      d.regression ? "REGRESSION" : "ok"});
    }
    table.print(os);
    for (std::size_t i = 0; i < diff.missing.size(); ++i) {
        os << "missing from current: '" << diff.missing[i] << "'";
        if (i < diff.missingSources.size() &&
            !diff.missingSources[i].empty()) {
            os << " (baselined in " << diff.missingSources[i]
               << "; expected in " << joinFiles(diff.currentFiles)
               << ")";
        }
        os << "\n";
    }
    for (std::size_t i = 0; i < diff.added.size(); ++i) {
        os << "new run (no baseline): '" << diff.added[i] << "'";
        if (i < diff.addedSources.size() &&
            !diff.addedSources[i].empty()) {
            os << " (found in " << diff.addedSources[i]
               << "; no counterpart in "
               << joinFiles(diff.baselineFiles) << ")";
        }
        os << "\n";
    }

    const bool regressed = diff.regression();
    os << (regressed ? "FAIL" : "PASS") << ": "
       << diff.deltas.size() << " domain shares compared, tolerance "
       << fmtDouble(opts.tolerancePts, 1) << "pts\n";
    return regressed;
}

void
printProfReport(std::ostream &os, const ProfReport &report,
                unsigned top_sites)
{
    for (const ProfRun &run : report.runs) {
        os << "run: " << run.label;
        if (!run.kernel.empty())
            os << " (kernel " << run.kernel << ")";
        os << ", wall " << fmtMillis(run.wallNanos) << "ms\n";

        TextTable domains(
            {"domain", "selfMs", "share", "totalMs", "calls"});
        for (const ProfDomain &d : run.domains) {
            domains.addRow({d.domain, fmtMillis(d.selfNanos),
                            fmtShare(d.share),
                            fmtMillis(d.totalNanos),
                            std::to_string(d.calls)});
        }
        domains.print(os);

        if (run.sites.empty())
            continue;
        // Hottest sites by self time.
        std::vector<const ProfSite *> sorted;
        for (const ProfSite &s : run.sites)
            sorted.push_back(&s);
        std::sort(sorted.begin(), sorted.end(),
                  [](const ProfSite *a, const ProfSite *b) {
                      if (a->selfNanos != b->selfNanos)
                          return a->selfNanos > b->selfNanos;
                      return std::tie(a->domain, a->name) <
                             std::tie(b->domain, b->name);
                  });
        if (top_sites && sorted.size() > top_sites)
            sorted.resize(top_sites);
        TextTable sites({"site", "selfMs", "totalMs", "calls"});
        for (const ProfSite *s : sorted) {
            sites.addRow({s->domain + "." + s->name,
                          fmtMillis(s->selfNanos),
                          fmtMillis(s->totalNanos),
                          std::to_string(s->calls)});
        }
        sites.print(os);
    }
    os << "(self = host nanoseconds in the domain's own scopes; "
          "share = self / run wall time)\n";
}

} // namespace capcheck::tools
