/**
 * @file
 * `capstat live`: the terminal dashboard over a running capcheckd.
 * Connects to the daemon socket, pings (printing the daemon's
 * protocol version and build hash, warning on build skew), then polls
 * the extended stats frame and renders queue / cache / throughput
 * lines plus the span-latency histogram table. With --latency-out it
 * also writes the daemon's service-latency document, which
 * `capstat diff` consumes like any flight-recorder latency artefact —
 * that is the CI hook for gating daemon-side p95.
 */

#ifndef CAPCHECK_TOOLS_CAPSTAT_LIVE_HH
#define CAPCHECK_TOOLS_CAPSTAT_LIVE_HH

#include <ostream>
#include <string>
#include <vector>

namespace capcheck::tools
{

struct LiveOptions
{
    /** Unix-domain socket of the capcheckd daemon. */
    std::string socketPath;

    /** Milliseconds between polls. */
    unsigned intervalMillis = 1000;

    /** Polls before exiting; 0 = until interrupted. */
    unsigned count = 0;

    /** Render one snapshot and exit (same as count = 1). */
    bool once = false;

    /** Write the daemon's service-latency document (consumable by
     *  `capstat report` / `capstat diff`) after the final poll. */
    std::string latencyOut;

    /** Run label embedded in the latency document. */
    std::string label = "service";
};

/**
 * Run the dashboard against @p opts.socketPath, rendering to @p os.
 * @return 0 on success, 2 on connect/protocol/IO errors (matching
 * the capstat CLI's exit-code contract).
 */
int runLive(std::ostream &os, const LiveOptions &opts);

/** Parse `capstat live` CLI arguments; false + @p error on bad
 *  usage. The one positional argument is the socket path. */
bool parseLiveArgs(const std::vector<std::string> &args,
                   LiveOptions &opts, std::string *error);

} // namespace capcheck::tools

#endif // CAPCHECK_TOOLS_CAPSTAT_LIVE_HH
