/**
 * @file
 * capgen: emit parameterized synthetic topologies.
 *
 *   capgen [--accels N] [--levels L] [--fanout F] [--channels C]
 *          [--banks B] [--scheme S] [--seed S] [--interleave BYTES]
 *          [--out FILE]
 *
 * Writes the generated topology as canonical JSON (the same text
 * `--dump-topology` would print after a round-trip) to --out, or to
 * stdout. Identical flags always produce byte-identical output; the
 * seed perturbs only parameters inside the legal envelope (crossbar
 * burst budgets, router interleave), never the wiring, so every
 * emitted graph elaborates. Exit codes: 0 ok, 2 usage/IO error.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "system/topogen.hh"

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: capgen [--accels N] [--levels L] [--fanout F]\n"
          "              [--channels C] [--banks B] [--scheme S]\n"
          "              [--seed S] [--interleave BYTES] [--out FILE]\n";
}

int
fail(const std::string &message)
{
    std::cerr << "capgen: " << message << "\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace capcheck::system;

    TopoGenParams params;
    std::string out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage(std::cerr);
                std::exit(2);
            }
            return argv[++i];
        };
        try {
            if (arg == "--accels")
                params.accels = std::stoul(value());
            else if (arg == "--levels")
                params.levels = std::stoul(value());
            else if (arg == "--fanout")
                params.fanout = std::stoul(value());
            else if (arg == "--channels")
                params.channels = std::stoul(value());
            else if (arg == "--banks")
                params.banks = std::stoul(value());
            else if (arg == "--scheme")
                params.scheme = value();
            else if (arg == "--seed")
                params.seed = std::stoull(value());
            else if (arg == "--interleave")
                params.interleaveBytes = std::stoull(value());
            else if (arg == "--out")
                out = value();
            else if (arg == "--help" || arg == "-h") {
                usage(std::cout);
                return 0;
            } else {
                usage(std::cerr);
                return fail("unknown argument '" + arg + "'");
            }
        } catch (const std::exception &) {
            return fail("argument '" + arg + "' needs a number");
        }
    }

    std::string text;
    try {
        text = generateTopology(params).toJsonText();
    } catch (const TopologyError &e) {
        return fail(e.what());
    }

    if (out.empty()) {
        std::cout << text;
        return 0;
    }
    std::ofstream os(out);
    if (!os)
        return fail("cannot write '" + out + "'");
    os << text;
    return 0;
}
