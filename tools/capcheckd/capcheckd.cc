/**
 * @file
 * capcheckd: the sweep-as-a-service daemon. Listens on a Unix-domain
 * socket, executes submitted RunRequest batches on a shared worker
 * pool with admission control, and streams results back as they
 * complete. All clients share one in-memory result cache and — with
 * --cache-dir — one disk-backed cache that survives restarts.
 *
 * Usage:
 *   capcheckd --socket /tmp/capcheck.sock [--jobs N]
 *             [--cache-dir DIR] [--cache-max-bytes N]
 *             [--max-queue N] [--max-inflight N] [--quiet]
 *             [--metrics-out FILE] [--metrics-interval MS]
 *             [--log-json FILE] [--slow-millis N]
 *
 * Prints "capcheckd: ready on <socket>" once accepting connections
 * (scripts wait for that line), then runs until SIGINT/SIGTERM. The
 * shutdown summary (with the mem-vs-disk cache-hit split from the
 * metrics registry) goes to stderr, like every other log line.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "harness/sweep_options.hh"
#include "service/server.hh"

namespace
{

// Self-pipe: the signal handler writes one byte, main() sleeps in
// poll() on the read end. Keeps the handler async-signal-safe.
int wakePipe[2] = {-1, -1};

void
onSignal(int)
{
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wakePipe[1], &byte, 1);
}

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: %s --socket PATH [options]\n"
        "\n"
        "  --socket PATH        Unix-domain socket to listen on "
        "(or CAPCHECK_SOCKET)\n"
        "  --jobs N             worker threads (default: all cores)\n"
        "  --cache-dir DIR      disk-backed result cache "
        "(or CAPCHECK_CACHE_DIR)\n"
        "  --cache-max-bytes N  LRU byte cap of the disk cache "
        "(default 1 GiB, 0 = unbounded)\n"
        "  --max-queue N        queue-depth bound for admission "
        "control (default 1024)\n"
        "  --max-inflight N     per-client in-flight request cap "
        "(default 512)\n"
        "  --max-batch N        largest accepted batch "
        "(default 4096)\n"
        "  --metrics-out FILE   Prometheus text exposition, "
        "atomically rewritten on an interval\n"
        "  --metrics-interval MS  exposition rewrite period "
        "(default 1000)\n"
        "  --log-json FILE      structured JSONL event log "
        "(admit/reject/complete/slow)\n"
        "  --slow-millis N      slow-request threshold for the JSONL "
        "log (default 1000, 0 = off)\n"
        "  --quiet              no per-client log lines\n",
        argv0);
    std::exit(code);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace capcheck;

    service::ServerOptions opts;
    opts.log = &std::cerr;
    if (const char *sock = std::getenv("CAPCHECK_SOCKET"))
        opts.socketPath = sock;
    {
        // Environment defaults shared with the client side.
        const harness::SweepOptions env =
            harness::SweepOptions::fromEnvironment();
        opts.cacheDir = env.cacheDir;
        opts.cacheMaxBytes = env.cacheMaxBytes;
    }

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "capcheckd: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            opts.socketPath = value();
        } else if (arg == "--jobs") {
            opts.jobs =
                static_cast<unsigned>(std::atoi(value()));
        } else if (arg == "--cache-dir") {
            opts.cacheDir = value();
        } else if (arg == "--cache-max-bytes") {
            opts.cacheMaxBytes =
                std::strtoull(value(), nullptr, 10);
        } else if (arg == "--max-queue") {
            opts.maxQueue =
                static_cast<std::size_t>(std::atoll(value()));
        } else if (arg == "--max-inflight") {
            opts.maxInflightPerClient =
                static_cast<std::size_t>(std::atoll(value()));
        } else if (arg == "--max-batch") {
            opts.maxBatchRequests =
                static_cast<std::size_t>(std::atoll(value()));
        } else if (arg == "--metrics-out") {
            opts.metricsOutFile = value();
        } else if (arg == "--metrics-interval") {
            opts.metricsIntervalMillis =
                static_cast<unsigned>(std::atoi(value()));
        } else if (arg == "--log-json") {
            opts.jsonLogFile = value();
        } else if (arg == "--slow-millis") {
            opts.slowMillis = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--quiet") {
            opts.log = nullptr;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "capcheckd: unknown option '%s'\n",
                         arg.c_str());
            usage(argv[0], 2);
        }
    }
    if (opts.socketPath.empty()) {
        std::fprintf(stderr, "capcheckd: --socket is required\n");
        usage(argv[0], 2);
    }

    if (::pipe(wakePipe) != 0) {
        std::perror("capcheckd: pipe");
        return 1;
    }
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);

    service::Server server(opts);
    try {
        server.start();
    } catch (const service::ServiceError &e) {
        std::fprintf(stderr, "capcheckd: %s\n", e.what());
        return 1;
    }

    // The ready line goes to stdout so scripts can gate on it even
    // with --quiet.
    std::printf("capcheckd: ready on %s\n", opts.socketPath.c_str());
    std::fflush(stdout);

    struct pollfd pfd;
    pfd.fd = wakePipe[0];
    pfd.events = POLLIN;
    while (true) {
        const int rc = ::poll(&pfd, 1, -1);
        if (rc > 0 || (rc < 0 && errno != EINTR))
            break;
    }

    const service::ServiceStats stats = server.stats();
    server.stop();
    // stderr, like every log line: stdout stays reserved for the
    // machine-readable ready line.
    const auto c = [&](const char *name) {
        return static_cast<unsigned long long>(
            stats.metrics.counterValue(name));
    };
    std::fprintf(stderr,
                 "capcheckd: shut down (executed=%llu cacheHits=%llu "
                 "[mem=%llu disk=%llu coalesced=%llu] "
                 "rejectedOverload=%llu)\n",
                 static_cast<unsigned long long>(stats.executed),
                 static_cast<unsigned long long>(stats.cacheHits),
                 c("requests.cacheHitsMem"),
                 c("requests.cacheHitsDisk"),
                 c("requests.coalesced"),
                 static_cast<unsigned long long>(
                     stats.rejectedOverload));
    return 0;
}
