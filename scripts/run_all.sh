#!/usr/bin/env bash
# Regenerate everything: build, test, and reproduce every table/figure.
# Usage: scripts/run_all.sh [--jobs N] [--json-dir DIR] [build-dir]
#
# --jobs and --json-dir are forwarded to every bench harness: the
# sweep engine parallelizes each harness's simulation points across N
# worker threads, and --json-dir collects machine-readable results for
# all harnesses in one tree (repeated points are cached per process).
set -euo pipefail

BUILD=build
BENCH_ARGS=()
while [ $# -gt 0 ]; do
    case "$1" in
        --jobs|-j) BENCH_ARGS+=("--jobs" "$2"); shift 2 ;;
        --jobs=*) BENCH_ARGS+=("$1"); shift ;;
        --json-dir) BENCH_ARGS+=("--json-dir" "$2"); shift 2 ;;
        --json-dir=*) BENCH_ARGS+=("$1"); shift ;;
        *) BUILD=$1; shift ;;
    esac
done
cd "$(dirname "$0")/.."

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

echo
echo "=== Reproducing all tables and figures ==="
for b in "$BUILD"/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
        case "$(basename "$b")" in
            micro_components) "$b" ;;  # google-benchmark CLI
            *) "$b" ${BENCH_ARGS[@]+"${BENCH_ARGS[@]}"} ;;
        esac
    fi
done

echo
echo "=== Examples ==="
for e in quickstart attack_blocked mixed_system capability_tree inspect; do
    "$BUILD/examples/$e" > /dev/null && echo "$e: OK"
done
