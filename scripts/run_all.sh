#!/usr/bin/env bash
# Regenerate everything: build, test, and reproduce every table/figure.
# Usage: scripts/run_all.sh [build-dir]
set -euo pipefail

BUILD=${1:-build}
cd "$(dirname "$0")/.."

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

echo
echo "=== Reproducing all tables and figures ==="
for b in "$BUILD"/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
        "$b"
    fi
done

echo
echo "=== Examples ==="
for e in quickstart attack_blocked mixed_system capability_tree inspect; do
    "$BUILD/examples/$e" > /dev/null && echo "$e: OK"
done
