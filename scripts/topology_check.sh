#!/usr/bin/env bash
# Round-trip every example topology through the JSON loader: a file is
# canonical iff load -> dump reproduces it byte for byte, and a second
# load -> dump of the dump proves the printer emits what the parser
# reads (lossless round trip). Also dumps the five builtin shapes and
# checks each against its checked-in examples/topologies/<name>.json,
# so the builtins and the example files can never drift apart.
#
# When capgen is built, the generator is gated too: identical flags
# must emit byte-identical topologies, the emitted graph must already
# be canonical (load -> dump is the identity), and the committed
# generated example (examples/topologies/gen-mega.json) must match
# what capgen emits for its recorded parameters — so the generator
# cannot drift away from the checked-in mega-topology, which the
# example loop above also round-trips.
#
# usage: topology_check.sh [BUILD_DIR]
set -euo pipefail

build=${1:-build}
cd "$(dirname "$0")/.."

dumper="$build/bench/table1_properties"
if [ ! -x "$dumper" ]; then
    echo "topology_check: $dumper not built" >&2
    exit 2
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

fail=0

for f in examples/topologies/*.json; do
    "$dumper" --topology "$f" --dump-topology > "$work/pass1.json"
    if ! cmp -s "$f" "$work/pass1.json"; then
        echo "NOT CANONICAL $f (load -> dump changed it):" >&2
        diff "$f" "$work/pass1.json" >&2 || true
        fail=1
        continue
    fi
    "$dumper" --topology "$work/pass1.json" --dump-topology \
        > "$work/pass2.json"
    if ! cmp -s "$work/pass1.json" "$work/pass2.json"; then
        echo "ROUND-TRIP LOSSY $f (dump -> load -> dump diverged)" >&2
        diff "$work/pass1.json" "$work/pass2.json" >&2 || true
        fail=1
        continue
    fi
    echo "ok $f"
done

for mode in cpu ccpu cpu+accel ccpu+accel ccpu+caccel; do
    "$dumper" --dump-topology="$mode" > "$work/builtin.json"
    if ! cmp -s "examples/topologies/$mode.json" "$work/builtin.json"; then
        echo "BUILTIN DRIFT: examples/topologies/$mode.json no longer" \
             "matches the builtin '$mode' topology" >&2
        diff "examples/topologies/$mode.json" "$work/builtin.json" >&2 || true
        fail=1
        continue
    fi
    echo "ok builtin $mode"
done

capgen="$build/tools/capgen"
if [ -x "$capgen" ]; then
    # Determinism: same flags, same bytes.
    gen_flags=(--accels 128 --levels 2 --fanout 4 --channels 4 --seed 7)
    "$capgen" "${gen_flags[@]}" > "$work/gen1.json"
    "$capgen" "${gen_flags[@]}" > "$work/gen2.json"
    if ! cmp -s "$work/gen1.json" "$work/gen2.json"; then
        echo "CAPGEN NONDETERMINISTIC: identical flags emitted" \
             "different topologies" >&2
        fail=1
    fi
    # Canonical on arrival: load -> dump must be the identity.
    "$dumper" --topology "$work/gen1.json" --dump-topology \
        > "$work/gen1-redump.json"
    if ! cmp -s "$work/gen1.json" "$work/gen1-redump.json"; then
        echo "CAPGEN NOT CANONICAL (load -> dump changed it):" >&2
        diff "$work/gen1.json" "$work/gen1-redump.json" >&2 || true
        fail=1
    fi
    # And the committed mega example is exactly what capgen emits.
    if ! cmp -s examples/topologies/gen-mega.json "$work/gen1.json"; then
        echo "CAPGEN DRIFT: examples/topologies/gen-mega.json no" \
             "longer matches 'capgen ${gen_flags[*]}'" >&2
        diff examples/topologies/gen-mega.json "$work/gen1.json" >&2 || true
        fail=1
    fi
    [ $fail -eq 0 ] && echo "ok capgen determinism + gen-mega drift"
else
    echo "topology_check: $capgen not built, skipping generator gate" >&2
fi

exit $fail
