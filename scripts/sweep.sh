#!/usr/bin/env bash
# Run the full paper experiment grid (Figs. 7-11 simulation points)
# through the parallel sweep engine, writing structured JSON results.
#
# Usage: scripts/sweep.sh [--jobs N] [--json-dir DIR] [--quick]
#                         [--build-dir DIR]
#
#   --jobs N       worker threads (default: all cores)
#   --json-dir DIR where run-<hash>.json + manifest land
#                  (default: results/)
#   --quick        spot-check subset of the grid
#   --build-dir D  CMake build tree (default: build)
#
# Extra flags (e.g. --no-cache, --quiet, --server SOCK to submit to
# a running capcheckd daemon, --cache-dir DIR for the disk-backed
# result cache) are passed through to sweep_grid unchanged.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD=build
JSON_DIR=results
ARGS=()
while [ $# -gt 0 ]; do
    case "$1" in
        --build-dir) BUILD=$2; shift 2 ;;
        --build-dir=*) BUILD=${1#--build-dir=}; shift ;;
        --json-dir) JSON_DIR=$2; shift 2 ;;
        --json-dir=*) JSON_DIR=${1#--json-dir=}; shift ;;
        *) ARGS+=("$1"); shift ;;
    esac
done

if [ ! -x "$BUILD/bench/sweep_grid" ]; then
    cmake -B "$BUILD" -G Ninja
    cmake --build "$BUILD" --target sweep_grid
fi

mkdir -p "$JSON_DIR"
exec "$BUILD/bench/sweep_grid" --json-dir "$JSON_DIR" ${ARGS[@]+"${ARGS[@]}"}
