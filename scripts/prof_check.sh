#!/usr/bin/env bash
# Gate for the host-time self-profiler (obs/prof, --prof-out):
# profiling must observe without perturbing.
#
# Four stages:
#  1. Byte identity: the quick grid runs with the profiler off and on
#     (at --jobs 1 and --jobs N), and every simulated artefact —
#     per-run result JSON and latency artefacts — must be
#     byte-identical across all four runs. Enabling --prof-out /
#     --prof-folded may never change simulated behaviour.
#  2. Profile shape: every profiled run must emit a
#     run-<hash>.prof.json whose schema is capcheck.prof.v1, whose
#     per-domain selfNanos sum exactly to its wallNanos (the "other"
#     domain closes the books), whose shares sum to ~1, and a folded
#     stacks file whose total matches.
#  3. Reader tools: `capstat prof report` renders the profiles and
#     `capstat prof merge` + self-`diff` at tolerance 0 passes — the
#     merged document is a valid baseline format.
#  4. Overhead ceiling: the profiled grid may be at most
#     PROF_MAX_OVERHEAD times slower than the unprofiled grid.
#     Profiling reads the steady clock twice per dispatched event, so
#     event-granularity attribution roughly doubles the hot loop
#     (~1.9x measured); the 2.5x default absorbs runner noise on top
#     while still catching an accidentally quadratic profiler.
#
# usage: prof_check.sh BUILD_DIR
set -euo pipefail

build=${1:?usage: prof_check.sh BUILD_DIR}
jobs=${JOBS:-4}
max_overhead=${PROF_MAX_OVERHEAD:-2.5}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# run NAME [extra sweep_grid args...] -> wall seconds on stdout.
# Runs the quick grid with result JSON + latency artefacts into
# $work/NAME; caching is off so every run simulates.
run_grid() {
    local name=$1
    shift
    local t0 t1
    mkdir -p "$work/$name"
    t0=$(date +%s%N)
    "$build/bench/sweep_grid" --quick --quiet --no-cache \
        --json-dir "$work/$name/results" \
        --latency-json "$work/$name/latency" "$@" >&2
    t1=$(date +%s%N)
    awk "BEGIN { printf \"%.3f\", ($t1 - $t0) / 1e9 }"
}

echo "prof_check: [1/4] byte identity, profiler off vs on"
base_secs=$(run_grid off-j1 --jobs 1)
prof_secs=$(run_grid on-j1 --jobs 1 \
    --prof-out "$work/on-j1/prof" --prof-folded "$work/on-j1/folded")
run_grid off-jN --jobs "$jobs" > /dev/null
run_grid on-jN --jobs "$jobs" \
    --prof-out "$work/on-jN/prof" \
    --prof-folded "$work/on-jN/folded" > /dev/null

# Per-run result JSON and latency artefacts must match byte for byte.
# The sweep manifest also carries host wall-clock measurements
# (wallMillis, the runWall profile block, workerUtilization) that
# differ between ANY two runs; those are stripped and everything else
# must match exactly.
# Every per-run artefact is --jobs independent, so all four variants
# compare against off-j1.
for variant in on-j1 off-jN on-jN; do
    for sub in results latency; do
        diff -r --exclude=sweep_grid.manifest.json \
            "$work/off-j1/$sub" "$work/$variant/$sub" > /dev/null || {
            echo "prof_check: FAIL: $sub artefacts differ" \
                 "between off-j1 and $variant"
            exit 1
        }
    done
done
# The manifest carries the worker count and host wall-clock
# measurements (wallMillis, the runWall profile block,
# workerUtilization) that legitimately differ between ANY two runs;
# profiler-on vs off is compared at matching --jobs with the host
# timings stripped, and everything else must match exactly.
for pair in j1 jN; do
    python3 - "$work/off-$pair/results/sweep_grid.manifest.json" \
        "$work/on-$pair/results/sweep_grid.manifest.json" <<'EOF'
import json, sys

HOST_TIME_KEYS = {
    "wallMillis", "simWallMillis", "sweepWallMillis", "runWall",
    "workerUtilization",
}

def strip(v):
    if isinstance(v, dict):
        return {k: strip(m) for k, m in v.items()
                if k not in HOST_TIME_KEYS}
    if isinstance(v, list):
        return [strip(e) for e in v]
    return v

a, b = (strip(json.load(open(p))) for p in sys.argv[1:3])
assert a == b, f"manifests diverge beyond host timings: {sys.argv[2]}"
EOF
done
echo "prof_check: artefacts byte-identical across off/on, jobs 1/$jobs"

echo "prof_check: [2/4] profile shape and exact books"
python3 - "$work/on-j1/prof" "$work/on-j1/folded" <<'EOF'
import glob, json, os, sys

prof_dir, folded_dir = sys.argv[1], sys.argv[2]
profs = sorted(glob.glob(os.path.join(prof_dir, "run-*.prof.json")))
assert profs, "no run-*.prof.json written"
for path in profs:
    with open(path) as f:
        doc = json.load(f)
    assert doc["schema"] == "capcheck.prof.v1", path
    assert doc["label"], path
    assert doc["kernel"], path
    wall = doc["wallNanos"]
    assert wall > 0, path
    domains = doc["domains"]
    assert domains[-1]["domain"] == "other", path
    self_sum = sum(d["selfNanos"] for d in domains)
    assert self_sum == wall, f"{path}: domain self {self_sum} != wall {wall}"
    share_sum = sum(d["share"] for d in domains)
    assert abs(share_sum - 1.0) < 1e-6, f"{path}: shares sum to {share_sum}"
    for site in doc["sites"]:
        assert site["calls"] > 0, path

    # The folded twin: same hash, self times sum to the same wall.
    folded = os.path.join(
        folded_dir,
        os.path.basename(path).replace(".prof.json", ".folded"))
    assert os.path.exists(folded), f"missing {folded}"
    folded_sum = 0
    with open(folded) as f:
        for line in f:
            stack, nanos = line.rsplit(" ", 1)
            folded_sum += int(nanos)
    assert folded_sum == wall, \
        f"{folded}: folded total {folded_sum} != wall {wall}"
print(f"{len(profs)} profiles validated (self-times close the books)")
EOF

echo "prof_check: [3/4] capstat prof report / merge / diff"
"$build/tools/capstat" prof report --sites 3 \
    "$work"/on-j1/prof/run-*.prof.json > /dev/null
"$build/tools/capstat" prof merge -o "$work/merged.prof.json" \
    "$work"/on-j1/prof/run-*.prof.json
"$build/tools/capstat" prof diff --tolerance 0 \
    "$work/merged.prof.json" "$work/merged.prof.json"

echo "prof_check: [4/4] overhead ceiling" \
     "(off ${base_secs}s, on ${prof_secs}s, max ${max_overhead}x)"
awk "BEGIN { exit !($prof_secs <= $base_secs * $max_overhead) }" || {
    echo "prof_check: FAIL: profiled grid ${prof_secs}s exceeds" \
         "${max_overhead}x of unprofiled ${base_secs}s"
    exit 1
}
echo "prof_check: PASS"
