#!/usr/bin/env bash
# Regenerate the committed latency baseline (BENCH_baseline.json) from
# the current build. Run this after an intentional performance change,
# review the `capstat diff` output against the old baseline, and commit
# the refreshed file together with the change that moved the numbers.
#
# usage: update_baseline.sh [BUILD_DIR]
set -euo pipefail

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-$repo/build}
baseline=$repo/BENCH_baseline.json

if [[ -f $baseline ]]; then
    old=$(mktemp)
    cp "$baseline" "$old"
    "$repo/scripts/perf_smoke.sh" "$build" "$baseline"
    echo "--- change vs previous baseline ---"
    "$build/tools/capstat" diff "$old" "$baseline" || true
    rm -f "$old"
else
    "$repo/scripts/perf_smoke.sh" "$build" "$baseline"
fi
echo "update_baseline: wrote $baseline"
