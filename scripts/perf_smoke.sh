#!/usr/bin/env bash
# Run the quick benchmark grid with flight recording enabled and merge
# the per-run latency artefacts into a single label-keyed report that
# `capstat diff` can gate on (see BENCH_baseline.json at the repo
# root). Every number in the report comes from simulated cycles, so
# the output is byte-identical regardless of --jobs or host speed.
#
# usage: perf_smoke.sh BUILD_DIR OUT.json [extra sweep_grid args...]
set -euo pipefail

build=${1:?usage: perf_smoke.sh BUILD_DIR OUT.json [args...]}
out=${2:?usage: perf_smoke.sh BUILD_DIR OUT.json [args...]}
shift 2

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

"$build/bench/sweep_grid" --quick --quiet --jobs "${JOBS:-2}" \
    --latency-json "$work" "$@"

"$build/tools/capstat" merge -o "$out" "$work"/run-*.latency.json
echo "perf_smoke: wrote $out"
