#!/usr/bin/env bash
# Gate the capcheckd service mode: the quick experiment grid run
# through a live daemon must produce artefacts byte-identical to an
# in-process run (capstat diff --tolerance 0 over merged latency
# summaries, plus a literal byte compare of every run-<hash>.json),
# and a daemon restarted on the same --cache-dir must serve the whole
# batch from the disk cache without executing a single simulation.
#
# Usage: scripts/service_check.sh [--build-dir DIR] [--jobs N]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD=build
JOBS=${JOBS:-2}
while [ $# -gt 0 ]; do
    case "$1" in
        --build-dir) BUILD=$2; shift 2 ;;
        --build-dir=*) BUILD=${1#--build-dir=}; shift ;;
        --jobs) JOBS=$2; shift 2 ;;
        --jobs=*) JOBS=${1#--jobs=}; shift ;;
        *) echo "service_check.sh: unknown option '$1'" >&2; exit 2 ;;
    esac
done

for tool in bench/sweep_grid tools/capstat tools/capcheckd; do
    if [ ! -x "$BUILD/$tool" ]; then
        cmake -B "$BUILD" -G Ninja
        cmake --build "$BUILD" --target sweep_grid capstat capcheckd
        break
    fi
done

WORK=$(mktemp -d)
SOCK="$WORK/capcheck.sock"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    [ -n "$DAEMON_PID" ] && wait "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() {
    "$BUILD/tools/capcheckd" --socket "$SOCK" --jobs "$JOBS" \
        --cache-dir "$WORK/cache" --quiet > "$WORK/daemon.out" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 50); do
        [ -S "$SOCK" ] && return 0
        sleep 0.1
    done
    echo "service_check: daemon never became ready" >&2
    cat "$WORK/daemon.out" >&2
    exit 1
}

stop_daemon() {
    kill -TERM "$DAEMON_PID"
    wait "$DAEMON_PID"
    DAEMON_PID=""
}

echo "== in-process baseline =="
"$BUILD/bench/sweep_grid" --quick --quiet --jobs "$JOBS" \
    --json-dir "$WORK/local" --latency-json "$WORK/local-lat" \
    > /dev/null
"$BUILD/tools/capstat" merge -o "$WORK/local.json" \
    "$WORK/local-lat"/*.latency.json > /dev/null

echo "== same grid through capcheckd =="
start_daemon
"$BUILD/bench/sweep_grid" --quick --quiet --jobs "$JOBS" \
    --json-dir "$WORK/remote" --latency-json "$WORK/remote-lat" \
    --server "$SOCK" > /dev/null
stop_daemon

echo "== byte compare of run JSON =="
diff -r "$WORK/local" "$WORK/remote" --exclude='*.manifest.json'

echo "== capstat diff --tolerance 0 =="
"$BUILD/tools/capstat" merge -o "$WORK/remote.json" \
    "$WORK/remote-lat"/*.latency.json > /dev/null
"$BUILD/tools/capstat" diff --tolerance 0 \
    "$WORK/local.json" "$WORK/remote.json"

echo "== restart: batch must come entirely from the disk cache =="
start_daemon
"$BUILD/bench/sweep_grid" --quick --quiet --jobs "$JOBS" \
    --json-dir "$WORK/restart" --server "$SOCK" > /dev/null
stop_daemon
if ! grep -q "executed=0" "$WORK/daemon.out"; then
    echo "service_check: restarted daemon re-executed simulations:" >&2
    cat "$WORK/daemon.out" >&2
    exit 1
fi
diff -r "$WORK/remote" "$WORK/restart" --exclude='*.manifest.json'

echo "service_check: PASS"
