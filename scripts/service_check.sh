#!/usr/bin/env bash
# Gate the capcheckd service mode: the quick experiment grid run
# through a live daemon must produce artefacts byte-identical to an
# in-process run (capstat diff --tolerance 0 over merged latency
# summaries, plus a literal byte compare of every run-<hash>.json),
# and a daemon restarted on the same --cache-dir must serve the whole
# batch from the disk cache without executing a single simulation.
#
# The daemon runs with its telemetry on, and the gate also covers it:
#  - `capstat live --once` must render a non-empty dashboard and write
#    a service-latency document that self-diffs green at tolerance 0;
#  - the Prometheus exposition must satisfy the counter conservation
#    identities (received = admitted + rejected; admitted = executed +
#    cacheHitsMem + cacheHitsDisk + coalesced + failed);
#  - every "complete" event in the JSONL log must have span segments
#    summing exactly to its end-to-end time.
# Set SERVICE_ARTIFACTS=DIR to keep the telemetry files for upload.
#
# Usage: scripts/service_check.sh [--build-dir DIR] [--jobs N]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD=build
JOBS=${JOBS:-2}
while [ $# -gt 0 ]; do
    case "$1" in
        --build-dir) BUILD=$2; shift 2 ;;
        --build-dir=*) BUILD=${1#--build-dir=}; shift ;;
        --jobs) JOBS=$2; shift 2 ;;
        --jobs=*) JOBS=${1#--jobs=}; shift ;;
        *) echo "service_check.sh: unknown option '$1'" >&2; exit 2 ;;
    esac
done

for tool in bench/sweep_grid tools/capstat tools/capcheckd; do
    if [ ! -x "$BUILD/$tool" ]; then
        cmake -B "$BUILD" -G Ninja
        cmake --build "$BUILD" --target sweep_grid capstat capcheckd
        break
    fi
done

WORK=$(mktemp -d)
SOCK="$WORK/capcheck.sock"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    [ -n "$DAEMON_PID" ] && wait "$DAEMON_PID" 2>/dev/null || true
    if [ -n "${SERVICE_ARTIFACTS:-}" ]; then
        mkdir -p "$SERVICE_ARTIFACTS"
        cp -f "$WORK"/metrics-*.prom "$WORK"/events-*.jsonl \
            "$WORK/live.out" "$WORK/service.latency.json" \
            "$SERVICE_ARTIFACTS"/ 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

# start_daemon TAG: telemetry artefacts are per-phase (metrics-TAG.prom
# / events-TAG.jsonl) so the restart phase does not clobber the first
# daemon's exposition before the conservation check reads it.
start_daemon() {
    local tag=$1
    "$BUILD/tools/capcheckd" --socket "$SOCK" --jobs "$JOBS" \
        --cache-dir "$WORK/cache" --quiet \
        --metrics-out "$WORK/metrics-$tag.prom" \
        --metrics-interval 200 \
        --log-json "$WORK/events-$tag.jsonl" \
        > "$WORK/daemon.out" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 50); do
        [ -S "$SOCK" ] && return 0
        sleep 0.1
    done
    echo "service_check: daemon never became ready" >&2
    cat "$WORK/daemon.out" >&2
    exit 1
}

stop_daemon() {
    kill -TERM "$DAEMON_PID"
    wait "$DAEMON_PID"
    DAEMON_PID=""
}

echo "== in-process baseline =="
"$BUILD/bench/sweep_grid" --quick --quiet --jobs "$JOBS" \
    --json-dir "$WORK/local" --latency-json "$WORK/local-lat" \
    > /dev/null
"$BUILD/tools/capstat" merge -o "$WORK/local.json" \
    "$WORK/local-lat"/*.latency.json > /dev/null

echo "== same grid through capcheckd =="
start_daemon grid
"$BUILD/bench/sweep_grid" --quick --quiet --jobs "$JOBS" \
    --json-dir "$WORK/remote" --latency-json "$WORK/remote-lat" \
    --server "$SOCK" --trace-id service-check > /dev/null

echo "== capstat live dashboard + service latency document =="
"$BUILD/tools/capstat" live "$SOCK" --once \
    --latency-out "$WORK/service.latency.json" > "$WORK/live.out"
grep -q "requests: received=" "$WORK/live.out" || {
    echo "service_check: capstat live rendered no dashboard:" >&2
    cat "$WORK/live.out" >&2
    exit 1
}
"$BUILD/tools/capstat" diff --tolerance 0 \
    "$WORK/service.latency.json" "$WORK/service.latency.json" \
    > /dev/null
stop_daemon

echo "== telemetry conservation + span-sum identities =="
python3 - "$WORK/metrics-grid.prom" "$WORK/events-grid.jsonl" <<'EOF'
import json, sys

counters = {}
with open(sys.argv[1]) as f:
    for line in f:
        if line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) == 2:
            counters[parts[0]] = float(parts[1])

def c(name):
    return counters.get("capcheck_" + name, 0)

received = c("requests_received")
admitted = c("requests_admitted")
rejected = c("requests_rejected")
outcomes = (c("requests_executed") + c("requests_cacheHitsMem") +
            c("requests_cacheHitsDisk") + c("requests_coalesced") +
            c("requests_failed"))
assert received == admitted + rejected, (received, admitted, rejected)
assert admitted == outcomes, (admitted, outcomes)
assert admitted > 0, "daemon admitted nothing"
assert c("span_endToEnd_count") == admitted

completes = 0
with open(sys.argv[2]) as f:
    for line in f:
        ev = json.loads(line)
        if ev.get("event") != "complete":
            continue
        completes += 1
        parts = (ev["admitNanos"] + ev["queueNanos"] +
                 ev["executeNanos"] + ev["renderNanos"] +
                 ev["streamNanos"])
        assert parts == ev["endToEndNanos"], ev
        assert ev["traceId"].startswith("service-check#"), ev
assert completes == admitted, (completes, admitted)
print(f"conservation OK: {int(admitted)} requests, "
      f"{completes} spans sum exactly")
EOF

echo "== byte compare of run JSON =="
diff -r "$WORK/local" "$WORK/remote" --exclude='*.manifest.json'

echo "== capstat diff --tolerance 0 =="
"$BUILD/tools/capstat" merge -o "$WORK/remote.json" \
    "$WORK/remote-lat"/*.latency.json > /dev/null
"$BUILD/tools/capstat" diff --tolerance 0 \
    "$WORK/local.json" "$WORK/remote.json"

echo "== restart: batch must come entirely from the disk cache =="
start_daemon restart
"$BUILD/bench/sweep_grid" --quick --quiet --jobs "$JOBS" \
    --json-dir "$WORK/restart" --server "$SOCK" > /dev/null
stop_daemon
if ! grep -q "executed=0" "$WORK/daemon.out"; then
    echo "service_check: restarted daemon re-executed simulations:" >&2
    cat "$WORK/daemon.out" >&2
    exit 1
fi
diff -r "$WORK/remote" "$WORK/restart" --exclude='*.manifest.json'

echo "service_check: PASS"
