#!/usr/bin/env bash
# Differential + performance gate for the fast simulation kernels
# (sim/kernels registry, --kernel fast).
#
# Three stages:
#  1. Run the quick benchmark grid with --kernel compare: every point
#     executes under the reference and fast kernels back to back and
#     the harness panics on any divergence in results, stats dumps, or
#     observability artefacts (byte-for-byte).
#  2. Run the grid timed under --kernel ref and --kernel fast (both
#     --no-cache, same --jobs) with the flight recorder on, and diff
#     the merged latency artefacts at ZERO tolerance in both
#     directions (a one-sided diff would let improvements slip
#     through; bit-exactness has no good direction). --strip-label
#     kernel removes the deliberate " kernel=fast" label axis so the
#     runs pair up. The grid wall-clocks are recorded for reference
#     but not gated: the grid mixes in compute-bound workloads whose
#     event streams are identical under both kernels (every beat is
#     followed by a datapath delay, so there is no polling to remove)
#     plus per-point host work (trace generation, functional checks)
#     that no simulation kernel can speed up.
#  3. Gate the wall-clock speedup on kernel_bench, which measures the
#     configuration the fast kernels target — replaying a DMA-bound
#     benchmark at full instance contention — interleaving ref and
#     fast rounds and taking best-of-N to strip scheduler noise. Fast
#     must beat ref by at least KERNEL_MIN_SPEEDUP (default 1.3); the
#     measurement is written to OUT.json (see BENCH_kernels.json at
#     the repo root for a sample). Unlike BENCH_baseline.json these
#     numbers are host wall-clock, so the committed file documents
#     one machine — the gate always recomputes.
#
# With PROF_DIR set, the timed grids additionally write host-time
# profiles (run-*.prof.json + folded stacks) under $PROF_DIR/<kernel>
# so a CI failure ships the attribution evidence alongside the
# wall-clock numbers. Profiling runs are separate from the timed runs
# — the gate never times a profiled grid.
#
# usage: kernel_check.sh BUILD_DIR [OUT.json]
set -euo pipefail

build=${1:?usage: kernel_check.sh BUILD_DIR [OUT.json]}
out=${2:-BENCH_kernels.json}
min=${KERNEL_MIN_SPEEDUP:-1.3}
jobs=${JOBS:-2}
rounds=${KERNEL_BENCH_ROUNDS:-3}
prof_dir=${PROF_DIR:-}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "kernel_check: [1/3] differential gate (--kernel compare)"
"$build/bench/sweep_grid" --quick --quiet --no-cache --jobs "$jobs" \
    --kernel compare

# The same differential gate over a generated mega-topology: 128
# accelerators on a two-level crossbar tree with four interleaved
# channels, so the fast kernels are also compared beat-for-beat on
# cascaded arbitration and multi-hop flight attribution.
"$build/tools/capgen" --accels 128 --levels 2 --fanout 4 \
    --channels 4 --seed 7 --out "$work/mega.json"
"$build/bench/table1_properties" --quiet --no-cache --jobs "$jobs" \
    --kernel compare --topology "$work/mega.json"

echo "kernel_check: [2/3] timed grids + tolerance-0 artefact diff"
timed_grid() { # kernel -> wall-clock seconds on stdout
    local kernel=$1
    local t0 t1
    mkdir -p "$work/$kernel"
    t0=$(date +%s%N)
    "$build/bench/sweep_grid" --quick --quiet --no-cache \
        --jobs "$jobs" --kernel "$kernel" \
        --latency-json "$work/$kernel" >&2
    t1=$(date +%s%N)
    "$build/tools/capstat" merge -o "$work/$kernel.json" \
        "$work/$kernel"/run-*.latency.json >&2
    awk "BEGIN { printf \"%.3f\", ($t1 - $t0) / 1e9 }"
}

grid_ref_secs=$(timed_grid ref)
grid_fast_secs=$(timed_grid fast)

if [ -n "$prof_dir" ]; then
    echo "kernel_check: profiled grids (host-time attribution)" \
         "-> $prof_dir"
    for kernel in ref fast; do
        mkdir -p "$prof_dir/$kernel"
        "$build/bench/sweep_grid" --quick --quiet --no-cache \
            --jobs "$jobs" --kernel "$kernel" \
            --prof-out "$prof_dir/$kernel" \
            --prof-folded "$prof_dir/$kernel"
        "$build/tools/capstat" prof merge \
            -o "$prof_dir/$kernel.prof.json" \
            "$prof_dir/$kernel"/run-*.prof.json
    done
fi

"$build/tools/capstat" diff --tolerance 0 --strip-label kernel \
    "$work/ref.json" "$work/fast.json"
"$build/tools/capstat" diff --tolerance 0 --strip-label kernel \
    "$work/fast.json" "$work/ref.json"

echo "kernel_check: [3/3] wall-clock gate (kernel_bench, best-of-$rounds)"
bench_out=$("$build/bench/kernel_bench" --jobs "$jobs" \
    --repeat "$rounds" --quiet | tee /dev/stderr | \
    awk '/^kernel_bench: /{ print $2, $3, $4 }')
ref_secs=$(echo "$bench_out" | sed 's/.*ref=\([0-9.]*\).*/\1/')
fast_secs=$(echo "$bench_out" | sed 's/.*fast=\([0-9.]*\).*/\1/')
speedup=$(echo "$bench_out" | sed 's/.*speedup=\([0-9.]*\).*/\1/')

cat > "$out" <<EOF
{
  "bench": "kernel_bench (kmp, 8 tasks, ccpu+accel and ccpu+caccel)",
  "jobs": $jobs,
  "rounds": $rounds,
  "refWallSeconds": $ref_secs,
  "fastWallSeconds": $fast_secs,
  "speedup": $speedup,
  "minSpeedup": $min,
  "quickGridRefWallSeconds": $grid_ref_secs,
  "quickGridFastWallSeconds": $grid_fast_secs
}
EOF

echo "kernel_check: ref ${ref_secs}s, fast ${fast_secs}s," \
     "speedup ${speedup}x (floor ${min}x); wrote $out"
awk "BEGIN { exit !($speedup >= $min) }" || {
    echo "kernel_check: FAIL: speedup ${speedup}x below ${min}x floor"
    exit 1
}
echo "kernel_check: PASS"
