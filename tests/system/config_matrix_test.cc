/**
 * @file
 * Robustness sweep over the SoC configuration space: every combination
 * of provenance mode, capability cache, checker distribution, and
 * interconnect burst length must execute benchmarks correctly with no
 * spurious protection exceptions. Guards against feature interactions
 * (e.g. a cached checker inside a per-accelerator bank under Coarse
 * addressing).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "system/soc_system.hh"
#include "workloads/kernel.hh"

namespace capcheck::system
{
namespace
{

using Combo = std::tuple<capchecker::Provenance, unsigned /*cache*/,
                         bool /*perAccel*/, unsigned /*burst*/>;

class ConfigMatrix : public ::testing::TestWithParam<Combo>
{
};

TEST_P(ConfigMatrix, GemmRunsCorrectly)
{
    const auto [prov, cache, per_accel, burst] = GetParam();
    SocConfig cfg;
    cfg.mode = SystemMode::ccpuCaccel;
    cfg.provenance = prov;
    cfg.capCacheEntries = cache;
    cfg.perAccelCheckers = per_accel;
    cfg.xbarMaxBurst = burst;
    cfg.seed = 11;

    const RunResult r = SocSystem(cfg).runBenchmark("gemm_ncubed", 4);
    EXPECT_TRUE(r.functionallyCorrect);
    EXPECT_EQ(r.exceptions, 0u);
    EXPECT_GT(r.dmaBeats, 0u);
}

TEST_P(ConfigMatrix, ExternalTrafficBenchmarkRunsCorrectly)
{
    const auto [prov, cache, per_accel, burst] = GetParam();
    SocConfig cfg;
    cfg.mode = SystemMode::ccpuCaccel;
    cfg.provenance = prov;
    cfg.capCacheEntries = cache;
    cfg.perAccelCheckers = per_accel;
    cfg.xbarMaxBurst = burst;
    cfg.seed = 11;

    // md_knn exercises per-beat external checks, short runs, and
    // multiple capabilities per task.
    const RunResult r = SocSystem(cfg).runBenchmark("md_knn", 4);
    EXPECT_TRUE(r.functionallyCorrect);
    EXPECT_EQ(r.exceptions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ConfigMatrix,
    ::testing::Combine(
        ::testing::Values(capchecker::Provenance::fine,
                          capchecker::Provenance::coarse),
        ::testing::Values(0u, 16u),
        ::testing::Bool(),
        ::testing::Values(1u, 8u)),
    [](const auto &info) {
        std::string name =
            std::get<0>(info.param) == capchecker::Provenance::fine
                ? "fine"
                : "coarse";
        name += std::get<1>(info.param) ? "_cached" : "_sram";
        name += std::get<2>(info.param) ? "_bank" : "_shared";
        name += "_burst" + std::to_string(std::get<3>(info.param));
        return name;
    });

TEST(ConfigMatrixEdge, MixedOnCpuOnlyModesFallsBackToSequential)
{
    // runMixed on a CPU-only configuration: tasks run back-to-back on
    // the core with no driver involvement.
    SocConfig cfg;
    cfg.mode = SystemMode::ccpu;
    const RunResult r =
        SocSystem(cfg).runMixed({"aes", "sort_radix", "kmp"});
    EXPECT_TRUE(r.functionallyCorrect);
    EXPECT_EQ(r.numTasks, 3u);
    EXPECT_EQ(r.driverAllocCycles, 0u);
    EXPECT_EQ(r.benchmark, "mixed");
}

TEST(ConfigMatrixEdge, SingleTaskSingleInstance)
{
    SocConfig cfg;
    cfg.mode = SystemMode::ccpuCaccel;
    cfg.numInstances = 1;
    const RunResult r = SocSystem(cfg).runBenchmark("fft_transpose", 1);
    EXPECT_TRUE(r.functionallyCorrect);
    EXPECT_EQ(r.numTasks, 1u);
}

} // namespace
} // namespace capcheck::system
