/**
 * @file
 * Tests for the declarative topology layer: builtin shapes, JSON
 * parsing/validation, lossless round-tripping, elaboration into a
 * bound platform graph, and — the load-bearing property — that runs on
 * a JSON-loaded topology reproduce the builtin platform's results
 * byte for byte while new shapes (multi-channel memory, banked
 * checkers) elaborate and run MachSuite correctly.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/json_value.hh"
#include "harness/run_request.hh"
#include "obs/options.hh"
#include "system/elaborator.hh"
#include "system/soc_config_builder.hh"
#include "system/soc_system.hh"
#include "system/topogen.hh"

namespace capcheck::system
{
namespace
{

namespace fs = std::filesystem;

SocConfig
config(SystemMode mode)
{
    SocConfig cfg;
    cfg.mode = mode;
    cfg.numInstances = 2;
    cfg.collectStats = true;
    cfg.seed = 3;
    return cfg;
}

/** Write @p text under a unique name in the temp dir; caller removes. */
std::string
writeTempFile(const std::string &stem, const std::string &text)
{
    const fs::path path =
        fs::temp_directory_path() / (stem + ".topo.json");
    std::ofstream os(path);
    os << text;
    return path.string();
}

/** Two-channel shape: xbar -> checkstage -> router -> 2 memctrls. */
const char *twoChannelJson = R"({
  "name": "two-channel",
  "nodes": [
    {"name": "protect", "kind": "protect", "params": {"scheme": "auto"}},
    {"name": "memctrl0", "kind": "memctrl", "params": {}},
    {"name": "memctrl1", "kind": "memctrl", "params": {}},
    {"name": "router", "kind": "router",
     "params": {"channels": 2, "interleaveBytes": 64}},
    {"name": "checkstage", "kind": "checkstage",
     "params": {"checker": "protect"}},
    {"name": "xbar", "kind": "xbar", "params": {}},
    {"name": "accels", "kind": "accel_pool", "params": {"xbar": "xbar"}}
  ],
  "edges": [
    {"from": "xbar.mem_side", "to": "checkstage.cpu_side"},
    {"from": "checkstage.mem_side", "to": "router.cpu_side"},
    {"from": "router.mem_side0", "to": "memctrl0.cpu_side"},
    {"from": "router.mem_side1", "to": "memctrl1.cpu_side"}
  ]
})";

TEST(Topology, BuiltinsCoverTheFiveConfigurations)
{
    ASSERT_EQ(Topology::builtinNames().size(), 5u);
    for (const std::string &name : Topology::builtinNames()) {
        const Topology topo = Topology::builtinByName(name);
        EXPECT_EQ(topo.name, name);
    }
    EXPECT_FALSE(Topology::builtin(SystemMode::cpu).hasPlatform());
    EXPECT_FALSE(Topology::builtin(SystemMode::ccpu).hasPlatform());
    const Topology caccel = Topology::builtin(SystemMode::ccpuCaccel);
    ASSERT_TRUE(caccel.hasPlatform());
    EXPECT_NE(caccel.findNode("xbar"), nullptr);
    EXPECT_NE(caccel.findNode("checkstage"), nullptr);
    EXPECT_EQ(caccel.findNode("nope"), nullptr);
    EXPECT_THROW(Topology::builtinByName("warp-drive"), TopologyError);
}

TEST(Topology, RoundTripsThroughJsonLosslessly)
{
    for (const std::string &name : Topology::builtinNames()) {
        const Topology topo = Topology::builtinByName(name);
        const std::string text = topo.toJsonText();
        const auto doc = json::parseJson(text);
        ASSERT_TRUE(doc.has_value()) << name;
        const Topology reloaded = Topology::fromJson(*doc);
        EXPECT_EQ(reloaded.toJsonText(), text) << name;
    }

    const auto doc = json::parseJson(twoChannelJson);
    ASSERT_TRUE(doc.has_value());
    const Topology topo = Topology::fromJson(*doc);
    const auto doc2 = json::parseJson(topo.toJsonText());
    ASSERT_TRUE(doc2.has_value());
    EXPECT_EQ(Topology::fromJson(*doc2).toJsonText(),
              topo.toJsonText());
}

TEST(Topology, FromJsonValidatesStructure)
{
    const auto parse = [](const char *text) {
        const auto doc = json::parseJson(text);
        EXPECT_TRUE(doc.has_value());
        return Topology::fromJson(*doc);
    };

    // Not an object.
    EXPECT_THROW(parse("[1, 2]"), TopologyError);
    // Unknown node kind.
    EXPECT_THROW(
        parse(R"({"name": "x", "nodes": [
                  {"name": "a", "kind": "flux_capacitor"}]})"),
        TopologyError);
    // Duplicate node name.
    EXPECT_THROW(
        parse(R"({"name": "x", "nodes": [
                  {"name": "a", "kind": "memctrl"},
                  {"name": "a", "kind": "memctrl"}]})"),
        TopologyError);
    // Dots in a node name would break "component.port" addressing.
    EXPECT_THROW(
        parse(R"({"name": "x", "nodes": [
                  {"name": "a.b", "kind": "memctrl"}]})"),
        TopologyError);
    // Edge endpoints must be dotted.
    EXPECT_THROW(
        parse(R"({"name": "x", "nodes": [
                  {"name": "a", "kind": "memctrl"}],
                  "edges": [{"from": "a", "to": "a.cpu_side"}]})"),
        TopologyError);
}

TEST(Topology, LoadFileNamesTheFileInErrors)
{
    try {
        Topology::loadFile("/nonexistent/nowhere.json");
        FAIL() << "expected TopologyError";
    } catch (const TopologyError &e) {
        EXPECT_NE(std::string(e.what()).find("nowhere.json"),
                  std::string::npos);
    }
}

TEST(Elaborator, BuiltinGraphDumpIsTheCanonicalPlatform)
{
    const SocConfig cfg = config(SystemMode::ccpuCaccel);
    EventQueue eq;
    stats::StatGroup root("soc");
    const Platform platform =
        Elaborator(eq, &root, cfg).elaborate(
            Topology::builtin(cfg.mode), 2);

    EXPECT_EQ(platform.graphDump(),
              "topology ccpu+caccel\n"
              "component memctrl\n"
              "  cpu_side [response] -> checkstage.mem_side\n"
              "component checkstage\n"
              "  cpu_side [response] -> xbar.mem_side\n"
              "  mem_side [request] -> memctrl.cpu_side\n"
              "component xbar\n"
              "  mem_side [request] -> checkstage.cpu_side\n"
              "  accel_side0 [response] -> (unbound)\n"
              "  accel_side1 [response] -> (unbound)\n"
              "checker protect: capchecker-fine\n"
              "task 0 -> xbar.accel_side0\n"
              "task 1 -> xbar.accel_side1\n");

    EXPECT_NE(platform.checkerFor(0), nullptr);
    EXPECT_EQ(platform.checkerFor(0), platform.checkerFor(1));
}

TEST(Elaborator, RejectsTopologyWithUnboundPorts)
{
    Topology topo = Topology::builtin(SystemMode::ccpuCaccel);
    topo.edges.pop_back(); // drop checkstage.mem_side -> memctrl
    EventQueue eq;
    stats::StatGroup root("soc");
    const SocConfig cfg = config(SystemMode::ccpuCaccel);
    try {
        Elaborator(eq, &root, cfg).elaborate(topo, 2);
        FAIL() << "expected PortError";
    } catch (const PortError &e) {
        EXPECT_EQ(e.kind(), PortError::Kind::unbound);
        // memctrl registers first, so its dangling cpu_side is the
        // first unbound port the completeness sweep reports.
        EXPECT_NE(std::string(e.what()).find("memctrl.cpu_side"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("ccpu+caccel"),
                  std::string::npos);
    }
}

TEST(Elaborator, RejectsPoolOnMissingXbar)
{
    Topology topo = Topology::builtin(SystemMode::ccpuCaccel);
    for (TopologyNode &node : topo.nodes) {
        if (node.kind == "accel_pool") {
            node.params = json::JsonValue::makeObject(
                {{"xbar", json::JsonValue::makeString("ghost")}});
        }
    }
    EventQueue eq;
    stats::StatGroup root("soc");
    const SocConfig cfg = config(SystemMode::ccpuCaccel);
    EXPECT_THROW(Elaborator(eq, &root, cfg).elaborate(topo, 2),
                 TopologyError);
}

TEST(SocSystemTopology, JsonLoadedBuiltinReproducesByteIdenticalRuns)
{
    // The acceptance property: a run on the canonical builtin and a
    // run on the same shape loaded from JSON are indistinguishable,
    // stats dump included.
    SocConfig builtin_cfg = config(SystemMode::ccpuCaccel);
    const RunResult builtin_run =
        SocSystem(builtin_cfg).runBenchmark("aes");

    const std::string path = writeTempFile(
        "builtin-copy",
        Topology::builtin(SystemMode::ccpuCaccel).toJsonText());
    SocConfig loaded_cfg = builtin_cfg;
    loaded_cfg.topologyFile = path;
    const RunResult loaded_run =
        SocSystem(loaded_cfg).runBenchmark("aes");
    std::remove(path.c_str());

    EXPECT_EQ(builtin_run, loaded_run);
    EXPECT_EQ(builtin_run.statsJson, loaded_run.statsJson);
}

TEST(SocSystemTopology, TwoChannelTopologyRunsMachSuiteUnderFine)
{
    const std::string path =
        writeTempFile("two-channel", twoChannelJson);
    SocConfig cfg = config(SystemMode::ccpuCaccel);
    cfg.provenance = capchecker::Provenance::fine;
    cfg.topologyFile = path;

    SocSystem soc(cfg);
    // The elaborated graph is dumpable and names both channels.
    const std::string dump = soc.dumpTopologyJson();
    EXPECT_NE(dump.find("memctrl0"), std::string::npos);
    EXPECT_NE(dump.find("memctrl1"), std::string::npos);

    const RunResult r = soc.runBenchmark("gemm_ncubed");
    std::remove(path.c_str());
    EXPECT_TRUE(r.functionallyCorrect);
    EXPECT_EQ(r.exceptions, 0u);
    EXPECT_GT(r.dmaBeats, 0u);

    // The interleaved router really used both channels.
    EXPECT_NE(r.statsJson.find("router"), std::string::npos);
}

TEST(SocSystemTopology, BankedCheckerTopologyIsolatesPerTask)
{
    const std::string path = writeTempFile("banked", R"({
      "name": "banked",
      "nodes": [
        {"name": "protect", "kind": "protect",
         "params": {"scheme": "checker_bank"}},
        {"name": "memctrl", "kind": "memctrl", "params": {}},
        {"name": "checkstage", "kind": "checkstage",
         "params": {"checker": "protect"}},
        {"name": "xbar", "kind": "xbar", "params": {}},
        {"name": "accels", "kind": "accel_pool",
         "params": {"xbar": "xbar"}}
      ],
      "edges": [
        {"from": "xbar.mem_side", "to": "checkstage.cpu_side"},
        {"from": "checkstage.mem_side", "to": "memctrl.cpu_side"}
      ]
    })");
    SocConfig cfg = config(SystemMode::ccpuCaccel);
    cfg.topologyFile = path;
    const RunResult r = SocSystem(cfg).runBenchmark("aes");
    std::remove(path.c_str());
    EXPECT_TRUE(r.functionallyCorrect);
    EXPECT_EQ(r.exceptions, 0u);
}

TEST(SocSystemTopology, CheckerlessModeElaboratesProtectAsNone)
{
    // One file serves every mode: scheme "auto" resolves from the
    // config, so the same topology runs unprotected under ccpu+accel.
    const std::string path = writeTempFile(
        "auto-scheme",
        Topology::builtin(SystemMode::ccpuCaccel).toJsonText());
    SocConfig cfg = config(SystemMode::ccpuAccel);
    cfg.topologyFile = path;
    const RunResult r = SocSystem(cfg).runBenchmark("aes");
    std::remove(path.c_str());
    EXPECT_TRUE(r.functionallyCorrect);
    EXPECT_EQ(r.peakTableEntries, 0u);
}

/** Two leaf xbars cascaded into a root xbar, one shared stage. */
const char *cascadeJson = R"({
  "name": "cascade",
  "nodes": [
    {"name": "protect", "kind": "protect", "params": {"scheme": "auto"}},
    {"name": "memctrl", "kind": "memctrl", "params": {}},
    {"name": "checkstage", "kind": "checkstage",
     "params": {"checker": "protect"}},
    {"name": "root", "kind": "xbar", "params": {"masters": 2}},
    {"name": "leaf0", "kind": "xbar", "params": {"masters": 2}},
    {"name": "leaf1", "kind": "xbar", "params": {"masters": 2}},
    {"name": "pool0", "kind": "accel_pool", "params": {"xbar": "leaf0"}},
    {"name": "pool1", "kind": "accel_pool", "params": {"xbar": "leaf1"}}
  ],
  "edges": [
    {"from": "leaf0.mem_side", "to": "root.accel_side0"},
    {"from": "leaf1.mem_side", "to": "root.accel_side1"},
    {"from": "root.mem_side", "to": "checkstage.cpu_side"},
    {"from": "checkstage.mem_side", "to": "memctrl.cpu_side"}
  ]
})";

TEST(Elaborator, CascadedXbarsBindAndAttachTasksToTheLeaves)
{
    const auto doc = json::parseJson(cascadeJson);
    ASSERT_TRUE(doc.has_value());
    const Topology topo = Topology::fromJson(*doc);

    EventQueue eq;
    stats::StatGroup root("soc");
    const SocConfig cfg = config(SystemMode::ccpuCaccel);
    const Platform platform =
        Elaborator(eq, &root, cfg).elaborate(topo, 4);

    const std::string dump = platform.graphDump();
    // The child crossbars' mem_side ports plug into the root's
    // accel_side slots...
    EXPECT_NE(dump.find("mem_side [request] -> root.accel_side0"),
              std::string::npos)
        << dump;
    EXPECT_NE(dump.find("mem_side [request] -> root.accel_side1"),
              std::string::npos)
        << dump;
    // ...and the tasks round-robin across the two pools, never onto
    // the root (its slots are edge-bound).
    EXPECT_NE(dump.find("task 0 -> leaf0.accel_side0"),
              std::string::npos)
        << dump;
    EXPECT_NE(dump.find("task 1 -> leaf1.accel_side0"),
              std::string::npos)
        << dump;
    EXPECT_NE(dump.find("task 2 -> leaf0.accel_side1"),
              std::string::npos)
        << dump;
    EXPECT_NE(dump.find("task 3 -> leaf1.accel_side1"),
              std::string::npos)
        << dump;

    // The checker walk crosses both crossbar levels.
    for (TaskId t = 0; t < 4; ++t)
        EXPECT_NE(platform.protectionFor(t), nullptr) << "task " << t;
    EXPECT_EQ(platform.protectionFor(0), platform.protectionFor(3));
}

TEST(Topology, EdgeToUndeclaredComponentNamesTheNode)
{
    const auto doc = json::parseJson(R"({
      "name": "x",
      "nodes": [{"name": "memctrl", "kind": "memctrl"}],
      "edges": [{"from": "ghost.mem_side", "to": "memctrl.cpu_side"}]
    })");
    ASSERT_TRUE(doc.has_value());
    try {
        Topology::fromJson(*doc);
        FAIL() << "expected TopologyError";
    } catch (const TopologyError &e) {
        EXPECT_EQ(e.node(), "ghost");
        EXPECT_NE(std::string(e.what()).find("ghost.mem_side"),
                  std::string::npos);
    }
}

TEST(Elaborator, EdgeToUnknownPortIsAPortErrorNamingThePort)
{
    Topology topo = Topology::builtin(SystemMode::ccpuCaccel);
    for (TopologyEdge &edge : topo.edges) {
        if (edge.to == "memctrl.cpu_side")
            edge.to = "memctrl.warp_core";
    }
    EventQueue eq;
    stats::StatGroup root("soc");
    const SocConfig cfg = config(SystemMode::ccpuCaccel);
    try {
        Elaborator(eq, &root, cfg).elaborate(topo, 2);
        FAIL() << "expected PortError";
    } catch (const PortError &e) {
        EXPECT_EQ(e.kind(), PortError::Kind::unknownPort);
        EXPECT_NE(std::string(e.what()).find("warp_core"),
                  std::string::npos);
    }
}

TEST(Elaborator, DoubleBoundPortIsAPortError)
{
    Topology topo = Topology::builtin(SystemMode::ccpuCaccel);
    // A second producer into the already-bound memctrl.cpu_side.
    topo.nodes.push_back(TopologyNode{
        "stage2", "checkstage",
        json::JsonValue::makeObject(
            {{"checker", json::JsonValue::makeString("protect")}})});
    topo.edges.push_back(
        TopologyEdge{"stage2.mem_side", "memctrl.cpu_side"});
    EventQueue eq;
    stats::StatGroup root("soc");
    const SocConfig cfg = config(SystemMode::ccpuCaccel);
    try {
        Elaborator(eq, &root, cfg).elaborate(topo, 2);
        FAIL() << "expected PortError";
    } catch (const PortError &e) {
        EXPECT_EQ(e.kind(), PortError::Kind::doubleBind);
        EXPECT_NE(std::string(e.what()).find("memctrl.cpu_side"),
                  std::string::npos);
    }
}

TEST(Elaborator, WiredCycleIsATopologyErrorNamingAComponent)
{
    // Two crossbars feeding each other: a request path that never
    // reaches memory. The checker-resolution walk must diagnose the
    // loop instead of recursing forever.
    const auto doc = json::parseJson(R"({
      "name": "loop",
      "nodes": [
        {"name": "a", "kind": "xbar", "params": {"masters": 2}},
        {"name": "b", "kind": "xbar", "params": {"masters": 1}},
        {"name": "pool", "kind": "accel_pool", "params": {"xbar": "a"}}
      ],
      "edges": [
        {"from": "a.mem_side", "to": "b.accel_side0"},
        {"from": "b.mem_side", "to": "a.accel_side0"}
      ]
    })");
    ASSERT_TRUE(doc.has_value());
    const Topology topo = Topology::fromJson(*doc);
    EventQueue eq;
    stats::StatGroup root("soc");
    const SocConfig cfg = config(SystemMode::ccpuCaccel);
    try {
        Elaborator(eq, &root, cfg).elaborate(topo, 1);
        FAIL() << "expected TopologyError";
    } catch (const TopologyError &e) {
        EXPECT_NE(std::string(e.what()).find("cycle"),
                  std::string::npos);
        EXPECT_FALSE(e.node().empty());
    }
}

TEST(Elaborator, CheckstageBankOutOfRangeNamesTheStage)
{
    const auto doc = json::parseJson(R"({
      "name": "bad-bank",
      "nodes": [
        {"name": "protect", "kind": "protect",
         "params": {"scheme": "checker_bank", "banks": 2}},
        {"name": "memctrl", "kind": "memctrl", "params": {}},
        {"name": "checkstage", "kind": "checkstage",
         "params": {"checker": "protect", "bank": 7}},
        {"name": "xbar", "kind": "xbar", "params": {}},
        {"name": "accels", "kind": "accel_pool",
         "params": {"xbar": "xbar"}}
      ],
      "edges": [
        {"from": "xbar.mem_side", "to": "checkstage.cpu_side"},
        {"from": "checkstage.mem_side", "to": "memctrl.cpu_side"}
      ]
    })");
    ASSERT_TRUE(doc.has_value());
    const Topology topo = Topology::fromJson(*doc);
    EventQueue eq;
    stats::StatGroup root("soc");
    const SocConfig cfg = config(SystemMode::ccpuCaccel);
    try {
        Elaborator(eq, &root, cfg).elaborate(topo, 2);
        FAIL() << "expected TopologyError";
    } catch (const TopologyError &e) {
        EXPECT_EQ(e.node(), "checkstage");
        EXPECT_NE(std::string(e.what()).find("bank 7"),
                  std::string::npos);
    }
}

TEST(SocSystemTopology, MegaTopologyRunsByteIdenticalUnderRefAndFast)
{
    // The ISSUE's acceptance shape: 128 accelerators on a two-level
    // crossbar tree over four interleaved channels. The run must work
    // under both simulation kernels with byte-identical flight and
    // latency artefacts (every flight INVARIANT-checked to attribute
    // each cycle to exactly one hop).
    TopoGenParams params;
    params.accels = 128;
    params.levels = 2;
    params.fanout = 4;
    params.channels = 4;
    params.seed = 7;
    const std::string path = writeTempFile(
        "mega", generateTopology(params).toJsonText());

    const fs::path dir = fs::temp_directory_path() / "capcheck_mega";
    fs::create_directories(dir);

    std::string artefacts[2];
    for (const sim::SimKernel kernel :
         {sim::SimKernel::ref, sim::SimKernel::fast}) {
        const std::string kname = sim::simKernelName(kernel);
        const SocConfig cfg = SocConfigBuilder()
                                  .mode(SystemMode::ccpuCaccel)
                                  .seed(1)
                                  .numInstances(128)
                                  .simKernel(kernel)
                                  .topologyFile(path)
                                  .build();
        const auto req =
            harness::RunRequest::single("aes", cfg, 128);
        const fs::path flights = dir / (kname + ".flights.json");
        const fs::path latency = dir / (kname + ".latency.json");
        obs::ObsOptions obs;
        obs.flightFile = flights.string();
        obs.latencyFile = latency.string();
        obs.topN = 16;
        obs.runLabel = "mega"; // same label: artefacts must be equal
        const RunResult r = req.execute(obs);
        EXPECT_TRUE(r.functionallyCorrect) << kname;
        EXPECT_EQ(r.exceptions, 0u) << kname;

        std::ifstream fin(flights), lin(latency);
        std::stringstream body;
        body << fin.rdbuf() << lin.rdbuf();
        artefacts[kernel == sim::SimKernel::fast] = body.str();
    }
    fs::remove_all(dir);
    std::remove(path.c_str());

    EXPECT_FALSE(artefacts[0].empty());
    EXPECT_EQ(artefacts[0], artefacts[1])
        << "fast kernel diverged from ref on the mega topology";
}

TEST(SocSystemTopology, BadTopologyFileIsATopologyError)
{
    SocConfig cfg = config(SystemMode::ccpuCaccel);
    cfg.topologyFile = "/nonexistent/nowhere.json";
    SocSystem soc(cfg);
    EXPECT_THROW(soc.topology(), TopologyError);
}

} // namespace
} // namespace capcheck::system
