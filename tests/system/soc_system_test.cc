#include <gtest/gtest.h>

#include "base/logging.hh"
#include "system/soc_system.hh"
#include "workloads/kernel.hh"

namespace capcheck::system
{
namespace
{

SocConfig
config(SystemMode mode)
{
    SocConfig cfg;
    cfg.mode = mode;
    cfg.seed = 3;
    return cfg;
}

/** Integration: every benchmark runs correctly on the full protected
 *  system — the paper's "no correct access is ever blocked" property. */
class ProtectedSystem : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ProtectedSystem, RunsCorrectlyWithNoExceptions)
{
    SocSystem soc(config(SystemMode::ccpuCaccel));
    const RunResult r = soc.runBenchmark(GetParam());
    EXPECT_TRUE(r.functionallyCorrect);
    EXPECT_EQ(r.exceptions, 0u);
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_GT(r.dmaBeats, 0u);
    EXPECT_LE(r.peakTableEntries, 256u);
    EXPECT_EQ(r.numTasks, 8u);
}

TEST_P(ProtectedSystem, CoarseModeAlsoCorrect)
{
    SocConfig cfg = config(SystemMode::ccpuCaccel);
    cfg.provenance = capchecker::Provenance::coarse;
    const RunResult r = SocSystem(cfg).runBenchmark(GetParam());
    EXPECT_TRUE(r.functionallyCorrect);
    EXPECT_EQ(r.exceptions, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ProtectedSystem,
                         ::testing::ValuesIn(
                             workloads::allKernelNames()),
                         [](const auto &info) { return info.param; });

TEST(SocSystem, CpuOnlyModesMatchFunctionally)
{
    for (const SystemMode mode : {SystemMode::cpu, SystemMode::ccpu}) {
        const RunResult r =
            SocSystem(config(mode)).runBenchmark("sort_radix", 2);
        EXPECT_TRUE(r.functionallyCorrect);
        EXPECT_EQ(r.driverAllocCycles, 0u);
        EXPECT_GT(r.totalCycles, 0u);
    }
}

TEST(SocSystem, CheckerCostsMoreThanUnprotected)
{
    const RunResult base = SocSystem(config(SystemMode::ccpuAccel))
                               .runBenchmark("spmv_crs");
    const RunResult with = SocSystem(config(SystemMode::ccpuCaccel))
                               .runBenchmark("spmv_crs");
    EXPECT_GT(with.totalCycles, base.totalCycles);
    // But the overhead is small (paper: within a few percent).
    EXPECT_LT(with.overheadVs(base), 0.10);
}

TEST(SocSystem, CheriCpuCostsMoreThanPlainCpu)
{
    const RunResult cpu =
        SocSystem(config(SystemMode::cpu)).runBenchmark("kmp", 2);
    const RunResult ccpu =
        SocSystem(config(SystemMode::ccpu)).runBenchmark("kmp", 2);
    EXPECT_GE(ccpu.totalCycles, cpu.totalCycles);
}

TEST(SocSystem, GemmBlockedFasterOnCheriCpu)
{
    // The Fig. 10(g) effect: 128-bit capability copies beat 64-bit
    // copies on the copy-heavy blocked GEMM.
    const RunResult cpu = SocSystem(config(SystemMode::cpu))
                              .runBenchmark("gemm_blocked", 2);
    const RunResult ccpu = SocSystem(config(SystemMode::ccpu))
                               .runBenchmark("gemm_blocked", 2);
    EXPECT_LT(ccpu.totalCycles, cpu.totalCycles);
}

TEST(SocSystem, MemoryBoundBenchmarksSlowerOnAccelerator)
{
    // Section 6.1: bfs/stencil are memory-bound and lose to the CPU.
    for (const char *name : {"bfs_bulk", "stencil2d", "stencil3d"}) {
        const RunResult cpu =
            SocSystem(config(SystemMode::cpu)).runBenchmark(name);
        const RunResult accel = SocSystem(config(SystemMode::ccpuCaccel))
                                    .runBenchmark(name);
        EXPECT_LT(accel.speedupVs(cpu), 1.0) << name;
    }
}

TEST(SocSystem, ComputeBoundBenchmarksMuchFasterOnAccelerator)
{
    for (const char *name : {"backprop", "viterbi", "gemm_ncubed"}) {
        const RunResult cpu =
            SocSystem(config(SystemMode::cpu)).runBenchmark(name);
        const RunResult accel = SocSystem(config(SystemMode::ccpuCaccel))
                                    .runBenchmark(name);
        EXPECT_GT(accel.speedupVs(cpu), 100.0) << name;
    }
}

TEST(SocSystem, ParallelismScalesThroughput)
{
    Cycles prev_per_task = ~Cycles{0};
    for (unsigned tasks : {1u, 2u, 4u, 8u}) {
        const RunResult r = SocSystem(config(SystemMode::ccpuCaccel))
                                .runBenchmark("gemm_ncubed", tasks);
        EXPECT_TRUE(r.functionallyCorrect);
        const Cycles per_task = r.totalCycles / tasks;
        EXPECT_LE(per_task, prev_per_task);
        prev_per_task = per_task;
    }
}

TEST(SocSystem, MixedSystemRunsAllKernelsCorrectly)
{
    const std::vector<std::string> mix = {"aes", "viterbi", "spmv_crs",
                                          "sort_merge"};
    const RunResult base =
        SocSystem(config(SystemMode::ccpuAccel)).runMixed(mix);
    const RunResult with =
        SocSystem(config(SystemMode::ccpuCaccel)).runMixed(mix);
    EXPECT_TRUE(base.functionallyCorrect);
    EXPECT_TRUE(with.functionallyCorrect);
    EXPECT_EQ(with.exceptions, 0u);
    EXPECT_EQ(with.numTasks, 4u);
    EXPECT_GT(with.totalCycles, base.totalCycles);
}

TEST(SocSystem, DeterministicAcrossRuns)
{
    const RunResult a = SocSystem(config(SystemMode::ccpuCaccel))
                            .runBenchmark("fft_strided");
    const RunResult b = SocSystem(config(SystemMode::ccpuCaccel))
                            .runBenchmark("fft_strided");
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.dmaBeats, b.dmaBeats);
}

TEST(SocSystem, SeedChangesWorkloadNotCorrectness)
{
    SocConfig cfg = config(SystemMode::ccpuCaccel);
    cfg.seed = 99;
    const RunResult r = SocSystem(cfg).runBenchmark("kmp");
    EXPECT_TRUE(r.functionallyCorrect);
}

TEST(SocSystem, CheckLatencyAblationHurtsLatencyBoundKernels)
{
    SocConfig cfg = config(SystemMode::ccpuCaccel);
    cfg.checkCycles = 1;
    const RunResult fast = SocSystem(cfg).runBenchmark("md_knn");
    cfg.checkCycles = 8;
    const RunResult slow = SocSystem(cfg).runBenchmark("md_knn");
    EXPECT_GT(slow.totalCycles, fast.totalCycles);
}

TEST(SocSystem, PerAccelCheckersMatchSharedCheckerTiming)
{
    // Section 5.2.1: distributing CapCheckers buys nothing on a
    // single-beat interconnect.
    SocConfig cfg = config(SystemMode::ccpuCaccel);
    const RunResult shared = SocSystem(cfg).runBenchmark("sort_radix");
    cfg.perAccelCheckers = true;
    cfg.capTableEntries = 32;
    const RunResult split = SocSystem(cfg).runBenchmark("sort_radix");
    EXPECT_TRUE(split.functionallyCorrect);
    EXPECT_EQ(split.totalCycles, shared.totalCycles);
    EXPECT_EQ(split.peakTableEntries, shared.peakTableEntries);
}

TEST(SocSystem, CapCacheCostsCyclesWhenUndersized)
{
    SocConfig cfg = config(SystemMode::ccpuCaccel);
    const RunResult sram = SocSystem(cfg).runBenchmark("aes");

    cfg.capCacheEntries = 2; // below the 8-task working set
    const RunResult tiny = SocSystem(cfg).runBenchmark("aes");
    EXPECT_TRUE(tiny.functionallyCorrect);
    EXPECT_GT(tiny.totalCycles, sram.totalCycles);

    cfg.capCacheEntries = 64; // covers the working set
    const RunResult big = SocSystem(cfg).runBenchmark("aes");
    EXPECT_LT(big.totalCycles, tiny.totalCycles);
}

TEST(SocSystem, SmallCapTableSerializesTasksIntoWaves)
{
    // Fig. 6: the driver stalls when the capability table is full,
    // resuming when an eviction frees entries. gemm needs 3 entries
    // per task, so a 6-entry table runs 8 tasks in 4 waves of 2.
    SocConfig cfg = config(SystemMode::ccpuCaccel);
    const RunResult full = SocSystem(cfg).runBenchmark("gemm_ncubed");

    cfg.capTableEntries = 6;
    const RunResult waves = SocSystem(cfg).runBenchmark("gemm_ncubed");

    EXPECT_TRUE(waves.functionallyCorrect);
    EXPECT_EQ(waves.exceptions, 0u);
    EXPECT_EQ(waves.numTasks, 8u);
    EXPECT_LE(waves.peakTableEntries, 6u);
    // Serialization costs real time (four 2-task waves lose the
    // bus-level overlap an 8-task wave enjoys).
    EXPECT_GT(waves.totalCycles, full.totalCycles * 5 / 4);
}

TEST(SocSystem, TableTooSmallForOneTaskIsFatal)
{
    SocConfig cfg = config(SystemMode::ccpuCaccel);
    cfg.capTableEntries = 2; // gemm needs 3 capabilities
    EXPECT_THROW(SocSystem(cfg).runBenchmark("gemm_ncubed"), SimError);
}

TEST(SocSystem, Fig8HeadlineOverheadBounds)
{
    // Pin the paper's headline: protection overhead within 5% for most
    // benchmarks, small geometric mean, md_knn the outlier.
    std::vector<double> ratios;
    unsigned within_5pct = 0;
    double md_knn_overhead = 0;
    double worst_other = 0;
    for (const std::string &name : workloads::allKernelNames()) {
        const RunResult base = SocSystem(config(SystemMode::ccpuAccel))
                                   .runBenchmark(name);
        const RunResult with =
            SocSystem(config(SystemMode::ccpuCaccel)).runBenchmark(name);
        const double overhead = with.overheadVs(base);
        ratios.push_back(1.0 + overhead);
        within_5pct += overhead <= 0.05;
        if (name == "md_knn")
            md_knn_overhead = overhead;
        else
            worst_other = std::max(worst_other, overhead);
    }
    EXPECT_GE(within_5pct, 16u);
    EXPECT_LT(geometricMean(ratios) - 1.0, 0.04);
    // md_knn is the outlier, clearly above everything else.
    EXPECT_GT(md_knn_overhead, worst_other);
}

TEST(SocSystem, StatsDumpOnRequest)
{
    SocConfig cfg = config(SystemMode::ccpuCaccel);
    const RunResult quiet = SocSystem(cfg).runBenchmark("aes");
    EXPECT_TRUE(quiet.statsText.empty());

    cfg.collectStats = true;
    const RunResult verbose = SocSystem(cfg).runBenchmark("aes");
    EXPECT_NE(verbose.statsText.find("soc.xbar.grants"),
              std::string::npos);
    EXPECT_NE(verbose.statsText.find("soc.memctrl.served"),
              std::string::npos);
    EXPECT_NE(verbose.statsText.find("soc.checkstage.checked"),
              std::string::npos);
}

TEST(SocSystem, BurstArbitrationStaysCorrect)
{
    SocConfig cfg = config(SystemMode::ccpuCaccel);
    cfg.xbarMaxBurst = 16;
    const RunResult r = SocSystem(cfg).runBenchmark("fft_strided");
    EXPECT_TRUE(r.functionallyCorrect);
    EXPECT_EQ(r.exceptions, 0u);
}

TEST(SocSystem, GuardBytesPreserveCorrectness)
{
    SocConfig cfg = config(SystemMode::ccpuCaccel);
    cfg.guardBytes = 64;
    const RunResult r = SocSystem(cfg).runBenchmark("sort_radix");
    EXPECT_TRUE(r.functionallyCorrect);
}

TEST(SocSystem, RunResultHelpers)
{
    RunResult a;
    a.totalCycles = 200;
    RunResult b;
    b.totalCycles = 100;
    EXPECT_DOUBLE_EQ(b.speedupVs(a), 2.0);
    EXPECT_DOUBLE_EQ(a.overheadVs(b), 1.0);
    EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
}

TEST(SocSystem, ModeHelpers)
{
    EXPECT_FALSE(modeUsesAccel(SystemMode::cpu));
    EXPECT_TRUE(modeUsesAccel(SystemMode::ccpuCaccel));
    EXPECT_TRUE(modeUsesCheriCpu(SystemMode::ccpu));
    EXPECT_FALSE(modeUsesCheriCpu(SystemMode::cpuAccel));
    EXPECT_TRUE(modeUsesCapChecker(SystemMode::ccpuCaccel));
    EXPECT_FALSE(modeUsesCapChecker(SystemMode::ccpuAccel));
    EXPECT_STREQ(systemModeName(SystemMode::ccpuCaccel), "ccpu+caccel");
}

} // namespace
} // namespace capcheck::system
