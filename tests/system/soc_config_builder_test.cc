/** @file Tests for SocConfigBuilder and SocConfig validation. */

#include <stdexcept>
#include <type_traits>

#include <gtest/gtest.h>

#include "system/soc_config_builder.hh"

using namespace capcheck;
using namespace capcheck::system;

TEST(SocConfigValidate, DefaultConfigIsValid)
{
    EXPECT_TRUE(validateSocConfig(SocConfig{}).empty());
    EXPECT_TRUE(validationErrors(SocConfig{}).empty());
}

TEST(SocConfigValidate, AggregateInitializationStillWorks)
{
    // SocConfig must stay an aggregate: existing call sites initialize
    // it with plain braces and direct member assignment.
    static_assert(std::is_aggregate_v<SocConfig>,
                  "SocConfig must remain an aggregate");
    SocConfig cfg{};
    cfg.mode = SystemMode::ccpuCaccel;
    cfg.numInstances = 4;
    cfg.seed = 7;
    EXPECT_TRUE(validateSocConfig(cfg).empty());
    EXPECT_EQ(cfg.numInstances, 4u);
    EXPECT_EQ(cfg.seed, 7u);
}

TEST(SocConfigValidate, RejectsZeroInstances)
{
    SocConfig cfg;
    cfg.numInstances = 0;
    const auto errors = validateSocConfig(cfg);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors.front().find("numInstances"), std::string::npos);
}

TEST(SocConfigValidate, RejectsCheckerModeWithoutTable)
{
    SocConfig cfg;
    cfg.mode = SystemMode::ccpuCaccel;
    cfg.capTableEntries = 0;
    EXPECT_FALSE(validateSocConfig(cfg).empty());
}

TEST(SocConfigValidate, RejectsCacheLargerThanTable)
{
    SocConfig cfg;
    cfg.mode = SystemMode::ccpuCaccel;
    cfg.capTableEntries = 16;
    cfg.capCacheEntries = 32;
    EXPECT_FALSE(validateSocConfig(cfg).empty());
}

TEST(SocConfigValidate, RejectsCheckerKnobsWithoutChecker)
{
    SocConfig cfg;
    cfg.mode = SystemMode::ccpuAccel; // no CapChecker in this mode
    cfg.perAccelCheckers = true;
    EXPECT_FALSE(validateSocConfig(cfg).empty());

    SocConfig cache_cfg;
    cache_cfg.mode = SystemMode::cpu;
    cache_cfg.capCacheEntries = 8;
    EXPECT_FALSE(validateSocConfig(cache_cfg).empty());
}

TEST(SocConfigValidate, ReportsEveryProblemAtOnce)
{
    SocConfig cfg;
    cfg.numInstances = 0;
    cfg.memLatency = 0;
    cfg.xbarMaxBurst = 0;
    EXPECT_GE(validateSocConfig(cfg).size(), 3u);
}

TEST(SocConfigBuilder, FluentChainProducesExpectedConfig)
{
    const SocConfig cfg = SocConfigBuilder()
                              .mode(SystemMode::ccpuCaccel)
                              .numInstances(4)
                              .capTableEntries(64)
                              .checkCycles(2)
                              .seed(99)
                              .build();
    EXPECT_EQ(cfg.mode, SystemMode::ccpuCaccel);
    EXPECT_EQ(cfg.numInstances, 4u);
    EXPECT_EQ(cfg.capTableEntries, 64u);
    EXPECT_EQ(cfg.checkCycles, 2u);
    EXPECT_EQ(cfg.seed, 99u);
}

TEST(SocConfigBuilder, BuildThrowsWithActionableMessage)
{
    try {
        SocConfigBuilder().numInstances(0).build();
        FAIL() << "build() accepted an invalid config";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("numInstances"),
                  std::string::npos);
    }
}

TEST(SocConfigBuilder, StartsFromExistingConfig)
{
    SocConfig base;
    base.mode = SystemMode::ccpuCaccel;
    base.seed = 5;
    const SocConfig derived =
        SocConfigBuilder(base).capTableEntries(32).build();
    EXPECT_EQ(derived.mode, SystemMode::ccpuCaccel);
    EXPECT_EQ(derived.seed, 5u);
    EXPECT_EQ(derived.capTableEntries, 32u);
}

TEST(SocConfigBuilder, PeekReturnsUnvalidatedState)
{
    SocConfigBuilder b;
    b.numInstances(0);
    EXPECT_EQ(b.peek().numInstances, 0u); // no throw until build()
}

TEST(SocConfigValidate, RejectsCheckCyclesWithoutChecker)
{
    SocConfig cfg;
    cfg.mode = SystemMode::cpuAccel;
    cfg.checkCycles = 3;
    const auto errors = validateSocConfig(cfg);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors.front().find("checkCycles"), std::string::npos);
    EXPECT_NE(errors.front().find("cpu+accel"), std::string::npos);
}

TEST(SocConfigValidate, RejectsNonDefaultProvenanceWithoutChecker)
{
    // Each mode/provenance corner: fine (the default) passes
    // everywhere; coarse passes exactly on the CapChecker mode.
    for (const SystemMode mode :
         {SystemMode::cpu, SystemMode::ccpu, SystemMode::cpuAccel,
          SystemMode::ccpuAccel, SystemMode::ccpuCaccel}) {
        SocConfig fine;
        fine.mode = mode;
        EXPECT_TRUE(validateSocConfig(fine).empty())
            << systemModeName(mode);

        SocConfig coarse;
        coarse.mode = mode;
        coarse.provenance = capchecker::Provenance::coarse;
        EXPECT_EQ(validateSocConfig(coarse).empty(),
                  modeUsesCapChecker(mode))
            << systemModeName(mode);
    }
}

TEST(SocConfigValidate, RejectsWalkCyclesWithoutCache)
{
    SocConfig cfg;
    cfg.mode = SystemMode::ccpuCaccel;
    cfg.capCacheEntries = 0;
    cfg.capCacheWalkCycles = 100;
    const auto errors = validateSocConfig(cfg);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors.front().find("capCacheWalkCycles"),
              std::string::npos);
}

TEST(SocConfigValidate, RejectsTopologyFileOnCpuOnlyModes)
{
    for (const SystemMode mode : {SystemMode::cpu, SystemMode::ccpu}) {
        SocConfig cfg;
        cfg.mode = mode;
        cfg.topologyFile = "examples/topologies/two-channel.json";
        const auto errors = validateSocConfig(cfg);
        ASSERT_FALSE(errors.empty()) << systemModeName(mode);
        EXPECT_NE(errors.front().find("topologyFile"),
                  std::string::npos);
    }
    for (const SystemMode mode :
         {SystemMode::cpuAccel, SystemMode::ccpuAccel,
          SystemMode::ccpuCaccel}) {
        SocConfig cfg;
        cfg.mode = mode;
        cfg.topologyFile = "examples/topologies/two-channel.json";
        EXPECT_TRUE(validateSocConfig(cfg).empty())
            << systemModeName(mode);
    }
}

TEST(SocConfigBuilder, TopologyFileSetterRoundTrips)
{
    const SocConfig cfg = SocConfigBuilder()
                              .mode(SystemMode::ccpuCaccel)
                              .topologyFile("shapes/mesh.json")
                              .build();
    EXPECT_EQ(cfg.topologyFile, "shapes/mesh.json");

    // "" restores the builtin-for-mode behaviour.
    const SocConfig cleared =
        SocConfigBuilder(cfg).topologyFile("").build();
    EXPECT_TRUE(cleared.topologyFile.empty());
}
