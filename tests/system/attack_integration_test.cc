#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "accel/trace_accessor.hh"
#include "accel/trace_player.hh"
#include "driver/driver.hh"
#include "mem/interconnect.hh"
#include "mem/mem_ctrl.hh"
#include "protect/check_stage.hh"
#include "workloads/kernel.hh"

namespace capcheck
{
namespace
{

/**
 * End-to-end Fig. 2 scenario on the full timing platform: a benign
 * task and a malicious task run concurrently behind one shared
 * CapChecker. The malicious task's datapath issues out-of-bounds DMA
 * (as a compromised accelerator program would); the benign task must
 * complete untouched while the attacker is aborted, traced, and its
 * buffers scrubbed on deallocation.
 */
class AttackIntegration : public ::testing::Test
{
  protected:
    AttackIntegration()
        : mem(64ull << 20), heap(1 << 20, (64ull << 20) - (1 << 20)),
          stat_root("soc"), memctrl(eq, &stat_root, 30),
          check_stage(eq, &stat_root, checker),
          xbar(eq, &stat_root, 2),
          benign_accel("aes", workloads::kernelSpec("aes"), 1),
          attacker_accel("stencil2d", workloads::kernelSpec("stencil2d"),
                         1),
          driver(mem, heap, tree, true, &checker)
    {
        xbar.memSide().bind(check_stage.cpuSide());
        check_stage.memSide().bind(memctrl.cpuSide());
        app = tree.derive(
            tree.rootNode(), cheri::CapNodeKind::cpuTask,
            tree.capOf(tree.rootNode()).setBounds(1 << 20, 60ull << 20),
            "app");
    }

    TaggedMemory mem;
    RegionAllocator heap;
    cheri::CapTree tree;
    cheri::CapNodeId app = cheri::invalidCapNode;
    capchecker::CapChecker checker;

    EventQueue eq;
    stats::StatGroup stat_root;
    MemoryController memctrl;
    protect::CheckStage check_stage;
    AxiInterconnect xbar;

    accel::Accelerator benign_accel;
    accel::Accelerator attacker_accel;
    driver::Driver driver;
};

TEST_F(AttackIntegration, MaliciousDmaIsBlockedBenignTaskUnaffected)
{
    // --- Benign task: real aes workload, task 0, port 0. ---
    auto benign_handle = driver.allocateTask(benign_accel, 0, app);
    ASSERT_TRUE(benign_handle);
    const auto benign_kernel = workloads::createKernel("aes");
    Rng rng(5);
    CpuAccessor init_acc(mem, benign_handle->buffers, false);
    benign_kernel->init(init_acc, rng);
    accel::TraceAccessor tracer(mem, benign_accel.spec(),
                                benign_handle->buffers);
    benign_kernel->run(tracer);
    accel::TracePlayer benign_player(
        eq, &stat_root, "benign", benign_accel.spec(), tracer.take(),
        benign_handle->buffers, 0, 0, accel::AddressingMode{});
    benign_player.memSide().bind(xbar.accelSide(0));

    // --- Attacker task: hand-crafted malicious DMA, task 1, port 1.
    // Its datapath walks right past the end of its own buffer toward
    // the benign task's memory (a "user-defined loop bound larger than
    // the array", Section 6.2). ---
    auto attacker_handle = driver.allocateTask(attacker_accel, 1, app);
    ASSERT_TRUE(attacker_handle);
    accel::InstanceTrace evil;
    for (unsigned i = 0; i < 64; ++i) {
        evil.ops.push_back(accel::TraceOp::access(
            MemCmd::read, 0,
            attacker_handle->buffers[0].size + i * 8, 8));
    }
    accel::TracePlayer attacker_player(
        eq, &stat_root, "attacker", attacker_accel.spec(), evil,
        attacker_handle->buffers, 1, 1, accel::AddressingMode{});
    attacker_player.memSide().bind(xbar.accelSide(1));

    // Poison the attacker's buffer so we can observe the scrub.
    mem.writeValue<std::uint64_t>(attacker_handle->buffers[0].base,
                                  0x5ec2e7ull);

    benign_player.start(0);
    attacker_player.start(0);
    eq.run();

    // The attacker was stopped at its first out-of-bounds beat.
    EXPECT_TRUE(attacker_player.done());
    EXPECT_TRUE(attacker_player.failed());
    EXPECT_TRUE(checker.exceptionFlagSet());

    // The violation is traceable to (task 1, object 0).
    ASSERT_FALSE(checker.exceptionLog().empty());
    EXPECT_EQ(checker.exceptionLog()[0].task, 1u);
    EXPECT_EQ(checker.exceptionLog()[0].object, 0u);
    EXPECT_FALSE(checker.capTable().exceptionEntries().empty());

    // The benign task finished and its results are correct.
    EXPECT_TRUE(benign_player.done());
    EXPECT_FALSE(benign_player.failed());
    CpuAccessor check_acc(mem, benign_handle->buffers, false);
    EXPECT_TRUE(benign_kernel->check(check_acc));

    // Deallocation scrubs the attacker's buffers (Fig. 6 (2)).
    const Addr attacker_base = attacker_handle->buffers[0].base;
    driver.deallocateTask(*attacker_handle, true);
    EXPECT_EQ(mem.readValue<std::uint64_t>(attacker_base), 0u);
    driver.deallocateTask(*benign_handle, false);
    EXPECT_EQ(checker.capTable().used(), 0u);
}

TEST_F(AttackIntegration, ForgedObjectMetadataCannotCrossTasks)
{
    // Even if the attacker controlled its trace entirely, Fine-mode
    // object ids come from the hardware port: probing every object id
    // never reaches another task's buffers.
    auto victim_handle = driver.allocateTask(benign_accel, 0, app);
    auto attacker_handle = driver.allocateTask(attacker_accel, 1, app);
    ASSERT_TRUE(victim_handle && attacker_handle);

    const Addr victim_base = victim_handle->buffers[0].base;

    accel::InstanceTrace evil;
    for (ObjectId obj = 0; obj < 3; ++obj) {
        // Offset chosen so base + off == victim's buffer (the address
        // adder wraps, so any target is expressible).
        const Addr base = attacker_handle->buffers[obj].base;
        evil.ops.push_back(accel::TraceOp::access(
            MemCmd::read, obj, victim_base - base, 8));
    }
    ASSERT_FALSE(evil.ops.empty());

    accel::TracePlayer attacker_player(
        eq, &stat_root, "attacker", attacker_accel.spec(), evil,
        attacker_handle->buffers, 1, 1, accel::AddressingMode{});
    attacker_player.memSide().bind(xbar.accelSide(1));
    attacker_player.start(0);
    eq.run();

    EXPECT_TRUE(attacker_player.failed());
    EXPECT_EQ(checker.checksDenied(), 1u); // aborted on first beat

    driver.deallocateTask(*attacker_handle, true);
    driver.deallocateTask(*victim_handle, false);
}

} // namespace
} // namespace capcheck
