#include <gtest/gtest.h>

#include "base/logging.hh"
#include "cpu/cache_model.hh"

namespace capcheck
{
namespace
{

TEST(CacheModel, ColdMissThenHit)
{
    CacheModel cache(1024, 64, 2);
    EXPECT_FALSE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x13f)); // same line
    EXPECT_FALSE(cache.access(0x140)); // next line
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(CacheModel, SpatialLocalityWithinLine)
{
    CacheModel cache(16 * 1024, 64, 2);
    int misses = 0;
    for (Addr a = 0; a < 4096; a += 4)
        misses += !cache.access(a);
    EXPECT_EQ(misses, 4096 / 64);
}

TEST(CacheModel, TwoWayAvoidsSimpleConflicts)
{
    // Two addresses that map to the same set coexist in a 2-way cache.
    CacheModel cache(1024, 64, 2);
    const Addr a = 0x0;
    const Addr b = 0x0 + 512; // same set (8 sets x 64B)
    cache.access(a);
    cache.access(b);
    EXPECT_TRUE(cache.access(a));
    EXPECT_TRUE(cache.access(b));

    // A direct-mapped cache thrashes on the same pattern.
    CacheModel dm(1024, 64, 1);
    dm.access(a);
    dm.access(a + 1024);
    EXPECT_FALSE(dm.access(a));
}

TEST(CacheModel, LruEvictsLeastRecentlyUsed)
{
    CacheModel cache(128, 64, 2); // one set, two ways
    cache.access(0);     // miss: {0}
    cache.access(64);    // miss: {0, 64}
    cache.access(0);     // hit, 0 is MRU
    cache.access(128);   // miss: evicts 64
    EXPECT_TRUE(cache.access(0));
    EXPECT_FALSE(cache.access(64));
}

TEST(CacheModel, FlushInvalidatesEverything)
{
    CacheModel cache(1024, 64, 2);
    cache.access(0x100);
    cache.flush();
    EXPECT_FALSE(cache.access(0x100));
}

TEST(CacheModel, WorkingSetLargerThanCacheThrashes)
{
    CacheModel cache(1024, 64, 2);
    // Two passes over a 4 KiB working set: second pass still misses.
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr a = 0; a < 4096; a += 64)
            cache.access(a);
    }
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(CacheModel, WorkingSetSmallerThanCacheHits)
{
    CacheModel cache(16 * 1024, 64, 2);
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr a = 0; a < 8192; a += 64)
            cache.access(a);
    }
    EXPECT_EQ(cache.hits(), 8192u / 64);
}

TEST(CacheModel, BadGeometryRejected)
{
    EXPECT_THROW(CacheModel(1000, 64, 2), SimError);
    EXPECT_THROW(CacheModel(1024, 60, 2), SimError);
    EXPECT_THROW(CacheModel(1024, 64, 0), SimError);
}

} // namespace
} // namespace capcheck
