#include <gtest/gtest.h>

#include "base/logging.hh"
#include "cpu/cpu_model.hh"

namespace capcheck
{
namespace
{

class CpuModelTest : public ::testing::Test
{
  protected:
    CpuModelTest() : mem(1 << 16)
    {
        const cheri::Capability root = cheri::Capability::root();
        buffers.push_back(
            {0x1000, 256,
             root.setBounds(0x1000, 256).andPerms(cheri::permDataRW)});
        buffers.push_back(
            {0x2000, 256,
             root.setBounds(0x2000, 256).andPerms(cheri::permDataRW)});
    }

    TaggedMemory mem;
    std::vector<BufferMapping> buffers;
};

TEST_F(CpuModelTest, FunctionalLoadStore)
{
    CpuAccessor cpu(mem, buffers, false);
    cpu.st<std::uint32_t>(0, 4, 0xcafe);
    EXPECT_EQ(cpu.ld<std::uint32_t>(0, 4), 0xcafeu);
    // Data really lands in shared memory at the mapped address.
    EXPECT_EQ(mem.readValue<std::uint32_t>(0x1010), 0xcafeu);
}

TEST_F(CpuModelTest, CyclesAccumulateByOpClass)
{
    CpuCostParams costs;
    CpuAccessor cpu(mem, buffers, false, costs);
    const Cycles c0 = cpu.cycles();
    cpu.computeInt(10);
    EXPECT_EQ(cpu.cycles() - c0, 10 * costs.intOp);
    cpu.computeFp(4);
    EXPECT_EQ(cpu.cycles() - c0, 10 * costs.intOp + 4 * costs.fpOp);
}

TEST_F(CpuModelTest, MissThenHitCosts)
{
    CpuCostParams costs;
    CpuAccessor cpu(mem, buffers, false, costs);
    cpu.ld<std::uint64_t>(0, 0); // cold miss
    const Cycles after_miss = cpu.cycles();
    EXPECT_EQ(after_miss, costs.missPenalty);
    cpu.ld<std::uint64_t>(0, 1); // same line: hit
    EXPECT_EQ(cpu.cycles() - after_miss, costs.loadHit);
}

TEST_F(CpuModelTest, CheriCheckAllowsBenignAccess)
{
    CpuAccessor cpu(mem, buffers, true);
    cpu.st<std::uint8_t>(0, 0, 1);
    cpu.st<std::uint8_t>(0, 255, 1);
    EXPECT_EQ(cpu.stores(), 2u);
}

TEST_F(CpuModelTest, OutOfBufferAccessPanics)
{
    CpuAccessor cpu(mem, buffers, false);
    EXPECT_THROW(cpu.ld<std::uint32_t>(0, 64), SimError); // 256..259
    EXPECT_THROW(cpu.ld<std::uint8_t>(7, 0), SimError);   // no object 7
}

TEST_F(CpuModelTest, CheriPermissionViolationPanics)
{
    auto ro = buffers;
    ro[0].cap = ro[0].cap.andPerms(cheri::permDataRO);
    CpuAccessor cpu(mem, ro, true);
    EXPECT_EQ(cpu.ld<std::uint8_t>(0, 0), 0u);
    EXPECT_THROW(cpu.st<std::uint8_t>(0, 0, 1), SimError);
}

TEST_F(CpuModelTest, CheriCopyRunsAtCapabilityWidth)
{
    CpuCostParams costs;
    costs.cheriTagMissInterval = 0; // isolate the copy-width effect
    CpuAccessor plain(mem, buffers, false, costs);
    CpuAccessor cheri(mem, buffers, true, costs);

    const Cycles p0 = plain.cycles();
    plain.copy(1, 0, 0, 0, 128);
    const Cycles plain_cost = plain.cycles() - p0;

    const Cycles c0 = cheri.cycles();
    cheri.copy(1, 0, 0, 0, 128);
    const Cycles cheri_cost = cheri.cycles() - c0;

    // 16 iterations vs 8: the loop part halves (cache charges equal).
    EXPECT_LT(cheri_cost, plain_cost);
    EXPECT_EQ(plain_cost - cheri_cost, 8 * costs.copyPerWord);
}

TEST_F(CpuModelTest, CopyMovesData)
{
    CpuAccessor cpu(mem, buffers, false);
    for (unsigned i = 0; i < 32; ++i)
        cpu.st<std::uint8_t>(0, i, static_cast<std::uint8_t>(i * 3));
    cpu.copy(1, 8, 0, 0, 32);
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(cpu.ld<std::uint8_t>(1, 8 + i),
                  static_cast<std::uint8_t>(i * 3));
}

TEST_F(CpuModelTest, TaskSetupCheaperWithoutCheri)
{
    CpuAccessor plain(mem, buffers, false);
    CpuAccessor cheri(mem, buffers, true);
    plain.chargeTaskSetup();
    cheri.chargeTaskSetup();
    EXPECT_LT(plain.cycles(), cheri.cycles());
}

TEST_F(CpuModelTest, CheriTagFetchChargesOnMisses)
{
    CpuCostParams costs;
    costs.cheriTagMissInterval = 1; // every miss
    CpuAccessor plain(mem, buffers, false, costs);
    CpuAccessor cheri(mem, buffers, true, costs);
    for (unsigned line = 0; line < 4; ++line) {
        plain.ld<std::uint8_t>(0, line * 64);
        cheri.ld<std::uint8_t>(0, line * 64);
    }
    EXPECT_EQ(cheri.cycles() - plain.cycles(), 4u);
}

} // namespace
} // namespace capcheck
