#include <gtest/gtest.h>

#include "base/logging.hh"
#include "capchecker/mmio.hh"

namespace capcheck::capchecker
{
namespace
{

using cheri::Capability;
using cheri::permDataRW;

class MmioTest : public ::testing::Test
{
  protected:
    MmioTest() : mmio(checker) {}

    Capability
    cap(Addr base, std::uint64_t size)
    {
        return Capability::root().setBounds(base, size).andPerms(
            permDataRW);
    }

    CapChecker checker;
    CapCheckerMmio mmio;
};

TEST_F(MmioTest, InstallSequenceInstallsCapability)
{
    EXPECT_TRUE(mmio.installSequence(2, 1, cap(0x4000, 0x200)));
    const CapTable::Entry *entry = checker.capTable().lookup(2, 1);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->decoded.base(), 0x4000u);
}

TEST_F(MmioTest, InstallConsumesMmioCycles)
{
    mmio.installSequence(0, 0, cap(0x1000, 16));
    // 2-beat capability store + 3 register writes + search + status.
    EXPECT_GT(mmio.cyclesUsed(), 8u);
    const Cycles first = mmio.cyclesUsed();
    mmio.resetCycles();
    EXPECT_EQ(mmio.cyclesUsed(), 0u);
    mmio.installSequence(0, 1, cap(0x2000, 16));
    EXPECT_EQ(mmio.cyclesUsed(), first);
}

TEST_F(MmioTest, UntaggedCapabilityStoreRejected)
{
    mmio.storeCap(cap(0x1000, 16).cleared());
    mmio.writeReg(CapCheckerMmio::regTask, 0);
    mmio.writeReg(CapCheckerMmio::regObject, 0);
    mmio.writeReg(CapCheckerMmio::regCmd, CapCheckerMmio::cmdInstall);
    EXPECT_EQ(mmio.readReg(CapCheckerMmio::regStatus) &
                  CapCheckerMmio::statusLastCmdOk,
              0u);
    EXPECT_EQ(checker.capTable().used(), 0u);
}

TEST_F(MmioTest, PlainWriteToCapWindowClearsItsTag)
{
    // Storing a valid capability then scribbling data over the window
    // must not leave an installable capability behind (anti-forgery on
    // the MMIO path itself).
    mmio.storeCap(cap(0x1000, 16));
    mmio.writeReg(CapCheckerMmio::regCap, 0xdeadbeef);
    mmio.writeReg(CapCheckerMmio::regTask, 0);
    mmio.writeReg(CapCheckerMmio::regObject, 0);
    mmio.writeReg(CapCheckerMmio::regCmd, CapCheckerMmio::cmdInstall);
    EXPECT_EQ(checker.capTable().used(), 0u);
}

TEST_F(MmioTest, EvictSequenceRemovesTask)
{
    mmio.installSequence(1, 0, cap(0x1000, 16));
    mmio.installSequence(1, 1, cap(0x2000, 16));
    mmio.installSequence(2, 0, cap(0x3000, 16));
    mmio.evictSequence(1);
    EXPECT_EQ(checker.capTable().used(), 1u);
    EXPECT_NE(checker.capTable().lookup(2, 0), nullptr);
}

TEST_F(MmioTest, StatusReflectsTableFull)
{
    CapChecker::Params params;
    params.tableEntries = 2;
    CapChecker small(params);
    CapCheckerMmio small_mmio(small);

    EXPECT_TRUE(small_mmio.installSequence(0, 0, cap(0x1000, 16)));
    EXPECT_EQ(small_mmio.readReg(CapCheckerMmio::regStatus) &
                  CapCheckerMmio::statusTableFull,
              0u);
    EXPECT_TRUE(small_mmio.installSequence(0, 1, cap(0x2000, 16)));
    EXPECT_NE(small_mmio.readReg(CapCheckerMmio::regStatus) &
                  CapCheckerMmio::statusTableFull,
              0u);
    // Further installs fail until something is evicted.
    EXPECT_FALSE(small_mmio.installSequence(0, 2, cap(0x3000, 16)));
    small_mmio.evictSequence(0);
    EXPECT_TRUE(small_mmio.installSequence(0, 2, cap(0x3000, 16)));
}

TEST_F(MmioTest, StatusReportsExceptionFlag)
{
    mmio.installSequence(0, 0, cap(0x1000, 16));
    MemRequest bad;
    bad.cmd = MemCmd::read;
    bad.addr = 0x9000;
    bad.size = 8;
    bad.task = 0;
    bad.object = 0;
    (void)checker.check(bad);

    EXPECT_NE(mmio.readReg(CapCheckerMmio::regStatus) &
                  CapCheckerMmio::statusExceptionFlag,
              0u);
    mmio.writeReg(CapCheckerMmio::regCmd,
                  CapCheckerMmio::cmdClearException);
    EXPECT_EQ(mmio.readReg(CapCheckerMmio::regStatus) &
                  CapCheckerMmio::statusExceptionFlag,
              0u);
}

TEST_F(MmioTest, BadOffsetsPanic)
{
    EXPECT_THROW(mmio.writeReg(0x1000, 0), SimError);
    EXPECT_THROW((void)mmio.readReg(CapCheckerMmio::regTask), SimError);
}

TEST_F(MmioTest, UnknownCommandFails)
{
    mmio.writeReg(CapCheckerMmio::regCmd, 0x77);
    EXPECT_EQ(mmio.readReg(CapCheckerMmio::regStatus) &
                  CapCheckerMmio::statusLastCmdOk,
              0u);
}

} // namespace
} // namespace capcheck::capchecker
