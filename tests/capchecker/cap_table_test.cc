#include <gtest/gtest.h>

#include "base/logging.hh"
#include "capchecker/cap_table.hh"

namespace capcheck::capchecker
{
namespace
{

using cheri::Capability;
using cheri::permDataRO;
using cheri::permDataRW;

Capability
makeCap(Addr base, std::uint64_t size, std::uint32_t perms = permDataRW)
{
    return Capability::root().setBounds(base, size).andPerms(perms);
}

TEST(CapTable, InstallAndLookup)
{
    CapTable table(8);
    const auto idx = table.install(1, 0, makeCap(0x1000, 0x100));
    ASSERT_TRUE(idx);
    EXPECT_EQ(table.used(), 1u);

    const CapTable::Entry *entry = table.lookup(1, 0);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->decoded.base(), 0x1000u);
    EXPECT_TRUE(entry->decoded.tag());
    EXPECT_EQ(table.lookup(1, 1), nullptr);
    EXPECT_EQ(table.lookup(2, 0), nullptr);
}

TEST(CapTable, StoresCompressedFormAndDecodesIt)
{
    CapTable table(8);
    const Capability cap = makeCap(0x10000, 0x1234, permDataRO);
    table.install(3, 2, cap);
    const CapTable::Entry *entry = table.lookup(3, 2);
    ASSERT_NE(entry, nullptr);

    // The decoded view must equal what decoding the stored compressed
    // words yields (the hardware decoder path).
    const Capability redecoded = Capability::fromCompressed(
        entry->tag, entry->pesbt, entry->cursor);
    EXPECT_EQ(redecoded.base(), entry->decoded.base());
    EXPECT_EQ(redecoded.top(), entry->decoded.top());
    EXPECT_EQ(redecoded.perms(), entry->decoded.perms());
}

TEST(CapTable, FullTableRejectsInstall)
{
    CapTable table(2);
    EXPECT_TRUE(table.install(1, 0, makeCap(0x1000, 16)));
    EXPECT_TRUE(table.install(1, 1, makeCap(0x2000, 16)));
    EXPECT_TRUE(table.full());
    EXPECT_FALSE(table.install(1, 2, makeCap(0x3000, 16)));
}

TEST(CapTable, EvictTaskFreesOnlyThatTask)
{
    CapTable table(8);
    table.install(1, 0, makeCap(0x1000, 16));
    table.install(1, 1, makeCap(0x2000, 16));
    table.install(2, 0, makeCap(0x3000, 16));

    EXPECT_EQ(table.evictTask(1), 2u);
    EXPECT_EQ(table.used(), 1u);
    EXPECT_EQ(table.lookup(1, 0), nullptr);
    EXPECT_NE(table.lookup(2, 0), nullptr);
}

TEST(CapTable, EvictionMakesRoomAgain)
{
    CapTable table(2);
    table.install(1, 0, makeCap(0x1000, 16));
    table.install(1, 1, makeCap(0x2000, 16));
    table.evictTask(1);
    EXPECT_TRUE(table.install(2, 0, makeCap(0x3000, 16)));
}

TEST(CapTable, ReinstallOverwritesInPlace)
{
    CapTable table(2);
    table.install(1, 0, makeCap(0x1000, 16));
    table.markException(1, 0);
    const auto idx = table.install(1, 0, makeCap(0x4000, 32));
    ASSERT_TRUE(idx);
    EXPECT_EQ(table.used(), 1u);
    const CapTable::Entry *entry = table.lookup(1, 0);
    EXPECT_EQ(entry->decoded.base(), 0x4000u);
    EXPECT_FALSE(entry->exception); // reinstall clears the flag
}

TEST(CapTable, ExceptionBitsTracked)
{
    CapTable table(8);
    table.install(1, 0, makeCap(0x1000, 16));
    table.install(1, 1, makeCap(0x2000, 16));
    table.markException(1, 1);

    const auto excs = table.exceptionEntries();
    ASSERT_EQ(excs.size(), 1u);
    EXPECT_EQ(table.at(excs[0]).object, 1u);
}

TEST(CapTable, UntaggedInstallIsFatal)
{
    CapTable table(8);
    EXPECT_THROW(table.install(1, 0, makeCap(0x1000, 16).cleared()),
                 SimError);
}

TEST(CapTable, ZeroEntriesIsFatal)
{
    EXPECT_THROW(CapTable bad(0), SimError);
}

TEST(CapTable, PaperCapacityHoldsLargestWorkingSet)
{
    // 8 instances x 7 buffers (backprop / md_grid / md_knn) = 56 caps.
    CapTable table(256);
    for (TaskId t = 0; t < 8; ++t) {
        for (ObjectId o = 0; o < 7; ++o) {
            EXPECT_TRUE(table.install(
                t, o, makeCap(0x10000 + (t * 7 + o) * 0x1000, 0x800)));
        }
    }
    EXPECT_EQ(table.used(), 56u);
    EXPECT_FALSE(table.full());
}

} // namespace
} // namespace capcheck::capchecker
