/**
 * @file
 * Randomized MMIO driver-sequence fuzzing: interleaved capability
 * installs and task evictions through the register interface, cross-
 * checked against a reference map of what should be installed. Also
 * exercises the stall/full behaviour of a small table under churn.
 */

#include <gtest/gtest.h>

#include <map>

#include "base/random.hh"
#include "capchecker/mmio.hh"

namespace capcheck::capchecker
{
namespace
{

using cheri::Capability;

TEST(MmioFuzz, InterleavedInstallEvictMatchesReference)
{
    CapChecker::Params params;
    params.tableEntries = 24;
    CapChecker checker(params);
    CapCheckerMmio mmio(checker);
    Rng rng(424242);

    // Reference: (task, obj) -> buffer base.
    std::map<std::pair<TaskId, ObjectId>, Addr> ref;
    const Capability root = Capability::root();

    for (int step = 0; step < 20000; ++step) {
        const double dice = rng.nextDouble();
        const TaskId task = static_cast<TaskId>(rng.nextBounded(6));
        const ObjectId obj = static_cast<ObjectId>(rng.nextBounded(8));

        if (dice < 0.55) {
            const Addr base =
                0x10000 + rng.nextBounded(1024) * 0x100;
            const bool ok = mmio.installSequence(
                task, obj,
                root.setBounds(base, 0x100).andPerms(
                    cheri::permDataRW));
            const bool expect_ok =
                ref.count({task, obj}) || ref.size() < 24;
            ASSERT_EQ(ok, expect_ok) << "step " << step;
            if (ok)
                ref[{task, obj}] = base;
        } else if (dice < 0.75) {
            mmio.evictSequence(task);
            std::erase_if(ref, [task](const auto &kv) {
                return kv.first.first == task;
            });
        } else {
            // Probe: a request through the checker agrees with ref.
            MemRequest req;
            req.cmd = MemCmd::read;
            req.size = 8;
            req.task = task;
            req.object = obj;
            const auto it = ref.find({task, obj});
            req.addr = it != ref.end()
                           ? it->second + rng.nextBounded(0x100 - 8)
                           : 0x10000 + rng.nextBounded(1024) * 0x100;
            const bool allowed = checker.check(req).allowed;
            if (it != ref.end()) {
                ASSERT_TRUE(allowed) << "step " << step;
            } else {
                // No capability for this (task, obj): must deny.
                ASSERT_FALSE(allowed) << "step " << step;
            }
        }

        ASSERT_EQ(checker.capTable().used(), ref.size())
            << "step " << step;
    }
}

TEST(MmioFuzz, CyclesAreMonotoneAndBounded)
{
    CapChecker checker;
    CapCheckerMmio mmio(checker);
    Rng rng(7);

    Cycles prev = 0;
    for (int i = 0; i < 200; ++i) {
        mmio.installSequence(
            0, static_cast<ObjectId>(i % 8),
            Capability::root()
                .setBounds(0x1000 + 16 * static_cast<Addr>(i), 16)
                .andPerms(cheri::permDataRW));
        const Cycles now = mmio.cyclesUsed();
        ASSERT_GT(now, prev);
        // One install sequence is a handful of MMIO beats, never more
        // than ~30 cycles.
        ASSERT_LE(now - prev, 30u);
        prev = now;
    }
}

} // namespace
} // namespace capcheck::capchecker
