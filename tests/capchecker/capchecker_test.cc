#include <gtest/gtest.h>

#include "base/logging.hh"
#include "capchecker/capchecker.hh"

namespace capcheck::capchecker
{
namespace
{

using cheri::Capability;
using cheri::permDataRO;
using cheri::permDataRW;
using cheri::permDataWO;

MemRequest
makeReq(TaskId task, ObjectId obj, Addr addr, MemCmd cmd = MemCmd::read,
        std::uint32_t size = 8)
{
    MemRequest req;
    req.cmd = cmd;
    req.addr = addr;
    req.size = size;
    req.task = task;
    req.object = obj;
    req.srcPort = task;
    return req;
}

class FineChecker : public ::testing::Test
{
  protected:
    FineChecker()
    {
        const Capability root = Capability::root();
        checker.installCapability(
            0, 0,
            root.setBounds(0x1000, 0x100).andPerms(permDataRW));
        checker.installCapability(
            0, 1,
            root.setBounds(0x2000, 0x100).andPerms(permDataRO));
        checker.installCapability(
            1, 0,
            root.setBounds(0x3000, 0x100).andPerms(permDataRW));
    }

    CapChecker checker;
};

TEST_F(FineChecker, GrantsInBoundsAccess)
{
    EXPECT_TRUE(checker.check(makeReq(0, 0, 0x1000)).allowed);
    EXPECT_TRUE(
        checker.check(makeReq(0, 0, 0x10f8, MemCmd::write)).allowed);
    EXPECT_FALSE(checker.exceptionFlagSet());
}

TEST_F(FineChecker, BlocksOutOfBounds)
{
    EXPECT_FALSE(checker.check(makeReq(0, 0, 0x1100)).allowed);
    EXPECT_FALSE(checker.check(makeReq(0, 0, 0x0ff8)).allowed);
    // Straddling the top is also out.
    EXPECT_FALSE(checker.check(makeReq(0, 0, 0x10fc)).allowed);
    EXPECT_TRUE(checker.exceptionFlagSet());
}

TEST_F(FineChecker, BlocksCrossObjectEvenInsideTask)
{
    // Access through object 0's binding to object 1's memory: the
    // principle of intentional use.
    EXPECT_FALSE(checker.check(makeReq(0, 0, 0x2000)).allowed);
}

TEST_F(FineChecker, BlocksCrossTask)
{
    EXPECT_FALSE(checker.check(makeReq(0, 0, 0x3000)).allowed);
    EXPECT_FALSE(checker.check(makeReq(1, 0, 0x1000)).allowed);
}

TEST_F(FineChecker, EnforcesPermissions)
{
    EXPECT_TRUE(checker.check(makeReq(0, 1, 0x2000)).allowed);
    EXPECT_FALSE(
        checker.check(makeReq(0, 1, 0x2000, MemCmd::write)).allowed);
}

TEST_F(FineChecker, MissingCapabilityDenied)
{
    EXPECT_FALSE(checker.check(makeReq(0, 5, 0x1000)).allowed);
    EXPECT_FALSE(checker.check(makeReq(7, 0, 0x1000)).allowed);
}

TEST_F(FineChecker, MissingMetadataDenied)
{
    EXPECT_FALSE(
        checker.check(makeReq(0, invalidObjectId, 0x1000)).allowed);
}

TEST_F(FineChecker, ExceptionLogAndTableBits)
{
    (void)checker.check(makeReq(0, 1, 0x2000, MemCmd::write));
    ASSERT_EQ(checker.exceptionLog().size(), 1u);
    EXPECT_EQ(checker.exceptionLog()[0].task, 0u);
    EXPECT_EQ(checker.exceptionLog()[0].object, 1u);
    EXPECT_EQ(checker.capTable().exceptionEntries().size(), 1u);

    checker.clearExceptionFlag();
    EXPECT_FALSE(checker.exceptionFlagSet());
    // The log remains for software tracing.
    EXPECT_EQ(checker.exceptionLog().size(), 1u);
}

TEST_F(FineChecker, EvictThenDeny)
{
    EXPECT_TRUE(checker.check(makeReq(1, 0, 0x3000)).allowed);
    EXPECT_EQ(checker.evictTask(1), 1u);
    EXPECT_FALSE(checker.check(makeReq(1, 0, 0x3000)).allowed);
}

TEST_F(FineChecker, StatsCountChecksAndDenials)
{
    (void)checker.check(makeReq(0, 0, 0x1000));
    (void)checker.check(makeReq(0, 0, 0x9000));
    EXPECT_EQ(checker.checksPerformed(), 2u);
    EXPECT_EQ(checker.checksDenied(), 1u);
}

TEST_F(FineChecker, TagDisciplineAndProperties)
{
    EXPECT_TRUE(checker.clearsTagsOnWrite());
    const auto props = checker.properties();
    EXPECT_TRUE(props.unforgeable);
    EXPECT_TRUE(props.commonObjectRepresentation);
    EXPECT_EQ(props.granularityBytes, 1u);
    EXPECT_EQ(checker.name(), "capchecker-fine");
}

class CoarseChecker : public ::testing::Test
{
  protected:
    CoarseChecker()
    {
        CapChecker::Params params;
        params.provenance = Provenance::coarse;
        checker = std::make_unique<CapChecker>(params);
        const Capability root = Capability::root();
        checker->installCapability(
            0, 0,
            root.setBounds(0x1000, 0x100).andPerms(permDataRW));
        checker->installCapability(
            0, 1,
            root.setBounds(0x2000, 0x100).andPerms(permDataRW));
    }

    static Addr
    encode(ObjectId obj, Addr phys)
    {
        return (Addr{obj} << CapChecker::coarseAddrBits) | phys;
    }

    std::unique_ptr<CapChecker> checker;
};

TEST_F(CoarseChecker, DecodesObjectFromTopBits)
{
    MemRequest req = makeReq(0, invalidObjectId, encode(0, 0x1040));
    EXPECT_TRUE(checker->check(req).allowed);
    req.addr = encode(1, 0x2040);
    EXPECT_TRUE(checker->check(req).allowed);
}

TEST_F(CoarseChecker, ObjectAddressMismatchDenied)
{
    // Object bits say 0, address points into object 1's buffer.
    MemRequest req = makeReq(0, invalidObjectId, encode(0, 0x2040));
    EXPECT_FALSE(checker->check(req).allowed);
}

TEST_F(CoarseChecker, ForgedObjectBitsStayWithinTask)
{
    // Forged top bits can reach the task's *own* other object...
    MemRequest req = makeReq(0, invalidObjectId, encode(1, 0x2040));
    EXPECT_TRUE(checker->check(req).allowed);
    // ...but not another task's buffers (no capability installed).
    req.addr = encode(2, 0x3000);
    EXPECT_FALSE(checker->check(req).allowed);
}

TEST_F(CoarseChecker, AccelAddressComposition)
{
    EXPECT_EQ(checker->accelAddress(3, 0x1000),
              (Addr{3} << CapChecker::coarseAddrBits) | 0x1000);

    CapChecker fine;
    EXPECT_EQ(fine.accelAddress(3, 0x1000), 0x1000u);
}

TEST_F(CoarseChecker, Reports56BitLimit)
{
    EXPECT_THROW((void)checker->accelAddress(0, Addr{1} << 60),
                 SimError);
    EXPECT_THROW(checker->installCapability(0, 300,
                                            Capability::root()),
                 SimError);
}

} // namespace
} // namespace capcheck::capchecker
