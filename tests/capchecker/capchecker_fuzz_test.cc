/**
 * @file
 * Fuzz the CapChecker against an independent reference predicate: an
 * access is authorized iff the installed capability for the request's
 * (task, object) — resolved per provenance mode — is tagged, has the
 * needed permission, and covers [addr, addr+size). Any divergence
 * between the hardware model and this predicate is a protection bug.
 */

#include <gtest/gtest.h>

#include <map>

#include "base/random.hh"
#include "capchecker/capchecker.hh"

namespace capcheck::capchecker
{
namespace
{

using cheri::Capability;

struct RefCap
{
    Addr base;
    std::uint64_t size;
    bool readable;
    bool writable;
};

struct FuzzWorld
{
    explicit FuzzWorld(Provenance prov, std::uint64_t seed)
        : rng(seed)
    {
        CapChecker::Params params;
        params.provenance = prov;
        checker = std::make_unique<CapChecker>(params);

        const Capability root = Capability::root();
        for (TaskId t = 0; t < 4; ++t) {
            for (ObjectId o = 0; o < 6; ++o) {
                // Sizes < 4096 are always exactly representable, so
                // the reference bounds match the decoded bounds.
                const std::uint64_t size = 16 + rng.nextBounded(4080);
                const Addr base =
                    0x100000 + (t * 8 + o) * 0x10000 +
                    rng.nextBounded(256) * 16;
                const bool readable = rng.nextBool(0.8);
                const bool writable = rng.nextBool(0.8);
                std::uint32_t perms = cheri::permGlobal;
                if (readable)
                    perms |= cheri::permLoad;
                if (writable)
                    perms |= cheri::permStore;

                checker->installCapability(
                    t, o, root.setBounds(base, size).andPerms(perms));
                ref[{t, o}] = RefCap{base, size, readable, writable};
            }
        }
    }

    bool
    refAllows(TaskId task, ObjectId obj, Addr addr, std::uint32_t size,
              bool is_write) const
    {
        const auto it = ref.find({task, obj});
        if (it == ref.end())
            return false;
        const RefCap &cap = it->second;
        if (is_write ? !cap.writable : !cap.readable)
            return false;
        return addr >= cap.base && addr + size <= cap.base + cap.size;
    }

    Rng rng;
    std::unique_ptr<CapChecker> checker;
    std::map<std::pair<TaskId, ObjectId>, RefCap> ref;
};

TEST(CapCheckerFuzz, FineModeMatchesReferencePredicate)
{
    FuzzWorld world(Provenance::fine, 11);
    for (int i = 0; i < 50000; ++i) {
        const TaskId task = static_cast<TaskId>(
            world.rng.nextBounded(5)); // includes an unknown task
        const ObjectId obj = static_cast<ObjectId>(
            world.rng.nextBounded(7)); // includes an unknown object
        const bool is_write = world.rng.nextBool();
        const std::uint32_t size =
            1u << world.rng.nextBounded(4); // 1..8

        // Mix of near-boundary and wild addresses.
        Addr addr;
        const auto it = world.ref.find({task, obj});
        if (it != world.ref.end() && world.rng.nextBool(0.8)) {
            const RefCap &cap = it->second;
            addr = cap.base +
                   world.rng.nextBounded(cap.size + 64) -
                   world.rng.nextBounded(32);
        } else {
            addr = world.rng.next() & 0x3fffff;
        }

        MemRequest req;
        req.cmd = is_write ? MemCmd::write : MemCmd::read;
        req.addr = addr;
        req.size = size;
        req.task = task;
        req.object = obj;

        const bool got = world.checker->check(req).allowed;
        const bool want =
            world.refAllows(task, obj, addr, size, is_write);
        ASSERT_EQ(got, want)
            << "task=" << task << " obj=" << obj << " addr=0x"
            << std::hex << addr << std::dec << " size=" << size
            << (is_write ? " write" : " read");
    }
}

TEST(CapCheckerFuzz, CoarseModeMatchesReferencePredicate)
{
    FuzzWorld world(Provenance::coarse, 13);
    for (int i = 0; i < 50000; ++i) {
        const TaskId task =
            static_cast<TaskId>(world.rng.nextBounded(5));
        const ObjectId obj =
            static_cast<ObjectId>(world.rng.nextBounded(7));
        const bool is_write = world.rng.nextBool();
        const std::uint32_t size = 1u << world.rng.nextBounded(4);

        Addr phys;
        const auto it = world.ref.find({task, obj});
        if (it != world.ref.end() && world.rng.nextBool(0.8)) {
            const RefCap &cap = it->second;
            phys = cap.base + world.rng.nextBounded(cap.size + 64) -
                   world.rng.nextBounded(32);
        } else {
            phys = world.rng.next() & 0x3fffff;
        }

        MemRequest req;
        req.cmd = is_write ? MemCmd::write : MemCmd::read;
        req.addr =
            (Addr{obj} << CapChecker::coarseAddrBits) | phys;
        req.size = size;
        req.task = task;
        req.object = invalidObjectId;

        const bool got = world.checker->check(req).allowed;
        const bool want =
            world.refAllows(task, obj, phys, size, is_write);
        ASSERT_EQ(got, want)
            << "task=" << task << " obj=" << obj << " phys=0x"
            << std::hex << phys;
    }
}

TEST(CapCheckerFuzz, DenialsNeverCrashAndAlwaysLog)
{
    FuzzWorld world(Provenance::fine, 17);
    std::uint64_t denied = 0;
    for (int i = 0; i < 5000; ++i) {
        MemRequest req;
        req.cmd = world.rng.nextBool() ? MemCmd::write : MemCmd::read;
        req.addr = world.rng.next();
        req.size = 8;
        req.task = static_cast<TaskId>(world.rng.nextBounded(8));
        req.object = static_cast<ObjectId>(world.rng.nextBounded(16));
        denied += !world.checker->check(req).allowed;
    }
    EXPECT_GT(denied, 0u);
    EXPECT_EQ(world.checker->exceptionLog().size(), denied);
    EXPECT_EQ(world.checker->checksDenied(), denied);
}

} // namespace
} // namespace capcheck::capchecker
