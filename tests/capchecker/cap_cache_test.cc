#include <gtest/gtest.h>

#include "base/logging.hh"
#include "capchecker/cap_cache.hh"
#include "capchecker/capchecker.hh"

namespace capcheck::capchecker
{
namespace
{

TEST(CapCache, MissThenHit)
{
    CapCache cache(4, 60);
    EXPECT_EQ(cache.access(1, 0), 60u);
    EXPECT_EQ(cache.access(1, 0), 0u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(CapCache, DistinguishesTasksAndObjects)
{
    CapCache cache(8, 60);
    cache.access(1, 0);
    EXPECT_EQ(cache.access(1, 1), 60u); // other object misses
    EXPECT_EQ(cache.access(2, 0), 60u); // other task misses
    EXPECT_EQ(cache.access(1, 0), 0u);  // original still cached
}

TEST(CapCache, LruReplacement)
{
    CapCache cache(2, 60);
    cache.access(1, 0);
    cache.access(1, 1);
    cache.access(1, 0);           // 0 is MRU
    cache.access(1, 2);           // evicts (1,1)
    EXPECT_EQ(cache.access(1, 0), 0u);
    EXPECT_EQ(cache.access(1, 1), 60u);
}

TEST(CapCache, TaskInvalidationShootsDownOnlyThatTask)
{
    CapCache cache(4, 60);
    cache.access(1, 0);
    cache.access(2, 0);
    cache.invalidateTask(1);
    EXPECT_EQ(cache.access(1, 0), 60u);
    EXPECT_EQ(cache.access(2, 0), 0u);
}

TEST(CapCache, FlushClearsEverything)
{
    CapCache cache(4, 60);
    cache.access(1, 0);
    cache.flush();
    EXPECT_EQ(cache.access(1, 0), 60u);
}

TEST(CapCache, ZeroEntriesIsFatal)
{
    EXPECT_THROW(CapCache bad(0), SimError);
}

TEST(CachedCapChecker, MissAddsWalkLatency)
{
    CapChecker::Params params;
    params.cacheEntries = 2;
    params.cacheWalkCycles = 50;
    CapChecker checker(params);
    checker.installCapability(0, 0,
                              cheri::Capability::root()
                                  .setBounds(0x1000, 0x100)
                                  .andPerms(cheri::permDataRW));

    MemRequest req;
    req.cmd = MemCmd::read;
    req.addr = 0x1000;
    req.size = 8;
    req.task = 0;
    req.object = 0;

    EXPECT_TRUE(checker.check(req).allowed);
    EXPECT_EQ(checker.lastExtraLatency(), 50u); // cold miss
    EXPECT_TRUE(checker.check(req).allowed);
    EXPECT_EQ(checker.lastExtraLatency(), 0u); // cached
}

TEST(CachedCapChecker, EvictionInvalidatesCache)
{
    CapChecker::Params params;
    params.cacheEntries = 2;
    CapChecker checker(params);
    const auto cap = cheri::Capability::root()
                         .setBounds(0x1000, 0x100)
                         .andPerms(cheri::permDataRW);
    checker.installCapability(0, 0, cap);

    MemRequest req;
    req.cmd = MemCmd::read;
    req.addr = 0x1000;
    req.size = 8;
    req.task = 0;
    req.object = 0;
    (void)checker.check(req); // warm

    checker.evictTask(0);
    checker.installCapability(0, 0, cap);
    (void)checker.check(req);
    // Must be a fresh walk, not a stale hit.
    EXPECT_GT(checker.lastExtraLatency(), 0u);
}

TEST(CachedCapChecker, UncachedCheckerHasNoExtraLatency)
{
    CapChecker checker;
    checker.installCapability(0, 0,
                              cheri::Capability::root()
                                  .setBounds(0x1000, 0x100)
                                  .andPerms(cheri::permDataRW));
    MemRequest req;
    req.cmd = MemCmd::read;
    req.addr = 0x1000;
    req.size = 8;
    req.task = 0;
    req.object = 0;
    (void)checker.check(req);
    EXPECT_EQ(checker.lastExtraLatency(), 0u);
    EXPECT_EQ(checker.capCache(), nullptr);
}

} // namespace
} // namespace capcheck::capchecker
