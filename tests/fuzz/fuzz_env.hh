/**
 * @file
 * Shared knobs for the deterministic fuzz harnesses. Every harness is
 * an ordinary seeded gtest: the default budget (10k iterations) runs in
 * well under a second, so the harnesses live in the `quick` ctest
 * label; CI or a local soak can scale them up via the environment:
 *
 *   CAPCHECK_FUZZ_ITERS=1000000 CAPCHECK_FUZZ_SEED=7 ./tests/test_fuzz
 */

#ifndef CAPCHECK_TESTS_FUZZ_FUZZ_ENV_HH
#define CAPCHECK_TESTS_FUZZ_FUZZ_ENV_HH

#include <cstdint>
#include <cstdlib>

#include "base/random.hh"

namespace capcheck::fuzz
{

/** Iteration budget; CAPCHECK_FUZZ_ITERS overrides. */
inline std::uint64_t
iterations(std::uint64_t fallback = 10000)
{
    if (const char *env = std::getenv("CAPCHECK_FUZZ_ITERS"))
        return std::strtoull(env, nullptr, 10);
    return fallback;
}

/** Base RNG seed; CAPCHECK_FUZZ_SEED overrides. */
inline std::uint64_t
seed(std::uint64_t fallback = 0x5eedc0ffee)
{
    if (const char *env = std::getenv("CAPCHECK_FUZZ_SEED"))
        return std::strtoull(env, nullptr, 10);
    return fallback;
}

/**
 * A 64-bit value whose magnitude is itself uniform: first draw a bit
 * width, then a value of that width. Plain uniform draws would almost
 * never produce the small values where most encoder edge cases live.
 */
inline std::uint64_t
randomSized(Rng &rng)
{
    const unsigned bits = static_cast<unsigned>(rng.nextBounded(65));
    if (bits == 0)
        return 0;
    if (bits >= 64)
        return rng.next();
    return rng.next() & ((std::uint64_t{1} << bits) - 1);
}

} // namespace capcheck::fuzz

#endif // CAPCHECK_TESTS_FUZZ_FUZZ_ENV_HH
