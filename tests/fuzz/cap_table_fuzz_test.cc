/**
 * @file
 * Model-based fuzzer for the CapChecker's capability table
 * (src/capchecker/cap_table.cc). A small table (16 entries, so the
 * full/evict paths are hit constantly) is driven with a random
 * install/lookup/evict/markException workload and compared against a
 * trivially-correct std::map reference model after every operation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/random.hh"
#include "capchecker/cap_table.hh"
#include "cheri/capability.hh"
#include "cheri/perms.hh"
#include "fuzz_env.hh"

namespace capcheck::capchecker
{
namespace
{

constexpr unsigned tableSize = 16;
constexpr TaskId numTasks = 5;
constexpr ObjectId numObjects = 8;

struct RefEntry
{
    cheri::Capability cap;
    bool exception = false;
};

using Key = std::pair<TaskId, ObjectId>;

cheri::Capability
randomCap(Rng &rng)
{
    const Addr base = fuzz::randomSized(rng);
    std::uint64_t len = fuzz::randomSized(rng);
    if (len == 0)
        len = 1;
    // Derive from root so the capability is tagged and well-formed;
    // inexact bounds round outward inside root's bounds, which is fine —
    // the table must store whatever tagged capability it is given.
    cheri::Capability cap = cheri::Capability::root().setBounds(base, len);
    if (!cap.tag())
        cap = cheri::Capability::root().setBounds(0, 4096);
    if (rng.nextBool(0.3))
        cap = cap.andPerms(static_cast<std::uint32_t>(rng.next()));
    return cap;
}

TEST(CapTableFuzz, MatchesReferenceModel)
{
    Rng rng(fuzz::seed() ^ 0xcab1e);
    const std::uint64_t iters = fuzz::iterations();

    CapTable table(tableSize);
    std::map<Key, RefEntry> model;

    for (std::uint64_t i = 0; i < iters; ++i) {
        const TaskId task = static_cast<TaskId>(rng.nextBounded(numTasks));
        const ObjectId object =
            static_cast<ObjectId>(rng.nextBounded(numObjects));
        const Key key{task, object};

        switch (rng.nextBounded(10)) {
          case 0:
          case 1:
          case 2:
          case 3: { // install
            const cheri::Capability cap = randomCap(rng);
            const auto idx = table.install(task, object, cap);
            const bool have = model.count(key) != 0;
            if (!have && model.size() == tableSize) {
                ASSERT_FALSE(idx.has_value())
                    << "iteration " << i
                    << ": install into a full table must fail";
            } else {
                ASSERT_TRUE(idx.has_value())
                    << "iteration " << i << ": install failed with "
                    << model.size() << "/" << tableSize << " entries used";
                // Reinstall must overwrite in place and clear the
                // exception bit along with the stale capability.
                model[key] = RefEntry{cap, false};
            }
            break;
          }
          case 4:
          case 5: { // evict one task
            const unsigned freed = table.evictTask(task);
            unsigned expect = 0;
            for (auto it = model.begin(); it != model.end();) {
                if (it->first.first == task) {
                    it = model.erase(it);
                    ++expect;
                } else {
                    ++it;
                }
            }
            ASSERT_EQ(freed, expect)
                << "iteration " << i << ": evictTask(" << task
                << ") freed the wrong number of entries";
            break;
          }
          case 6: { // markException
            const auto it = model.find(key);
            if (it != model.end()) {
                table.markException(task, object);
                it->second.exception = true;
            } else {
                // Marking a key with no entry is a driver/checker
                // desync; the table must refuse loudly, not no-op.
                EXPECT_THROW(table.markException(task, object),
                             SimError)
                    << "iteration " << i;
            }
            break;
          }
          default:
            break; // fall through to the lookup cross-check below
        }

        // Cross-check occupancy and a random lookup every iteration.
        ASSERT_EQ(table.used(), model.size()) << "iteration " << i;
        ASSERT_EQ(table.full(), model.size() == tableSize)
            << "iteration " << i;

        const TaskId qt = static_cast<TaskId>(rng.nextBounded(numTasks));
        const ObjectId qo =
            static_cast<ObjectId>(rng.nextBounded(numObjects));
        const CapTable::Entry *entry = table.lookup(qt, qo);
        const auto ref = model.find({qt, qo});
        if (ref == model.end()) {
            ASSERT_EQ(entry, nullptr)
                << "iteration " << i << ": phantom entry for (" << qt
                << ", " << qo << ")";
        } else {
            ASSERT_NE(entry, nullptr)
                << "iteration " << i << ": lost entry for (" << qt << ", "
                << qo << ")";
            ASSERT_TRUE(entry->valid);
            ASSERT_EQ(entry->task, qt);
            ASSERT_EQ(entry->object, qo);
            ASSERT_EQ(entry->exception, ref->second.exception)
                << "iteration " << i;
            // The stored compressed words must round-trip to the
            // installed capability: same decoded bounds, perms, tag.
            const cheri::Capability &want = ref->second.cap;
            ASSERT_TRUE(entry->tag);
            ASSERT_EQ(entry->decoded.base(), want.base())
                << "iteration " << i;
            ASSERT_TRUE(entry->decoded.top() == want.top())
                << "iteration " << i;
            ASSERT_EQ(entry->decoded.perms(), want.perms())
                << "iteration " << i;
            const cheri::Capability redecoded =
                cheri::Capability::fromCompressed(entry->tag, entry->pesbt,
                                                  entry->cursor);
            ASSERT_EQ(redecoded.base(), entry->decoded.base())
                << "iteration " << i;
            ASSERT_TRUE(redecoded.top() == entry->decoded.top())
                << "iteration " << i;
        }
    }
}

TEST(CapTableFuzz, RejectsUntagged)
{
    CapTable table(tableSize);
    const cheri::Capability untagged =
        cheri::Capability::root().setBounds(0, 4096).cleared();
    EXPECT_THROW(table.install(1, 2, untagged), SimError);
    EXPECT_EQ(table.used(), 0u);
}

} // namespace
} // namespace capcheck::capchecker
