/**
 * @file
 * Model-based fuzzers for the fast-kernel lookup structures
 * (sim/kernels registry, "captable.index" / "capcache.index"). Three
 * harnesses:
 *
 *  - PairIndex against a std::unordered_map, with a deliberately tiny
 *    key space so tombstone churn forces compaction rebuilds;
 *  - the fast-indexed CapTable against the same std::map reference
 *    model the scanning table is fuzzed against;
 *  - a fast-indexed CapCache run in lockstep with a reference scanning
 *    CapCache on one operation stream — every access must return the
 *    same latency (i.e. make the identical hit/victim decision).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>

#include "base/logging.hh"
#include "base/random.hh"
#include "capchecker/cap_cache.hh"
#include "capchecker/cap_table.hh"
#include "capchecker/pair_index.hh"
#include "cheri/capability.hh"
#include "fuzz_env.hh"

namespace capcheck::capchecker
{
namespace
{

constexpr TaskId numTasks = 5;
constexpr ObjectId numObjects = 8;

TEST(PairIndexFuzz, MatchesReferenceModel)
{
    Rng rng(fuzz::seed() ^ 0x1dec5);
    const std::uint64_t iters = fuzz::iterations();

    // Capacity equals the key space so the table can always accept an
    // insert, while erase/insert waves pile up tombstones and force
    // compact() to run many times over the fuzz budget.
    PairIndex index(numTasks * numObjects);
    std::unordered_map<std::uint64_t, std::uint32_t> model;
    const auto key = [](TaskId t, ObjectId o) {
        return (static_cast<std::uint64_t>(t) << 32) | o;
    };

    for (std::uint64_t i = 0; i < iters; ++i) {
        const TaskId task = static_cast<TaskId>(rng.nextBounded(numTasks));
        const ObjectId object =
            static_cast<ObjectId>(rng.nextBounded(numObjects));
        const std::uint64_t k = key(task, object);

        switch (rng.nextBounded(4)) {
          case 0:
          case 1: // insert (keys are unique by contract)
            if (model.count(k) == 0) {
                const auto value =
                    static_cast<std::uint32_t>(rng.nextBounded(1024));
                index.insert(task, object, value);
                model[k] = value;
            }
            break;
          case 2: // erase (the key must be present by contract)
            if (model.count(k) != 0) {
                index.erase(task, object);
                model.erase(k);
            }
            break;
          default:
            break; // fall through to the find cross-check
        }

        ASSERT_EQ(index.size(), model.size()) << "iteration " << i;
        const TaskId qt = static_cast<TaskId>(rng.nextBounded(numTasks));
        const ObjectId qo =
            static_cast<ObjectId>(rng.nextBounded(numObjects));
        const auto got = index.find(qt, qo);
        const auto ref = model.find(key(qt, qo));
        if (ref == model.end()) {
            ASSERT_FALSE(got.has_value())
                << "iteration " << i << ": phantom mapping for ("
                << qt << ", " << qo << ")";
        } else {
            ASSERT_TRUE(got.has_value())
                << "iteration " << i << ": lost mapping for (" << qt
                << ", " << qo << ")";
            ASSERT_EQ(*got, ref->second) << "iteration " << i;
        }
    }
}

TEST(PairIndexFuzz, ContractViolationsPanic)
{
    PairIndex index(4);
    index.insert(1, 2, 7);
    EXPECT_THROW(index.insert(1, 2, 9), SimError);
    EXPECT_THROW(index.erase(3, 4), SimError);
    index.erase(1, 2);
    EXPECT_EQ(index.size(), 0u);
}

constexpr unsigned tableSize = 16;

struct RefEntry
{
    cheri::Capability cap;
    bool exception = false;
};

using Key = std::pair<TaskId, ObjectId>;

cheri::Capability
randomCap(Rng &rng)
{
    const Addr base = fuzz::randomSized(rng);
    std::uint64_t len = fuzz::randomSized(rng);
    if (len == 0)
        len = 1;
    cheri::Capability cap = cheri::Capability::root().setBounds(base, len);
    if (!cap.tag())
        cap = cheri::Capability::root().setBounds(0, 4096);
    return cap;
}

/**
 * The fast-indexed table against the scanning table's reference model.
 * Same workload shape as CapTableFuzz.MatchesReferenceModel so the two
 * implementations are exercised over the same distribution.
 */
TEST(CapTableFastIndexFuzz, MatchesReferenceModel)
{
    Rng rng(fuzz::seed() ^ 0xfa57cab1e);
    const std::uint64_t iters = fuzz::iterations();

    CapTable table(tableSize, /*fast_index=*/true);
    std::map<Key, RefEntry> model;

    for (std::uint64_t i = 0; i < iters; ++i) {
        const TaskId task = static_cast<TaskId>(rng.nextBounded(numTasks));
        const ObjectId object =
            static_cast<ObjectId>(rng.nextBounded(numObjects));
        const Key key{task, object};

        switch (rng.nextBounded(10)) {
          case 0:
          case 1:
          case 2:
          case 3: { // install
            const cheri::Capability cap = randomCap(rng);
            const auto idx = table.install(task, object, cap);
            const bool have = model.count(key) != 0;
            if (!have && model.size() == tableSize) {
                ASSERT_FALSE(idx.has_value()) << "iteration " << i;
            } else {
                ASSERT_TRUE(idx.has_value()) << "iteration " << i;
                model[key] = RefEntry{cap, false};
            }
            break;
          }
          case 4:
          case 5: { // evict one task
            const unsigned freed = table.evictTask(task);
            unsigned expect = 0;
            for (auto it = model.begin(); it != model.end();) {
                if (it->first.first == task) {
                    it = model.erase(it);
                    ++expect;
                } else {
                    ++it;
                }
            }
            ASSERT_EQ(freed, expect) << "iteration " << i;
            break;
          }
          case 6: { // markException
            const auto it = model.find(key);
            if (it != model.end()) {
                table.markException(task, object);
                it->second.exception = true;
            } else {
                EXPECT_THROW(table.markException(task, object),
                             SimError)
                    << "iteration " << i;
            }
            break;
          }
          default:
            break;
        }

        ASSERT_EQ(table.used(), model.size()) << "iteration " << i;

        const TaskId qt = static_cast<TaskId>(rng.nextBounded(numTasks));
        const ObjectId qo =
            static_cast<ObjectId>(rng.nextBounded(numObjects));
        const CapTable::Entry *entry = table.lookup(qt, qo);
        const auto ref = model.find({qt, qo});
        if (ref == model.end()) {
            ASSERT_EQ(entry, nullptr) << "iteration " << i;
        } else {
            ASSERT_NE(entry, nullptr) << "iteration " << i;
            ASSERT_TRUE(entry->valid);
            ASSERT_EQ(entry->task, qt);
            ASSERT_EQ(entry->object, qo);
            ASSERT_EQ(entry->exception, ref->second.exception)
                << "iteration " << i;
            ASSERT_EQ(entry->decoded.base(), ref->second.cap.base())
                << "iteration " << i;
        }
    }
}

/**
 * Differential fuzz: the fast-indexed cache must make bit-identical
 * hit/victim decisions to the reference scan on any operation stream.
 * A hit and a miss are distinguishable through access()'s return value
 * and the hit/miss counters; identical victims are forced into the
 * open by the shared stream — a divergent victim changes a later
 * access from hit to miss (or vice versa) within a few operations at
 * this capacity.
 */
TEST(CapCacheFastIndexFuzz, MatchesScanDecisions)
{
    Rng rng(fuzz::seed() ^ 0xcac4e);
    const std::uint64_t iters = fuzz::iterations();

    constexpr unsigned entries = 8;
    constexpr Cycles walk = 60;
    CapCache ref(entries, walk, /*fast_index=*/false);
    CapCache fast(entries, walk, /*fast_index=*/true);

    for (std::uint64_t i = 0; i < iters; ++i) {
        const TaskId task = static_cast<TaskId>(rng.nextBounded(numTasks));
        const ObjectId object =
            static_cast<ObjectId>(rng.nextBounded(numObjects));

        switch (rng.nextBounded(16)) {
          case 0:
          case 1: // eviction shootdown
            ref.invalidateTask(task);
            fast.invalidateTask(task);
            break;
          case 2: // full flush (rare: repopulates the free-line path)
            ref.flush();
            fast.flush();
            break;
          default: {
            const Cycles want = ref.access(task, object);
            const Cycles got = fast.access(task, object);
            ASSERT_EQ(got, want)
                << "iteration " << i << ": access(" << task << ", "
                << object << ") diverged (ref "
                << (want == 0 ? "hit" : "miss") << ", fast "
                << (got == 0 ? "hit" : "miss") << ")";
            break;
          }
        }

        ASSERT_EQ(fast.hits(), ref.hits()) << "iteration " << i;
        ASSERT_EQ(fast.misses(), ref.misses()) << "iteration " << i;
    }
}

} // namespace
} // namespace capcheck::capchecker
