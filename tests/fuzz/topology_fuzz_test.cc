/**
 * @file
 * Seeded topology fuzzer. Two layers:
 *
 *  - Capgen: the generator's contract — identical parameters always
 *    produce byte-identical canonical JSON (the determinism gate CI
 *    enforces on the capgen binary), every emitted graph survives the
 *    JSON round-trip unchanged, and out-of-envelope parameters are
 *    rejected with a TopologyError rather than a bad graph.
 *
 *  - TopoFuzz: random shape knobs (accelerator count, tree depth,
 *    fanout, channels, banks, seed) drive generateTopology(), and
 *    every resulting graph must elaborate: tasks all attach, every
 *    task resolves to exactly one protection checker, and the graph
 *    dump renders. A subset runs end-to-end with flight recording —
 *    the always-on hops-sum-to-latency INVARIANT aborts the process
 *    if multi-hop attribution leaks a cycle — and a final triple runs
 *    the same wiring under none / shared capchecker / banked checkers
 *    to pin the permissiveness lattice: legitimate MachSuite DMA is
 *    correct with zero exceptions under every scheme, moving the same
 *    number of beats.
 *
 * Iteration budget scales with CAPCHECK_FUZZ_ITERS (default keeps the
 * quick tier >= 100 distinct graphs; a soak sweeps thousands).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "base/json_value.hh"
#include "base/random.hh"
#include "harness/run_request.hh"
#include "obs/options.hh"
#include "system/elaborator.hh"
#include "system/soc_system.hh"
#include "system/topogen.hh"
#include "fuzz_env.hh"

namespace capcheck::system
{
namespace
{

namespace fs = std::filesystem;

/** Random shape inside generateTopology's documented envelope. */
TopoGenParams
randomParams(Rng &rng)
{
    TopoGenParams p;
    p.accels = 1 + static_cast<unsigned>(rng.nextBounded(24));
    p.levels = 1 + static_cast<unsigned>(rng.nextBounded(3));
    p.fanout = 1 + static_cast<unsigned>(rng.nextBounded(4));
    p.channels = 1 + static_cast<unsigned>(rng.nextBounded(4));
    p.banks = static_cast<unsigned>(rng.nextBounded(5));
    p.seed = rng.next();
    return p;
}

SocConfig
config(SystemMode mode, unsigned tasks, const std::string &topo_file)
{
    SocConfig cfg;
    cfg.mode = mode;
    cfg.numInstances = tasks;
    cfg.collectStats = true;
    cfg.seed = 3;
    cfg.topologyFile = topo_file;
    return cfg;
}

std::string
writeTempTopo(const std::string &stem, const Topology &topo)
{
    const fs::path path =
        fs::temp_directory_path() / (stem + ".topo.json");
    std::ofstream os(path);
    os << topo.toJsonText();
    return path.string();
}

/** Elaborate @p topo and assert the structural invariants. */
void
expectElaborates(const TopoGenParams &p, const Topology &topo,
                 unsigned tasks)
{
    SocConfig cfg;
    cfg.mode = SystemMode::ccpuCaccel;
    cfg.numInstances = tasks;
    cfg.seed = 3;
    EventQueue eq;
    stats::StatGroup root("soc");
    try {
        const Platform platform =
            Elaborator(eq, &root, cfg).elaborate(topo, tasks);

        // Every task attached, on a real crossbar slot, and resolved
        // to exactly one checker (protectionFor throws on ambiguity).
        ASSERT_EQ(platform.taskAttach.size(), tasks) << topoGenName(p);
        for (unsigned t = 0; t < tasks; ++t) {
            ASSERT_NE(platform.attachOf(t).xbar, nullptr)
                << topoGenName(p);
            EXPECT_NE(platform.protectionFor(t), nullptr)
                << topoGenName(p) << " task " << t
                << " reaches memory unchecked";
        }

        // The graph renders, and names the root of the tree.
        const std::string dump = platform.graphDump();
        EXPECT_NE(dump.find("topology " + topoGenName(p)),
                  std::string::npos);
        EXPECT_NE(dump.find("xbar0_0"), std::string::npos)
            << topoGenName(p);
    } catch (const std::exception &e) {
        FAIL() << topoGenName(p) << " tasks=" << tasks
               << " failed to elaborate: " << e.what();
    }
}

TEST(Capgen, IdenticalParametersAreByteIdentical)
{
    Rng rng(fuzz::seed() ^ 0xca9);
    for (int i = 0; i < 32; ++i) {
        const TopoGenParams p = randomParams(rng);
        EXPECT_EQ(generateTopology(p).toJsonText(),
                  generateTopology(p).toJsonText())
            << topoGenName(p);
    }
}

TEST(Capgen, OutputIsCanonicalUnderRoundTrip)
{
    Rng rng(fuzz::seed() ^ 0xca91);
    for (int i = 0; i < 32; ++i) {
        const TopoGenParams p = randomParams(rng);
        const std::string text = generateTopology(p).toJsonText();
        const auto doc = json::parseJson(text);
        ASSERT_TRUE(doc.has_value()) << topoGenName(p);
        EXPECT_EQ(Topology::fromJson(*doc).toJsonText(), text)
            << topoGenName(p);
    }
}

TEST(Capgen, NameEncodesTheShape)
{
    TopoGenParams p;
    p.accels = 128;
    p.levels = 2;
    p.channels = 4;
    p.banks = 0;
    p.seed = 7;
    EXPECT_EQ(topoGenName(p), "gen-a128-l2-c4-b0-s7");
    EXPECT_EQ(generateTopology(p).name, topoGenName(p));
}

TEST(Capgen, RejectsOutOfEnvelopeParameters)
{
    TopoGenParams zero_accels;
    zero_accels.accels = 0;
    EXPECT_THROW(generateTopology(zero_accels), TopologyError);

    TopoGenParams zero_levels;
    zero_levels.levels = 0;
    EXPECT_THROW(generateTopology(zero_levels), TopologyError);

    TopoGenParams zero_fanout;
    zero_fanout.fanout = 0;
    EXPECT_THROW(generateTopology(zero_fanout), TopologyError);

    TopoGenParams zero_channels;
    zero_channels.channels = 0;
    EXPECT_THROW(generateTopology(zero_channels), TopologyError);
}

TEST(TopoFuzz, EveryGeneratedGraphElaborates)
{
    Rng rng(fuzz::seed() ^ 0x70f2);
    // >= 100 distinct graphs even when CI scales the budget down; the
    // default 15000-iteration budget elaborates 150.
    const std::uint64_t graphs =
        std::max<std::uint64_t>(100, fuzz::iterations(15000) / 100);

    for (std::uint64_t i = 0; i < graphs; ++i) {
        const TopoGenParams p = randomParams(rng);
        const Topology topo = generateTopology(p);

        // Canonical: survives the JSON round-trip byte for byte.
        const auto doc = json::parseJson(topo.toJsonText());
        ASSERT_TRUE(doc.has_value()) << topoGenName(p);
        ASSERT_EQ(Topology::fromJson(*doc).toJsonText(),
                  topo.toJsonText())
            << topoGenName(p);

        // Elaborates for any task count up to the accelerator budget.
        const unsigned tasks =
            1 + static_cast<unsigned>(rng.nextBounded(p.accels));
        expectElaborates(p, topo, tasks);
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

TEST(TopoFuzz, RandomGraphsRunWithConservedFlightAttribution)
{
    Rng rng(fuzz::seed() ^ 0xf119);
    // End-to-end runs are ~1000x an elaboration; a handful per run is
    // enough since every beat's attribution is INVARIANT-checked.
    for (int i = 0; i < 3; ++i) {
        const TopoGenParams p = randomParams(rng);
        const Topology topo = generateTopology(p);
        const std::string path = writeTempTopo(
            "fuzz-e2e-" + std::to_string(i), topo);
        const unsigned tasks = std::min(p.accels, 4u);

        const auto req = harness::RunRequest::single(
            "aes",
            config(SystemMode::ccpuCaccel, tasks, path), tasks);

        const fs::path dir =
            fs::temp_directory_path() /
            ("capcheck_topofuzz_" + std::to_string(i));
        fs::create_directories(dir);
        obs::ObsOptions obs;
        obs.flightFile = (dir / "run.flights.json").string();
        obs.latencyFile = (dir / "run.latency.json").string();
        obs.topN = 8;
        obs.runLabel = topoGenName(p);
        // The recorder's hops-sum-to-latency INVARIANT fires on every
        // flight; an attribution leak anywhere in the tree aborts.
        const RunResult r = req.execute(obs);
        std::remove(path.c_str());
        fs::remove_all(dir);

        EXPECT_TRUE(r.functionallyCorrect) << topoGenName(p);
        EXPECT_EQ(r.exceptions, 0u) << topoGenName(p);
        EXPECT_GT(r.dmaBeats, 0u) << topoGenName(p);
    }
}

TEST(TopoFuzz, PermissivenessLatticeHoldsOnARandomTree)
{
    Rng rng(fuzz::seed() ^ 0x1a77);
    TopoGenParams p = randomParams(rng);
    p.accels = std::max(p.accels, 4u);
    const unsigned tasks = 4;

    // Same wiring, three protection points on the lattice. All must
    // pass legitimate DMA untouched: correct, exception-free, and
    // moving the same number of beats.
    struct SchemePoint
    {
        const char *scheme;
        unsigned banks;
        SystemMode mode;
    };
    const SchemePoint points[] = {
        {"none", 0, SystemMode::cpuAccel},
        {"capchecker", 0, SystemMode::ccpuCaccel},
        {"checker_bank", 4, SystemMode::ccpuCaccel},
    };

    std::uint64_t beats = 0;
    for (const SchemePoint &point : points) {
        TopoGenParams sp = p;
        sp.scheme = point.scheme;
        sp.banks = point.banks;
        const std::string path = writeTempTopo(
            std::string("fuzz-lattice-") + point.scheme,
            generateTopology(sp));
        const RunResult r =
            SocSystem(config(point.mode, tasks, path))
                .runBenchmark("aes");
        std::remove(path.c_str());

        EXPECT_TRUE(r.functionallyCorrect)
            << point.scheme << " on " << topoGenName(sp);
        EXPECT_EQ(r.exceptions, 0u)
            << point.scheme << " denied legitimate DMA on "
            << topoGenName(sp);
        EXPECT_GT(r.dmaBeats, 0u) << point.scheme;
        if (beats == 0)
            beats = r.dmaBeats;
        EXPECT_EQ(r.dmaBeats, beats)
            << point.scheme
            << " moved a different number of beats on "
            << topoGenName(sp);
    }
}

} // namespace
} // namespace capcheck::system
