/**
 * @file
 * Differential fuzzer over the protection schemes of Table 1. One
 * random DMA trace is replayed through CapChecker-Fine,
 * CapChecker-Coarse, IOMMU, IOPMP and NoProtection, all programmed with
 * the same task/buffer layout, and every verdict tuple is checked
 * against the permissiveness lattice:
 *
 *   Fine-allowed  =>  Coarse-allowed          (same capability table)
 *   Fine-allowed  =>  IOPMP- and IOMMU-allowed (byte-granular is the
 *                                              strictest programming)
 *   any-allowed   =>  NoProtection-allowed
 *
 * plus the sanity floor that an in-bounds, correctly-permissioned
 * access to a task's own buffer is allowed by every scheme.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "base/random.hh"
#include "capchecker/capchecker.hh"
#include "cheri/capability.hh"
#include "cheri/compressed.hh"
#include "cheri/perms.hh"
#include "mem/packet.hh"
#include "protect/iommu.hh"
#include "protect/iopmp.hh"
#include "protect/no_protection.hh"
#include "fuzz_env.hh"

namespace capcheck::protect
{
namespace
{

constexpr TaskId numTasks = 3;
constexpr unsigned buffersPerTask = 4;

struct Buffer
{
    TaskId owner;
    ObjectId object;
    Addr base;
    std::uint64_t size;
    bool writable;
};

/** Buffer layout with CC-exact, page-disjoint extents. */
std::vector<Buffer>
makeBuffers(Rng &rng)
{
    std::vector<Buffer> buffers;
    for (TaskId task = 0; task < numTasks; ++task) {
        for (unsigned i = 0; i < buffersPerTask; ++i) {
            Buffer buf;
            buf.owner = task;
            buf.object = static_cast<ObjectId>(buffers.size());
            // 1 MiB strides: page-disjoint, and aligned for any
            // alignment CC can demand of a <= 64 KiB region.
            buf.base = (Addr{1} + buffers.size()) << 20;
            buf.size = 1 + rng.nextBounded(64 * 1024);
            // Round to the CC-exact fixed point so the capability's
            // bounds equal the region the other schemes protect.
            for (int round = 0; round < 4; ++round) {
                const std::uint64_t a = cheri::ccRequiredAlignment(buf.size);
                const std::uint64_t rounded = (buf.size + a - 1) & ~(a - 1);
                if (rounded == buf.size)
                    break;
                buf.size = rounded;
            }
            buf.writable = rng.nextBool(0.5);
            buffers.push_back(buf);
        }
    }
    return buffers;
}

TEST(ProtectDifferentialFuzz, PermissivenessLattice)
{
    Rng rng(fuzz::seed() ^ 0xd1ff);
    const std::uint64_t iters = fuzz::iterations();

    const std::vector<Buffer> buffers = makeBuffers(rng);

    capchecker::CapChecker::Params fine_params;
    fine_params.provenance = capchecker::Provenance::fine;
    capchecker::CapChecker fine(fine_params);

    capchecker::CapChecker::Params coarse_params;
    coarse_params.provenance = capchecker::Provenance::coarse;
    capchecker::CapChecker coarse(coarse_params);

    Iommu iommu(8);
    Iopmp iopmp(64);
    NoProtection none;

    for (const Buffer &buf : buffers) {
        const std::uint32_t perms =
            buf.writable ? cheri::permDataRW : cheri::permDataRO;
        const cheri::Capability cap = cheri::Capability::root()
                                          .setBounds(buf.base, buf.size)
                                          .andPerms(perms);
        ASSERT_TRUE(cap.tag());
        ASSERT_EQ(cap.base(), buf.base) << "buffer bounds not CC-exact";
        ASSERT_TRUE(cap.top() == static_cast<u128>(buf.base) + buf.size);

        ASSERT_TRUE(fine.installCapability(buf.owner, buf.object, cap));
        ASSERT_TRUE(coarse.installCapability(buf.owner, buf.object, cap));
        iommu.mapRange(buf.owner, buf.base, buf.size, buf.writable);
        ASSERT_TRUE(iopmp.addRegion(Iopmp::Region{
            buf.owner, buf.base, buf.size, true, buf.writable}));
    }

    std::uint64_t allowed_count = 0;
    std::uint64_t denied_count = 0;

    for (std::uint64_t i = 0; i < iters; ++i) {
        const Buffer &buf = buffers[rng.nextBounded(buffers.size())];
        // Mostly probe as the owner, sometimes as another task.
        const TaskId task = rng.nextBool(0.75)
                                ? buf.owner
                                : static_cast<TaskId>(
                                      rng.nextBounded(numTasks));

        // Offsets concentrate around the buffer edges, where the
        // off-by-one bugs live.
        std::int64_t offset;
        switch (rng.nextBounded(4)) {
          case 0: // interior
            offset = static_cast<std::int64_t>(rng.nextBounded(buf.size));
            break;
          case 1: // near the end (possibly just past it)
            offset = static_cast<std::int64_t>(buf.size) -
                     rng.nextRange(-80, 80);
            break;
          case 2: // near the start (possibly just before it)
            offset = rng.nextRange(-80, 80);
            break;
          default: // far out
            offset = rng.nextRange(-(64 << 10), (128 << 10));
            break;
        }
        const std::uint32_t size = 1 + static_cast<std::uint32_t>(
                                           rng.nextBounded(64));
        const Addr addr = buf.base + static_cast<Addr>(offset);
        const MemCmd cmd = rng.nextBool() ? MemCmd::write : MemCmd::read;

        MemRequest req;
        req.cmd = cmd;
        req.addr = addr;
        req.size = size;
        req.task = task;
        req.object = buf.object;
        req.id = i;

        MemRequest coarse_req = req;
        coarse_req.object = invalidObjectId;
        coarse_req.addr =
            (Addr{buf.object} << capchecker::CapChecker::coarseAddrBits) |
            (addr & ((Addr{1} << capchecker::CapChecker::coarseAddrBits) -
                     1));

        const bool fine_ok = fine.check(req).allowed;
        const bool coarse_ok = coarse.check(coarse_req).allowed;
        const bool iommu_ok = iommu.check(req).allowed;
        const bool iopmp_ok = iopmp.check(req).allowed;
        const bool none_ok = none.check(req).allowed;

        const auto context = [&] {
            return ::testing::Message()
                   << "iteration " << i << ": task " << task << " "
                   << memCmdName(cmd) << " 0x" << std::hex << addr << "+"
                   << std::dec << size << " (object " << buf.object
                   << ", owner " << buf.owner << ", buffer 0x" << std::hex
                   << buf.base << "+0x" << buf.size
                   << (buf.writable ? " rw)" : " ro)");
        };

        // The lattice.
        ASSERT_TRUE(!fine_ok || coarse_ok)
            << "Fine allowed but Coarse denied — " << context();
        ASSERT_TRUE(!fine_ok || iopmp_ok)
            << "Fine allowed but IOPMP denied — " << context();
        ASSERT_TRUE(!fine_ok || iommu_ok)
            << "Fine allowed but IOMMU denied — " << context();
        ASSERT_TRUE((!fine_ok && !coarse_ok && !iommu_ok && !iopmp_ok) ||
                    none_ok)
            << "a scheme allowed what NoProtection denies — " << context();

        // Sanity floor: well-formed own-buffer accesses pass everywhere.
        const bool in_bounds =
            offset >= 0 &&
            static_cast<std::uint64_t>(offset) + size <= buf.size;
        const bool perm_ok = cmd == MemCmd::read || buf.writable;
        if (task == buf.owner && in_bounds && perm_ok) {
            ASSERT_TRUE(fine_ok && coarse_ok && iommu_ok && iopmp_ok &&
                        none_ok)
                << "legitimate access denied (fine=" << fine_ok
                << " coarse=" << coarse_ok << " iommu=" << iommu_ok
                << " iopmp=" << iopmp_ok << ") — " << context();
        }

        // And the strict converse for the byte-granular schemes: an
        // access that escapes the buffer or violates its permission
        // must be denied by both CapChecker modes and the IOPMP.
        if (!in_bounds || !perm_ok || task != buf.owner) {
            ASSERT_FALSE(fine_ok)
                << "Fine allowed an illegal access — " << context();
            ASSERT_FALSE(coarse_ok)
                << "Coarse allowed an illegal access — " << context();
            ASSERT_FALSE(iopmp_ok)
                << "IOPMP allowed an illegal access — " << context();
        }

        (fine_ok ? allowed_count : denied_count) += 1;
    }

    // The trace must exercise both verdicts or the lattice checks are
    // vacuous.
    EXPECT_GT(allowed_count, 0u);
    EXPECT_GT(denied_count, 0u);
}

} // namespace
} // namespace capcheck::protect
