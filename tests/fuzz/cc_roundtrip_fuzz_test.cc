/**
 * @file
 * Property fuzzer for the CHERI-Concentrate encoder/decoder
 * (src/cheri/compressed.cc). Each iteration draws random bounds with
 * magnitude-uniform lengths (so tiny and huge regions are equally
 * likely) and checks the encoder's contract:
 *
 *   1. decode(encode(b, t)) contains [b, t)  — never narrows;
 *   2. the `exact` flag is truthful in both directions;
 *   3. bounds aligned to ccRequiredAlignment(len) encode exactly;
 *   4. ccIsRepresentable(p, a, b) <=> decode(p, a) == decode(p, b).
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "base/random.hh"
#include "cheri/compressed.hh"
#include "fuzz_env.hh"

namespace capcheck::cheri
{
namespace
{

/** Random [base, top) with top possibly 2^64; never empty. */
void
randomBounds(Rng &rng, Addr &base, u128 &top)
{
    base = fuzz::randomSized(rng);
    const std::uint64_t len = fuzz::randomSized(rng);
    top = static_cast<u128>(base) + len + 1;
    if (top > (static_cast<u128>(1) << 64)) {
        // Clamp into the 65-bit top space by sliding the base down.
        const u128 excess = top - (static_cast<u128>(1) << 64);
        base -= static_cast<Addr>(excess);
        top = static_cast<u128>(1) << 64;
    }
}

TEST(CcRoundtripFuzz, EncodeDecodeContract)
{
    Rng rng(fuzz::seed());
    const std::uint64_t iters = fuzz::iterations();

    for (std::uint64_t i = 0; i < iters; ++i) {
        Addr base;
        u128 top;
        randomBounds(rng, base, top);

        const CcEncodeResult enc = ccEncode(base, top);
        const CcBounds dec = ccDecode(enc.pesbt, base);

        // 1. Rounding is outward only.
        ASSERT_LE(dec.base, base) << "iteration " << i;
        ASSERT_GE(dec.top, top) << "iteration " << i;

        // 2. Exactness flag is truthful.
        const bool is_exact = dec.base == base && dec.top == top;
        ASSERT_EQ(enc.exact, is_exact)
            << "iteration " << i << ": exact flag lies for base=0x"
            << std::hex << base << " len=0x"
            << static_cast<std::uint64_t>(top - base);

        // Decoding must be stable at any representable cursor, e.g. the
        // last byte of the requested region.
        const Addr last = static_cast<Addr>(top - 1);
        const CcBounds dec2 = ccDecode(enc.pesbt, last);
        ASSERT_EQ(dec, dec2)
            << "iteration " << i
            << ": bounds change between cursors inside the region";
    }
}

TEST(CcRoundtripFuzz, RequiredAlignmentSufficient)
{
    Rng rng(fuzz::seed() ^ 0xa11600d);
    const std::uint64_t iters = fuzz::iterations();

    for (std::uint64_t i = 0; i < iters; ++i) {
        std::uint64_t len = fuzz::randomSized(rng);
        if (len == 0)
            len = 1;

        const std::uint64_t align = ccRequiredAlignment(len);
        ASSERT_NE(align, 0u);
        // Aligning the length up may legally raise the requirement one
        // notch (a carry into the next mantissa bit), so iterate to the
        // fixed point; ccRequiredAlignment is monotone in len, making
        // this converge in at most a couple of steps.
        std::uint64_t a = align;
        std::uint64_t alen = len;
        for (int round = 0; round < 4; ++round) {
            alen = (len + a - 1) & ~(a - 1);
            const std::uint64_t need = ccRequiredAlignment(alen);
            if (need <= a)
                break;
            a = need;
        }
        if (alen == 0)
            continue; // length overflowed past 2^64; not encodable
        const Addr base = fuzz::randomSized(rng) & ~(a - 1);
        const u128 top = static_cast<u128>(base) + alen;
        if (top > (static_cast<u128>(1) << 64))
            continue;

        const CcEncodeResult enc = ccEncode(base, top);
        ASSERT_TRUE(enc.exact)
            << "iteration " << i << ": aligned region base=0x" << std::hex
            << base << " len=0x" << alen << " align=0x" << a
            << " did not encode exactly";
    }
}

TEST(CcRoundtripFuzz, RepresentabilityMatchesDecode)
{
    Rng rng(fuzz::seed() ^ 0x5eb5eb);
    const std::uint64_t iters = fuzz::iterations();

    for (std::uint64_t i = 0; i < iters; ++i) {
        Addr base;
        u128 top;
        randomBounds(rng, base, top);
        const CcEncodeResult enc = ccEncode(base, top);

        // Probe with cursors near the region and fully random ones.
        Addr probe;
        switch (rng.nextBounded(4)) {
          case 0:
            probe = base + fuzz::randomSized(rng);
            break;
          case 1:
            probe = base - fuzz::randomSized(rng);
            break;
          case 2:
            probe = static_cast<Addr>(top) + fuzz::randomSized(rng);
            break;
          default:
            probe = rng.next();
            break;
        }

        const bool rep = ccIsRepresentable(enc.pesbt, base, probe);
        const bool same =
            ccDecode(enc.pesbt, base) == ccDecode(enc.pesbt, probe);
        ASSERT_EQ(rep, same)
            << "iteration " << i << ": ccIsRepresentable=" << rep
            << " but decode equality=" << same << " for cursor 0x"
            << std::hex << probe;
    }
}

} // namespace
} // namespace capcheck::cheri
