#include <gtest/gtest.h>

#include <tuple>

#include "base/random.hh"
#include "cheri/compressed.hh"

namespace capcheck::cheri
{
namespace
{

const u128 kTwo64 = u128(1) << 64;

TEST(CcCodec, FullAddressSpaceIsRepresentable)
{
    const CcEncodeResult enc = ccEncode(0, kTwo64);
    EXPECT_TRUE(enc.exact);
    const CcBounds bounds = ccDecode(enc.pesbt, 0);
    EXPECT_EQ(bounds.base, 0u);
    EXPECT_EQ(bounds.top, kTwo64);
}

TEST(CcCodec, EmptyRegionIsRepresentable)
{
    const CcEncodeResult enc = ccEncode(0x1000, 0x1000);
    EXPECT_TRUE(enc.exact);
    const CcBounds bounds = ccDecode(enc.pesbt, 0x1000);
    EXPECT_EQ(bounds.base, 0x1000u);
    EXPECT_EQ(bounds.top, u128(0x1000));
}

TEST(CcCodec, SmallRegionsAreByteExact)
{
    // Every length below 4096 must encode exactly at any base.
    Rng rng(123);
    for (int i = 0; i < 2000; ++i) {
        const Addr base = rng.next() & 0x00ffffffffffffffull;
        const std::uint64_t len = rng.nextBounded(4096);
        const CcEncodeResult enc = ccEncode(base, u128(base) + len);
        EXPECT_TRUE(enc.exact)
            << "base=" << base << " len=" << len;
        const CcBounds bounds = ccDecode(enc.pesbt, base);
        EXPECT_EQ(bounds.base, base);
        EXPECT_EQ(bounds.top, u128(base) + len);
    }
}

TEST(CcCodec, DecodedBoundsAlwaysCoverRequest)
{
    Rng rng(456);
    for (int i = 0; i < 5000; ++i) {
        const unsigned len_bits = 1 + rng.nextBounded(63);
        const std::uint64_t len =
            rng.next() & ((len_bits >= 64) ? ~0ull
                                           : ((1ull << len_bits) - 1));
        const Addr base = rng.next();
        u128 top = u128(base) + len;
        if (top > kTwo64)
            top = kTwo64;

        const CcEncodeResult enc = ccEncode(base, top);
        const CcBounds bounds = ccDecode(enc.pesbt, base);
        EXPECT_LE(bounds.base, base);
        EXPECT_GE(bounds.top, top);
        if (enc.exact) {
            EXPECT_EQ(bounds.base, base);
            EXPECT_EQ(bounds.top, top);
        }
    }
}

TEST(CcCodec, RoundingIsBoundedByRequiredAlignment)
{
    Rng rng(789);
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t len = rng.next() >> rng.nextBounded(50);
        const Addr base = rng.next() >> 2;
        u128 top = u128(base) + len;
        if (top > kTwo64)
            top = kTwo64;

        const CcEncodeResult enc = ccEncode(base, top);
        const CcBounds bounds = ccDecode(enc.pesbt, base);
        // CC loses at most ~3 bits of mantissa precision vs the ideal;
        // allow up to 8 alignment granules of slack on each side.
        const u128 slack = u128(ccRequiredAlignment(len)) * 8;
        EXPECT_GE(u128(base) - bounds.base + slack, u128(0));
        EXPECT_LE(u128(base) - bounds.base, slack);
        EXPECT_LE(bounds.top - top, slack);
    }
}

TEST(CcCodec, AlignedPowerOfTwoRegionsAreExact)
{
    for (unsigned bits = 12; bits <= 40; ++bits) {
        const std::uint64_t len = 1ull << bits;
        const Addr base = len * 3; // aligned to len
        const CcEncodeResult enc = ccEncode(base, u128(base) + len);
        EXPECT_TRUE(enc.exact) << "len=2^" << bits;
    }
}

TEST(CcCodec, DecodeIsAddressInvariantInsideBounds)
{
    // All addresses within the bounds must decode to identical bounds.
    Rng rng(1011);
    for (int i = 0; i < 1000; ++i) {
        const Addr base = rng.next() & 0x0000ffffffffff00ull;
        const std::uint64_t len = 1 + (rng.next() & 0xfffffull);
        const CcEncodeResult enc = ccEncode(base, u128(base) + len);
        const CcBounds ref = ccDecode(enc.pesbt, base);

        for (int j = 0; j < 8; ++j) {
            const Addr inside =
                static_cast<Addr>(ref.base) +
                rng.nextBounded(static_cast<std::uint64_t>(ref.top -
                                                           ref.base));
            EXPECT_EQ(ccDecode(enc.pesbt, inside), ref);
        }
    }
}

TEST(CcCodec, RepresentabilityNearBounds)
{
    const Addr base = 0x10000;
    const std::uint64_t len = 0x800;
    const CcEncodeResult enc = ccEncode(base, u128(base) + len);

    EXPECT_TRUE(ccIsRepresentable(enc.pesbt, base, base + len - 1));
    EXPECT_TRUE(ccIsRepresentable(enc.pesbt, base, base + len));
}

TEST(CcCodec, FarOutOfBoundsAddressChangesDecodedBounds)
{
    // A huge object: moving the cursor a full region away must not decode
    // to the same bounds (this is what makes far pointers unrepresentable).
    const Addr base = 1ull << 32;
    const std::uint64_t len = 1ull << 30;
    const CcEncodeResult enc = ccEncode(base, u128(base) + len);
    const CcBounds ref = ccDecode(enc.pesbt, base);

    const Addr far = base + (1ull << 50);
    EXPECT_NE(ccDecode(enc.pesbt, far), ref);
}

TEST(CcCodec, MetadataFieldsDoNotOverlap)
{
    Pesbt pesbt;
    pesbt.setPerms(0xffff);
    pesbt.setOtype(0x3ffff);
    pesbt.setBoundsFields(true, 0xfff, 0x3fff);
    EXPECT_EQ(pesbt.perms(), 0xffffu);
    EXPECT_EQ(pesbt.otype(), 0x3ffffu);
    EXPECT_TRUE(pesbt.internalExp());
    EXPECT_EQ(pesbt.tField(), 0xfffu);
    EXPECT_EQ(pesbt.bField(), 0x3fffu);

    pesbt.setPerms(0);
    EXPECT_EQ(pesbt.otype(), 0x3ffffu);
    EXPECT_EQ(pesbt.tField(), 0xfffu);
}

TEST(CcCodec, RequiredAlignmentMatchesSpecShape)
{
    EXPECT_EQ(ccRequiredAlignment(0), 1u);
    EXPECT_EQ(ccRequiredAlignment(4095), 1u);
    EXPECT_EQ(ccRequiredAlignment(4096), 8u);
    // The IE length mantissa is 13 usable bits (the implied MSB sits at
    // bit 12), so an exact power of two at the window's upper edge
    // needs the next exponent: 2^13 is NOT representable at E=0 (max
    // there is 2^13 - 8).
    EXPECT_EQ(ccRequiredAlignment((1ull << 13) - 8), 8u);
    EXPECT_EQ(ccRequiredAlignment(1ull << 13), 16u);
    EXPECT_EQ(ccRequiredAlignment(1ull << 14), 32u);
    EXPECT_EQ(ccRequiredAlignment((1ull << 14) + 1), 32u);
    // Alignment grows linearly with length (constant relative precision).
    EXPECT_EQ(ccRequiredAlignment(1ull << 30), 1ull << 21);
    EXPECT_EQ(ccRequiredAlignment((1ull << 30) - (1ull << 21)), 1ull << 20);
}

TEST(CcCodec, RequiredAlignmentGuaranteesExactEncoding)
{
    // Property: a region whose base and length are multiples of
    // ccRequiredAlignment(length) always encodes exactly.
    Rng rng(555);
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t len = rng.next() >> rng.nextBounded(52);
        const std::uint64_t align = ccRequiredAlignment(len);
        len = len & ~(align - 1);
        if (len == 0)
            continue;
        const Addr base =
            (rng.next() & 0x00ffffffffffffffull) & ~(align - 1);
        if (u128(base) + len > kTwo64)
            continue;
        const CcEncodeResult enc = ccEncode(base, u128(base) + len);
        EXPECT_TRUE(enc.exact)
            << "base=0x" << std::hex << base << " len=0x" << len;
    }
}

TEST(CcCodec, ExhaustiveSmallLengthSweep)
{
    // Every length 0..4200 must round-trip; below 4096 exactly, above
    // with outward rounding only.
    for (const Addr base :
         {Addr{0}, Addr{0x1230}, Addr{0x7ffff0}, Addr{1} << 40}) {
        for (std::uint64_t len = 0; len <= 4200; ++len) {
            const CcEncodeResult enc = ccEncode(base, u128(base) + len);
            const CcBounds bounds = ccDecode(enc.pesbt, base);
            ASSERT_LE(bounds.base, base) << base << "+" << len;
            ASSERT_GE(bounds.top, u128(base) + len);
            if (len < 4096) {
                ASSERT_TRUE(enc.exact) << base << "+" << len;
                ASSERT_EQ(bounds.base, base);
                ASSERT_EQ(bounds.top, u128(base) + len);
            }
        }
    }
}

TEST(CcCodec, CompressedFormIsStableUnderRecompression)
{
    // decode -> encode -> decode must be a fixed point (no drift).
    Rng rng(271828);
    for (int i = 0; i < 3000; ++i) {
        const Addr base = rng.next() & 0x00fffffffffffff0ull;
        const std::uint64_t len = 1 + (rng.next() & 0xffffffffull);
        u128 top = u128(base) + len;
        if (top > kTwo64)
            top = kTwo64;

        const CcEncodeResult first = ccEncode(base, top);
        const CcBounds bounds = ccDecode(first.pesbt, base);
        const CcEncodeResult second =
            ccEncode(bounds.base, bounds.top);
        EXPECT_TRUE(second.exact);
        EXPECT_EQ(ccDecode(second.pesbt, bounds.base), bounds);
    }
}

/** Parameterized sweep: (length bits, base alignment bits). */
class CcSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CcSweep, EncodeDecodeCoversAndNestsTightly)
{
    const auto [len_bits, align_bits] = GetParam();
    Rng rng(1000 + len_bits * 64 + align_bits);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t len =
            (1ull << len_bits) | (rng.next() & ((1ull << len_bits) - 1));
        const Addr base = (rng.next() << align_bits) &
                          0x00ffffffffffffffull;
        u128 top = u128(base) + len;
        if (top > kTwo64)
            top = kTwo64;

        const CcEncodeResult enc = ccEncode(base, top);
        const CcBounds bounds = ccDecode(enc.pesbt, base);
        ASSERT_LE(bounds.base, base);
        ASSERT_GE(bounds.top, top);
        // Rounded region must stay within 2x of the request (CC keeps
        // ~11 bits of mantissa precision, far better than 2x).
        ASSERT_LE(bounds.top - bounds.base, 2 * (top - u128(base)));
    }
}

INSTANTIATE_TEST_SUITE_P(
    LengthAlignmentGrid, CcSweep,
    ::testing::Combine(::testing::Values(4u, 10u, 12u, 13u, 16u, 20u, 24u,
                                         32u, 40u, 48u),
                       ::testing::Values(0u, 3u, 12u)),
    [](const auto &info) {
        return "len" + std::to_string(std::get<0>(info.param)) + "_align" +
               std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace capcheck::cheri
