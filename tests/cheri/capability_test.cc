#include <gtest/gtest.h>

#include "base/random.hh"
#include "cheri/capability.hh"

namespace capcheck::cheri
{
namespace
{

const u128 kTwo64 = u128(1) << 64;

TEST(Capability, RootCoversEverything)
{
    const Capability root = Capability::root();
    EXPECT_TRUE(root.tag());
    EXPECT_FALSE(root.sealed());
    EXPECT_EQ(root.base(), 0u);
    EXPECT_EQ(root.top(), kTwo64);
    EXPECT_TRUE(root.hasPerms(permAll));
    EXPECT_TRUE(root.inBounds(0, 1));
    EXPECT_TRUE(root.inBounds(~0ull, 1));
}

TEST(Capability, NullIsNull)
{
    const Capability null;
    EXPECT_TRUE(null.isNull());
    EXPECT_FALSE(null.tag());
    EXPECT_EQ(null.checkAccess(AccessKind::load, 0, 1),
              CapFault::tagViolation);
}

TEST(Capability, SetBoundsNarrows)
{
    const Capability root = Capability::root();
    const Capability buf = root.setBounds(0x1000, 0x100);
    EXPECT_TRUE(buf.tag());
    EXPECT_EQ(buf.base(), 0x1000u);
    EXPECT_EQ(buf.top(), u128(0x1100));
    EXPECT_EQ(buf.addr(), 0x1000u);
}

TEST(Capability, SetBoundsBeyondParentClearsTag)
{
    const Capability root = Capability::root();
    const Capability buf = root.setBounds(0x1000, 0x100);
    // Growing the region is a monotonicity violation.
    EXPECT_FALSE(buf.setBounds(0x1000, 0x200).tag());
    EXPECT_FALSE(buf.setBounds(0xfff, 0x10).tag());
    // Shrinking is fine.
    EXPECT_TRUE(buf.setBounds(0x1010, 0x10).tag());
}

TEST(Capability, SetBoundsOnUntaggedStaysUntagged)
{
    const Capability dead = Capability::root().cleared();
    EXPECT_FALSE(dead.setBounds(0, 16).tag());
}

TEST(Capability, ExactSetBoundsDetagsOnRounding)
{
    const Capability root = Capability::root();
    // A large unaligned region needs rounding -> exact request fails.
    const Capability inexact = root.setBounds(0x1001, (1ull << 20) + 3,
                                              /*exact=*/true);
    EXPECT_FALSE(inexact.tag());
    // The same request without exactness succeeds with rounded bounds.
    const Capability rounded = root.setBounds(0x1001, (1ull << 20) + 3);
    EXPECT_TRUE(rounded.tag());
    EXPECT_LE(rounded.base(), 0x1001u);
    EXPECT_GE(rounded.top(), u128(0x1001) + (1ull << 20) + 3);
}

TEST(Capability, AndPermsOnlyRemoves)
{
    const Capability root = Capability::root();
    const Capability ro = root.andPerms(permDataRO);
    EXPECT_TRUE(ro.tag());
    EXPECT_TRUE(ro.hasPerms(permLoad));
    EXPECT_FALSE(ro.hasPerms(permStore));

    // "Adding" permissions via andPerms is impossible by construction.
    const Capability attempt = ro.andPerms(permAll);
    EXPECT_EQ(attempt.perms(), ro.perms());
}

TEST(Capability, CheckAccessPermissionMatrix)
{
    const Capability root = Capability::root();
    const Capability buf =
        root.setBounds(0x2000, 0x100).andPerms(permDataRW);

    EXPECT_EQ(buf.checkAccess(AccessKind::load, 0x2000, 4),
              CapFault::none);
    EXPECT_EQ(buf.checkAccess(AccessKind::store, 0x20f0, 16),
              CapFault::none);
    EXPECT_EQ(buf.checkAccess(AccessKind::execute, 0x2000, 4),
              CapFault::permitExecuteViolation);
    EXPECT_EQ(buf.checkAccess(AccessKind::loadCap, 0x2000, 16),
              CapFault::permitLoadCapViolation);
    EXPECT_EQ(buf.checkAccess(AccessKind::storeCap, 0x2000, 16),
              CapFault::permitStoreCapViolation);

    const Capability ro = buf.andPerms(permDataRO);
    EXPECT_EQ(ro.checkAccess(AccessKind::store, 0x2000, 4),
              CapFault::permitStoreViolation);
}

TEST(Capability, CheckAccessBounds)
{
    const Capability buf =
        Capability::root().setBounds(0x2000, 0x100).andPerms(permDataRW);

    EXPECT_EQ(buf.checkAccess(AccessKind::load, 0x1fff, 4),
              CapFault::boundsViolation);
    EXPECT_EQ(buf.checkAccess(AccessKind::load, 0x20fd, 4),
              CapFault::boundsViolation);
    EXPECT_EQ(buf.checkAccess(AccessKind::load, 0x20fc, 4),
              CapFault::none);
    // Zero-size access at top is in bounds; one past is not.
    EXPECT_EQ(buf.checkAccess(AccessKind::load, 0x2100, 0),
              CapFault::none);
    EXPECT_EQ(buf.checkAccess(AccessKind::load, 0x2100, 1),
              CapFault::boundsViolation);
}

TEST(Capability, SetAddrInsideBoundsKeepsTag)
{
    const Capability buf = Capability::root().setBounds(0x3000, 0x1000);
    const Capability moved = buf.setAddr(0x3800);
    EXPECT_TRUE(moved.tag());
    EXPECT_EQ(moved.addr(), 0x3800u);
    EXPECT_EQ(moved.base(), buf.base());
    EXPECT_EQ(moved.top(), buf.top());
}

TEST(Capability, SetAddrFarOutsideDetags)
{
    const Capability buf =
        Capability::root().setBounds(1ull << 32, 1ull << 30);
    const Capability far = buf.setAddr((1ull << 32) + (1ull << 50));
    EXPECT_FALSE(far.tag());
}

TEST(Capability, IncAddrWalksABuffer)
{
    Capability ptr = Capability::root()
                         .setBounds(0x4000, 64)
                         .andPerms(permDataRW);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(ptr.checkAccess(AccessKind::load, ptr.addr(), 4),
                  CapFault::none);
        ptr = ptr.incAddr(4);
    }
    // Cursor is now at the top; dereferencing there is out of bounds.
    EXPECT_EQ(ptr.checkAccess(AccessKind::load, ptr.addr(), 4),
              CapFault::boundsViolation);
}

TEST(Capability, SealBlocksUseUntilUnsealed)
{
    const Capability root = Capability::root();
    const Capability buf = root.setBounds(0x5000, 0x100);
    const Capability sealer = root.setAddr(42);

    const Capability sealed = buf.seal(sealer, 42);
    EXPECT_TRUE(sealed.tag());
    EXPECT_TRUE(sealed.sealed());
    EXPECT_EQ(sealed.checkAccess(AccessKind::load, 0x5000, 4),
              CapFault::sealViolation);
    // Sealed capabilities cannot be modified.
    EXPECT_FALSE(sealed.setBounds(0x5000, 0x10).tag());
    EXPECT_FALSE(sealed.setAddr(0x5004).tag());

    const Capability unsealed = sealed.unseal(sealer);
    EXPECT_TRUE(unsealed.tag());
    EXPECT_FALSE(unsealed.sealed());
    EXPECT_EQ(unsealed.checkAccess(AccessKind::load, 0x5000, 4),
              CapFault::none);
}

TEST(Capability, UnsealWithWrongOtypeFails)
{
    const Capability root = Capability::root();
    const Capability sealed =
        root.setBounds(0x5000, 0x100).seal(root.setAddr(42), 42);
    const Capability wrong = sealed.unseal(root.setAddr(43));
    EXPECT_FALSE(wrong.tag());
}

TEST(Capability, SealWithoutPermissionFails)
{
    const Capability root = Capability::root();
    const Capability no_seal = root.andPerms(permAll & ~permSeal);
    const Capability sealed =
        root.setBounds(0x5000, 0x100).seal(no_seal.setAddr(7), 7);
    EXPECT_FALSE(sealed.tag());
}

TEST(Capability, CompressDecompressRoundTrip)
{
    Rng rng(2024);
    for (int i = 0; i < 2000; ++i) {
        const Addr base = rng.next() & 0x00ffffffffffff00ull;
        const std::uint64_t len = 1 + rng.nextBounded(1ull << 24);
        Capability cap = Capability::root()
                             .setBounds(base, len)
                             .andPerms(permDataRW);
        ASSERT_TRUE(cap.tag());

        std::uint64_t pesbt;
        std::uint64_t cursor;
        cap.compress(pesbt, cursor);
        const Capability back =
            Capability::fromCompressed(true, pesbt, cursor);

        EXPECT_EQ(back.base(), cap.base());
        EXPECT_EQ(back.top(), cap.top());
        EXPECT_EQ(back.perms(), cap.perms());
        EXPECT_EQ(back.addr(), cap.addr());
        EXPECT_EQ(back.otype(), cap.otype());
    }
}

TEST(Capability, DerivationChainIsMonotonic)
{
    // Property: along any random derivation chain, every capability is a
    // subset of every ancestor (rights never increase).
    Rng rng(31337);
    for (int trial = 0; trial < 200; ++trial) {
        Capability cap = Capability::root();
        Capability parent = cap;
        for (int step = 0; step < 10 && cap.tag(); ++step) {
            parent = cap;
            if (rng.nextBool(0.5)) {
                const u128 len = cap.length();
                if (len == 0)
                    break;
                const std::uint64_t max_len =
                    len > kTwo64 - 1 ? ~0ull
                                     : static_cast<std::uint64_t>(len);
                const std::uint64_t new_len =
                    1 + rng.nextBounded(max_len);
                const Addr new_base =
                    cap.base() +
                    rng.nextBounded(static_cast<std::uint64_t>(
                        cap.length() - new_len + 1));
                cap = cap.setBounds(new_base, new_len);
            } else {
                cap = cap.andPerms(static_cast<std::uint32_t>(
                    rng.next() & permAll));
            }
            if (cap.tag()) {
                EXPECT_TRUE(cap.subsetOf(parent));
            }
        }
    }
}

TEST(Capability, SubsetOfHonorsPermsAndBounds)
{
    const Capability root = Capability::root();
    const Capability a = root.setBounds(0x1000, 0x1000);
    const Capability b = a.setBounds(0x1400, 0x100);
    EXPECT_TRUE(b.subsetOf(a));
    EXPECT_FALSE(a.subsetOf(b));
    EXPECT_TRUE(a.subsetOf(root));

    const Capability fewer = a.andPerms(permDataRO);
    EXPECT_TRUE(fewer.subsetOf(a));
    EXPECT_FALSE(a.subsetOf(fewer));
}

TEST(Capability, ClearedDropsOnlyTag)
{
    const Capability cap = Capability::root().setBounds(0x1000, 64);
    const Capability dead = cap.cleared();
    EXPECT_FALSE(dead.tag());
    EXPECT_EQ(dead.base(), cap.base());
    EXPECT_EQ(dead.top(), cap.top());
    EXPECT_EQ(dead.perms(), cap.perms());
}

TEST(Capability, FaultNamesAreStable)
{
    EXPECT_STREQ(capFaultName(CapFault::none), "none");
    EXPECT_STREQ(capFaultName(CapFault::boundsViolation),
                 "bounds violation");
    EXPECT_STREQ(capFaultName(CapFault::tagViolation), "tag violation");
}

} // namespace
} // namespace capcheck::cheri
