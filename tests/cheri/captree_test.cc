#include <gtest/gtest.h>

#include "base/logging.hh"
#include "cheri/captree.hh"

namespace capcheck::cheri
{
namespace
{

/** Build the example tree from Fig. 4 of the paper. */
class CapTreeFig4 : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const Capability root = tree.capOf(tree.rootNode());
        cpu_task = tree.derive(tree.rootNode(), CapNodeKind::cpuTask,
                               root.setBounds(0x10000, 0x10000),
                               "cpu-task-1");
        accel_task1 = tree.derive(
            cpu_task, CapNodeKind::accelTask,
            tree.capOf(cpu_task).setBounds(0x10000, 0x4000),
            "accel-task-1");
        buffer1 = tree.derive(
            accel_task1, CapNodeKind::buffer,
            tree.capOf(accel_task1).setBounds(0x10000, 0x1000),
            "buffer-1");
        buffer2 = tree.derive(
            accel_task1, CapNodeKind::buffer,
            tree.capOf(accel_task1).setBounds(0x11000, 0x1000),
            "buffer-2");
    }

    CapTree tree;
    CapNodeId cpu_task = invalidCapNode;
    CapNodeId accel_task1 = invalidCapNode;
    CapNodeId buffer1 = invalidCapNode;
    CapNodeId buffer2 = invalidCapNode;
};

TEST_F(CapTreeFig4, StructureMatches)
{
    EXPECT_EQ(tree.size(), 5u);
    EXPECT_EQ(tree.parentOf(buffer1), accel_task1);
    EXPECT_EQ(tree.parentOf(accel_task1), cpu_task);
    EXPECT_EQ(tree.parentOf(cpu_task), tree.rootNode());
    EXPECT_EQ(tree.childrenOf(accel_task1).size(), 2u);
    EXPECT_EQ(tree.kindOf(buffer2), CapNodeKind::buffer);
    EXPECT_EQ(tree.labelOf(buffer2), "buffer-2");
}

TEST_F(CapTreeFig4, AuditPassesForSoundTree)
{
    EXPECT_TRUE(tree.audit().empty());
}

TEST_F(CapTreeFig4, AuditFlagsWidenedCapability)
{
    // A child claiming more memory than its parent is a violation; the
    // only way to construct one is outside the CHERI derivation rules,
    // which is exactly what the audit is for.
    const Capability forged =
        Capability::root().setBounds(0x0, 0x100000);
    const CapNodeId rogue = tree.derive(accel_task1, CapNodeKind::buffer,
                                        forged, "forged");
    const auto bad = tree.audit();
    ASSERT_EQ(bad.size(), 1u);
    EXPECT_EQ(bad[0], rogue);
}

TEST_F(CapTreeFig4, AuditFlagsUntaggedCapability)
{
    const Capability dead =
        tree.capOf(accel_task1).setBounds(0x10000, 0x10).cleared();
    const CapNodeId rogue = tree.derive(accel_task1, CapNodeKind::buffer,
                                        dead, "untagged");
    const auto bad = tree.audit();
    ASSERT_EQ(bad.size(), 1u);
    EXPECT_EQ(bad[0], rogue);
}

TEST_F(CapTreeFig4, RemoveLeafThenParent)
{
    tree.remove(buffer1);
    tree.remove(buffer2);
    tree.remove(accel_task1);
    EXPECT_EQ(tree.size(), 2u);
    EXPECT_TRUE(tree.audit().empty());
}

TEST_F(CapTreeFig4, RemoveWithChildrenIsRejected)
{
    EXPECT_THROW(tree.remove(accel_task1), SimError);
}

TEST_F(CapTreeFig4, RemoveRootIsRejected)
{
    EXPECT_THROW(tree.remove(tree.rootNode()), SimError);
}

TEST_F(CapTreeFig4, AccelTaskMustDeriveFromCpuTask)
{
    // Pointers (and tasks) must be created by CPU tasks, never by
    // accelerator tasks or the raw root.
    EXPECT_THROW(tree.derive(tree.rootNode(), CapNodeKind::accelTask,
                             Capability::root(), "bad"),
                 SimError);
    EXPECT_THROW(tree.derive(accel_task1, CapNodeKind::accelTask,
                             tree.capOf(accel_task1), "bad"),
                 SimError);
}

TEST_F(CapTreeFig4, BufferMustDeriveFromTask)
{
    EXPECT_THROW(tree.derive(tree.rootNode(), CapNodeKind::buffer,
                             Capability::root(), "bad"),
                 SimError);
    EXPECT_THROW(tree.derive(buffer1, CapNodeKind::buffer,
                             tree.capOf(buffer1), "bad"),
                 SimError);
}

TEST_F(CapTreeFig4, SecondRootIsRejected)
{
    EXPECT_THROW(tree.derive(tree.rootNode(), CapNodeKind::root,
                             Capability::root(), "bad"),
                 SimError);
}

TEST_F(CapTreeFig4, ToStringRendersHierarchy)
{
    const std::string text = tree.toString();
    EXPECT_NE(text.find("os-root"), std::string::npos);
    EXPECT_NE(text.find("accel-task-1"), std::string::npos);
    EXPECT_NE(text.find("buffer-2"), std::string::npos);
    // Children are indented deeper than parents.
    EXPECT_LT(text.find("cpu-task-1"), text.find("buffer-1"));
}

TEST(CapTree, DeadNodeAccessPanics)
{
    CapTree tree;
    const CapNodeId task =
        tree.derive(tree.rootNode(), CapNodeKind::cpuTask,
                    Capability::root().setBounds(0, 0x1000), "t");
    tree.remove(task);
    EXPECT_THROW(tree.capOf(task), SimError);
    EXPECT_THROW((void)tree.childrenOf(task), SimError);
}

} // namespace
} // namespace capcheck::cheri
