#include <gtest/gtest.h>

#include <vector>

#include "capchecker/capchecker.hh"
#include "mem/mem_ctrl.hh"
#include "protect/check_stage.hh"
#include "protect/no_protection.hh"

namespace capcheck::protect
{
namespace
{

/** Terminal consumer recording accept cycles. */
class Sink : public SimObject, public TimingConsumer
{
  public:
    Sink(EventQueue &eq, stats::StatGroup *root)
        : SimObject(eq, "sink", root),
          port(*this, "cpu_side", static_cast<TimingConsumer &>(*this))
    {
    }

    bool
    tryAccept(const MemRequest &req) override
    {
        if (reject_all)
            return false;
        accepted.push_back({req.id, eq.curCycle()});
        return true;
    }

    ResponsePort port;
    bool reject_all = false;
    std::vector<std::pair<std::uint64_t, Cycles>> accepted;
};

class Upstream : public SimObject, public ResponseHandler
{
  public:
    Upstream(EventQueue &eq, stats::StatGroup *root)
        : SimObject(eq, "upstream", root),
          port(*this, "mem_side",
               static_cast<ResponseHandler &>(*this))
    {
    }

    void
    handleResponse(const MemResponse &resp) override
    {
        responses.push_back(resp);
    }

    RequestPort port;
    std::vector<MemResponse> responses;
};

MemRequest
makeReq(std::uint64_t id, Addr addr = 0x1000, TaskId task = 0,
        ObjectId obj = 0)
{
    MemRequest req;
    req.cmd = MemCmd::read;
    req.addr = addr;
    req.size = 8;
    req.task = task;
    req.object = obj;
    req.srcPort = 0;
    req.id = id;
    return req;
}

TEST(CheckStage, PassThroughWithZeroLatency)
{
    EventQueue eq;
    stats::StatGroup root("t");
    NoProtection none;
    Sink sink(eq, &root);
    CheckStage stage(eq, &root, none);
    stage.memSide().bind(sink.port);

    LambdaEvent ev([&] { EXPECT_TRUE(stage.tryAccept(makeReq(1))); });
    eq.schedule(&ev, 5);
    eq.run();

    ASSERT_EQ(sink.accepted.size(), 1u);
    EXPECT_EQ(sink.accepted[0].second, 5u); // same cycle: no latency
}

TEST(CheckStage, AddsConfiguredLatency)
{
    EventQueue eq;
    stats::StatGroup root("t");
    capchecker::CapChecker::Params params;
    params.checkCycles = 3;
    capchecker::CapChecker checker(params);
    checker.installCapability(0, 0,
                              cheri::Capability::root()
                                  .setBounds(0x1000, 0x100)
                                  .andPerms(cheri::permDataRW));
    Sink sink(eq, &root);
    CheckStage stage(eq, &root, checker);
    stage.memSide().bind(sink.port);

    LambdaEvent ev([&] { EXPECT_TRUE(stage.tryAccept(makeReq(1))); });
    eq.schedule(&ev, 10);
    eq.run();

    ASSERT_EQ(sink.accepted.size(), 1u);
    EXPECT_EQ(sink.accepted[0].second, 13u);
}

TEST(CheckStage, OneAcceptPerCycle)
{
    EventQueue eq;
    stats::StatGroup root("t");
    NoProtection none;
    Sink sink(eq, &root);
    CheckStage stage(eq, &root, none);
    stage.memSide().bind(sink.port);

    LambdaEvent ev([&] {
        EXPECT_TRUE(stage.tryAccept(makeReq(1)));
        EXPECT_FALSE(stage.tryAccept(makeReq(2)));
    });
    eq.schedule(&ev, 1);
    eq.run();
}

TEST(CheckStage, DeniedRequestGetsErrorResponse)
{
    EventQueue eq;
    stats::StatGroup root("t");
    capchecker::CapChecker checker; // nothing installed: all denied
    Sink sink(eq, &root);
    CheckStage stage(eq, &root, checker);
    stage.memSide().bind(sink.port);
    Upstream upstream(eq, &root);
    stage.cpuSide().bind(upstream.port);

    LambdaEvent ev([&] { EXPECT_TRUE(stage.tryAccept(makeReq(7))); });
    eq.schedule(&ev, 1);
    eq.run();

    EXPECT_TRUE(sink.accepted.empty());
    ASSERT_EQ(upstream.responses.size(), 1u);
    EXPECT_EQ(upstream.responses[0].id, 7u);
    EXPECT_FALSE(upstream.responses[0].ok);
    EXPECT_EQ(stage.denials(), 1u);
}

TEST(CheckStage, ZeroLatencyPropagatesBackpressure)
{
    EventQueue eq;
    stats::StatGroup root("t");
    NoProtection none;
    Sink sink(eq, &root);
    sink.reject_all = true;
    CheckStage stage(eq, &root, none);
    stage.memSide().bind(sink.port);

    // With a transparent stage the caller sees the stall directly and
    // retries (as the interconnect does).
    LambdaEvent ev([&] { EXPECT_FALSE(stage.tryAccept(makeReq(1))); });
    eq.schedule(&ev, 1);
    eq.run();
    EXPECT_TRUE(sink.accepted.empty());
}

TEST(CheckStage, PipelinedStageRetriesWhileDownstreamStalls)
{
    EventQueue eq;
    stats::StatGroup root("t");
    capchecker::CapChecker checker; // latency 1
    checker.installCapability(0, 0,
                              cheri::Capability::root()
                                  .setBounds(0x1000, 0x100)
                                  .andPerms(cheri::permDataRW));
    Sink sink(eq, &root);
    sink.reject_all = true;
    CheckStage stage(eq, &root, checker);
    stage.memSide().bind(sink.port);

    LambdaEvent ev([&] { EXPECT_TRUE(stage.tryAccept(makeReq(1))); });
    eq.schedule(&ev, 1);
    // The unblock event runs before the stage's tick that cycle, so
    // the head can be delivered on cycle 6.
    LambdaEvent unblock([&] { sink.reject_all = false; });
    eq.schedule(&unblock, 6);
    eq.run();

    ASSERT_EQ(sink.accepted.size(), 1u);
    EXPECT_GE(sink.accepted[0].second, 6u);
}

TEST(CheckStage, BackpressureWhenPipeFills)
{
    EventQueue eq;
    stats::StatGroup root("t");
    NoProtection none;
    Sink sink(eq, &root);
    sink.reject_all = true;
    CheckStage stage(eq, &root, none);
    stage.memSide().bind(sink.port);

    // With downstream stuck, only a bounded number of requests fit.
    std::vector<std::unique_ptr<LambdaEvent>> events;
    unsigned accepted = 0;
    for (Cycles c = 1; c <= 12; ++c) {
        events.push_back(std::make_unique<LambdaEvent>([&stage,
                                                        &accepted, c] {
            accepted += stage.tryAccept(makeReq(c));
        }));
        eq.schedule(events.back().get(), c);
    }
    eq.run(20);
    EXPECT_LT(accepted, 12u);
}

TEST(CheckStage, PipelinesBackToBackRequests)
{
    EventQueue eq;
    stats::StatGroup root("t");
    capchecker::CapChecker checker;
    checker.installCapability(0, 0,
                              cheri::Capability::root()
                                  .setBounds(0x1000, 0x1000)
                                  .andPerms(cheri::permDataRW));
    Sink sink(eq, &root);
    CheckStage stage(eq, &root, checker);
    stage.memSide().bind(sink.port);

    std::vector<std::unique_ptr<LambdaEvent>> events;
    for (Cycles c = 1; c <= 5; ++c) {
        events.push_back(std::make_unique<LambdaEvent>(
            [&stage, c] { EXPECT_TRUE(stage.tryAccept(makeReq(c))); },
            Event::arbitratePrio));
        eq.schedule(events.back().get(), c);
    }
    eq.run();

    // Throughput 1/cycle: five requests, five consecutive deliveries.
    ASSERT_EQ(sink.accepted.size(), 5u);
    for (unsigned i = 0; i < 5; ++i) {
        EXPECT_EQ(sink.accepted[i].first, i + 1);
        EXPECT_EQ(sink.accepted[i].second, i + 2); // +1 cycle check
    }
}

} // namespace
} // namespace capcheck::protect
