#include <gtest/gtest.h>

#include "base/logging.hh"
#include "protect/checker_bank.hh"

namespace capcheck::protect
{
namespace
{

using capchecker::CapChecker;
using cheri::Capability;
using cheri::permDataRW;

MemRequest
makeReq(PortId port, TaskId task, ObjectId obj, Addr addr)
{
    MemRequest req;
    req.cmd = MemCmd::read;
    req.addr = addr;
    req.size = 8;
    req.srcPort = port;
    req.task = task;
    req.object = obj;
    return req;
}

TEST(CheckerBank, RoutesByMasterPort)
{
    CheckerBank bank(2, CapChecker::Params{});
    bank.at(0).installCapability(
        0, 0,
        Capability::root().setBounds(0x1000, 0x100).andPerms(
            permDataRW));
    bank.at(1).installCapability(
        1, 0,
        Capability::root().setBounds(0x2000, 0x100).andPerms(
            permDataRW));

    EXPECT_TRUE(bank.check(makeReq(0, 0, 0, 0x1000)).allowed);
    EXPECT_TRUE(bank.check(makeReq(1, 1, 0, 0x2000)).allowed);
    // Task 0's capability lives only in checker 0: via port 1 the
    // lookup misses.
    EXPECT_FALSE(bank.check(makeReq(1, 0, 0, 0x1000)).allowed);
}

TEST(CheckerBank, AggregatesEntriesAndExceptions)
{
    CheckerBank bank(3, CapChecker::Params{});
    bank.at(0).installCapability(
        0, 0,
        Capability::root().setBounds(0x1000, 16).andPerms(permDataRW));
    bank.at(2).installCapability(
        2, 0,
        Capability::root().setBounds(0x2000, 16).andPerms(permDataRW));
    EXPECT_EQ(bank.entriesUsed(), 2u);

    EXPECT_FALSE(bank.exceptionFlagSet());
    (void)bank.check(makeReq(2, 2, 0, 0x9000));
    EXPECT_TRUE(bank.exceptionFlagSet());
}

TEST(CheckerBank, SharesCheckerProperties)
{
    CheckerBank bank(2, CapChecker::Params{});
    EXPECT_TRUE(bank.clearsTagsOnWrite());
    EXPECT_EQ(bank.checkLatency(), 1u);
    EXPECT_TRUE(bank.properties().unforgeable);
    EXPECT_EQ(bank.name(), "capchecker-fine-bank");
}

TEST(CheckerBank, BadPortPanics)
{
    CheckerBank bank(2, CapChecker::Params{});
    EXPECT_THROW(bank.at(5), SimError);
    EXPECT_THROW((void)bank.check(makeReq(5, 0, 0, 0x1000)), SimError);
}

TEST(CheckerBank, ZeroCheckersIsFatal)
{
    EXPECT_THROW(CheckerBank bad(0, CapChecker::Params{}), SimError);
}

} // namespace
} // namespace capcheck::protect
