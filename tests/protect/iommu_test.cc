#include <gtest/gtest.h>

#include "protect/iommu.hh"

namespace capcheck::protect
{
namespace
{

MemRequest
makeReq(TaskId task, Addr addr, MemCmd cmd = MemCmd::read,
        std::uint32_t size = 8)
{
    MemRequest req;
    req.task = task;
    req.addr = addr;
    req.cmd = cmd;
    req.size = size;
    return req;
}

TEST(Iommu, MappedPageAllowsWholePage)
{
    Iommu iommu;
    iommu.mapRange(1, 0x10000, 64, true);
    // The whole 4 KiB page is reachable, not just the 64 bytes.
    EXPECT_TRUE(iommu.check(makeReq(1, 0x10000)).allowed);
    EXPECT_TRUE(iommu.check(makeReq(1, 0x10ff8)).allowed);
    EXPECT_FALSE(iommu.check(makeReq(1, 0x11000)).allowed);
}

TEST(Iommu, PerTaskIsolation)
{
    Iommu iommu;
    iommu.mapRange(1, 0x10000, 4096, true);
    EXPECT_TRUE(iommu.check(makeReq(1, 0x10100)).allowed);
    EXPECT_FALSE(iommu.check(makeReq(2, 0x10100)).allowed);
}

TEST(Iommu, ReadOnlyMappings)
{
    Iommu iommu;
    iommu.mapRange(1, 0x10000, 4096, /*writable=*/false);
    EXPECT_TRUE(iommu.check(makeReq(1, 0x10000)).allowed);
    EXPECT_FALSE(
        iommu.check(makeReq(1, 0x10000, MemCmd::write)).allowed);
}

TEST(Iommu, EntryCountScalesWithSize)
{
    Iommu iommu;
    EXPECT_EQ(iommu.mapRange(1, 0x10000, 100, true), 1u);
    EXPECT_EQ(iommu.mapRange(1, 0x20000, 4096, true), 1u);
    EXPECT_EQ(iommu.mapRange(1, 0x30000, 4097, true), 2u);
    EXPECT_EQ(iommu.mapRange(1, 0x40000, 65536, true), 16u);
    EXPECT_EQ(iommu.entriesUsed(), 20u);
}

TEST(Iommu, UnalignedRangeCoversStraddledPages)
{
    Iommu iommu;
    EXPECT_EQ(iommu.mapRange(1, 0x10800, 4096, true), 2u);
}

TEST(Iommu, RemapIsIdempotent)
{
    Iommu iommu;
    iommu.mapRange(1, 0x10000, 4096, true);
    EXPECT_EQ(iommu.mapRange(1, 0x10000, 4096, true), 0u);
    EXPECT_EQ(iommu.entriesUsed(), 1u);
}

TEST(Iommu, UnmapShootsDownTlb)
{
    Iommu iommu;
    iommu.mapRange(1, 0x10000, 4096, true);
    EXPECT_TRUE(iommu.check(makeReq(1, 0x10000)).allowed); // warms TLB
    iommu.unmapTask(1);
    // Even though the translation was cached, it must be gone now.
    EXPECT_FALSE(iommu.check(makeReq(1, 0x10000)).allowed);
    EXPECT_EQ(iommu.entriesUsed(), 0u);
}

TEST(Iommu, TlbHitAvoidsWalk)
{
    Iommu iommu;
    iommu.mapRange(1, 0x10000, 4096, true);
    (void)iommu.check(makeReq(1, 0x10000));
    EXPECT_EQ(iommu.iotlbMisses(), 1u);
    EXPECT_GT(iommu.lastWalkCycles(), 0u);
    (void)iommu.check(makeReq(1, 0x10008));
    EXPECT_EQ(iommu.iotlbHits(), 1u);
    EXPECT_EQ(iommu.lastWalkCycles(), 0u);
}

TEST(Iommu, TlbCapacityEvictsFifo)
{
    Iommu iommu(/*iotlb_entries=*/2);
    iommu.mapRange(1, 0x10000, 3 * 4096, true);
    (void)iommu.check(makeReq(1, 0x10000)); // page 0 cached
    (void)iommu.check(makeReq(1, 0x11000)); // page 1 cached
    (void)iommu.check(makeReq(1, 0x12000)); // evicts page 0
    (void)iommu.check(makeReq(1, 0x10000)); // miss again
    EXPECT_EQ(iommu.iotlbMisses(), 4u);
}

TEST(Iommu, CrossPageRequestChecksBothPages)
{
    Iommu iommu;
    iommu.mapRange(1, 0x10000, 4096, true);
    // 8-byte access straddling into an unmapped page is denied.
    EXPECT_FALSE(iommu.check(makeReq(1, 0x10ffc)).allowed);
}

TEST(Iommu, PropertiesMatchTable1)
{
    Iommu iommu;
    const auto props = iommu.properties();
    EXPECT_EQ(props.granularityBytes, 4096u);
    EXPECT_FALSE(props.unforgeable);
    EXPECT_EQ(props.addressTranslation, "yes");
    EXPECT_FALSE(props.suitsMicrocontrollers);
    EXPECT_FALSE(iommu.clearsTagsOnWrite());
}

} // namespace
} // namespace capcheck::protect
