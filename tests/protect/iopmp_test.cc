#include <gtest/gtest.h>

#include "protect/iopmp.hh"
#include "protect/no_protection.hh"
#include "protect/task_bound.hh"

namespace capcheck::protect
{
namespace
{

MemRequest
makeReq(TaskId task, Addr addr, MemCmd cmd = MemCmd::read)
{
    MemRequest req;
    req.task = task;
    req.addr = addr;
    req.cmd = cmd;
    req.size = 8;
    return req;
}

TEST(Iopmp, ByteGranularRegions)
{
    Iopmp iopmp;
    iopmp.addRegion({1, 0x1000, 100, true, true});
    EXPECT_TRUE(iopmp.check(makeReq(1, 0x1000)).allowed);
    EXPECT_TRUE(iopmp.check(makeReq(1, 0x105c)).allowed); // last 8 bytes
    EXPECT_FALSE(iopmp.check(makeReq(1, 0x105d)).allowed);
    EXPECT_FALSE(iopmp.check(makeReq(1, 0xfff)).allowed);
}

TEST(Iopmp, RegionLimitEnforced)
{
    Iopmp iopmp(4);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_TRUE(iopmp.addRegion({1, 0x1000ull * (i + 1), 64, true,
                                     true}));
    EXPECT_FALSE(iopmp.addRegion({1, 0x9000, 64, true, true}));
    EXPECT_EQ(iopmp.entriesUsed(), 4u);
}

TEST(Iopmp, PermissionsPerRegion)
{
    Iopmp iopmp;
    iopmp.addRegion({1, 0x1000, 64, /*read=*/true, /*write=*/false});
    EXPECT_TRUE(iopmp.check(makeReq(1, 0x1000)).allowed);
    EXPECT_FALSE(
        iopmp.check(makeReq(1, 0x1000, MemCmd::write)).allowed);
}

TEST(Iopmp, TaskKeyedRegions)
{
    Iopmp iopmp;
    iopmp.addRegion({1, 0x1000, 64, true, true});
    EXPECT_FALSE(iopmp.check(makeReq(2, 0x1000)).allowed);
}

TEST(Iopmp, RemoveTaskRegions)
{
    Iopmp iopmp;
    iopmp.addRegion({1, 0x1000, 64, true, true});
    iopmp.addRegion({2, 0x2000, 64, true, true});
    iopmp.removeTaskRegions(1);
    EXPECT_FALSE(iopmp.check(makeReq(1, 0x1000)).allowed);
    EXPECT_TRUE(iopmp.check(makeReq(2, 0x2000)).allowed);
    EXPECT_EQ(iopmp.entriesUsed(), 1u);
}

TEST(Iopmp, PropertiesMatchTable1)
{
    Iopmp iopmp;
    const auto props = iopmp.properties();
    EXPECT_EQ(props.granularityBytes, 1u);
    EXPECT_FALSE(props.unforgeable);
    EXPECT_EQ(props.scalable, "no");
    EXPECT_TRUE(props.suitsMicrocontrollers);
    EXPECT_FALSE(props.suitsApplicationProcessors);
}

TEST(NoProtection, AllowsEverything)
{
    NoProtection none;
    EXPECT_TRUE(none.check(makeReq(0, 0x0)).allowed);
    EXPECT_TRUE(none.check(makeReq(9, ~0ull - 8, MemCmd::write))
                    .allowed);
    EXPECT_FALSE(none.clearsTagsOnWrite());
    EXPECT_EQ(none.checkLatency(), 0u);
}

TEST(TaskBound, TaskUnionSemantics)
{
    TaskBound snpu;
    snpu.addRegion(1, 0x1000, 64);
    snpu.addRegion(1, 0x2000, 64);
    // Any of the task's regions is reachable regardless of intent.
    EXPECT_TRUE(snpu.check(makeReq(1, 0x1000)).allowed);
    EXPECT_TRUE(snpu.check(makeReq(1, 0x2000)).allowed);
    EXPECT_FALSE(snpu.check(makeReq(1, 0x3000)).allowed);
    EXPECT_FALSE(snpu.check(makeReq(2, 0x1000)).allowed);

    snpu.removeTask(1);
    EXPECT_FALSE(snpu.check(makeReq(1, 0x1000)).allowed);
}

} // namespace
} // namespace capcheck::protect
