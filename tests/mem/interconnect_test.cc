#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "mem/interconnect.hh"
#include "mem/mem_ctrl.hh"

namespace capcheck
{
namespace
{

/**
 * Records responses with their arrival cycles. Owns one master-side
 * request port per interconnect slot it plugs into.
 */
class Collector : public SimObject, public ResponseHandler
{
  public:
    Collector(EventQueue &eq, stats::StatGroup *root,
              unsigned num_ports)
        : SimObject(eq, "collector", root)
    {
        for (unsigned p = 0; p < num_ports; ++p) {
            ports.push_back(std::make_unique<RequestPort>(
                *this, "mem_side" + std::to_string(p),
                static_cast<ResponseHandler &>(*this)));
        }
    }

    void
    handleResponse(const MemResponse &resp) override
    {
        responses.push_back(resp);
        cycles.push_back(eq.curCycle());
    }

    std::vector<std::unique_ptr<RequestPort>> ports;
    std::vector<MemResponse> responses;
    std::vector<Cycles> cycles;
};

/** xbar + memctrl wired together, with per-port collectors. */
struct BusFixture
{
    BusFixture(unsigned masters, Cycles latency, unsigned burst = 1)
        : root("soc"), memctrl(eq, &root, latency),
          xbar(eq, &root, masters, burst),
          collector(eq, &root, masters)
    {
        xbar.memSide().bind(memctrl.cpuSide());
        for (unsigned p = 0; p < masters; ++p)
            collector.ports[p]->bind(xbar.accelSide(p));
    }

    EventQueue eq;
    stats::StatGroup root;
    MemoryController memctrl;
    AxiInterconnect xbar;
    Collector collector;
};

MemRequest
makeReq(PortId port, std::uint64_t id, MemCmd cmd = MemCmd::read)
{
    MemRequest req;
    req.cmd = cmd;
    req.addr = 0x1000 + id * 8;
    req.size = 8;
    req.srcPort = port;
    req.id = id;
    return req;
}

TEST(Interconnect, SingleRequestRoundTrip)
{
    BusFixture bus(2, 10);

    EXPECT_TRUE(bus.xbar.offer(0, makeReq(0, 1)));
    bus.eq.run();

    ASSERT_EQ(bus.collector.responses.size(), 1u);
    EXPECT_EQ(bus.collector.responses[0].id, 1u);
    EXPECT_TRUE(bus.collector.responses[0].ok);
    // One cycle of arbitration + 10 cycles of memory latency.
    EXPECT_EQ(bus.eq.curCycle(), 11u);
}

TEST(Interconnect, OneBeatPerCycleSerializesMasters)
{
    BusFixture bus(4, 5);

    for (unsigned p = 0; p < 4; ++p)
        EXPECT_TRUE(bus.xbar.offer(p, makeReq(p, p)));
    bus.eq.run();

    ASSERT_EQ(bus.collector.responses.size(), 4u);
    // Grants on cycles 1..4, responses on 6..9.
    EXPECT_EQ(bus.collector.cycles.back(), 9u);
    EXPECT_EQ(bus.xbar.beatsGranted(), 4u);
    // Responses arrive on consecutive cycles (full pipelining).
    for (unsigned i = 0; i + 1 < 4; ++i)
        EXPECT_EQ(bus.collector.cycles[i + 1],
                  bus.collector.cycles[i] + 1);
}

TEST(Interconnect, RoundRobinIsFair)
{
    BusFixture bus(2, 5);

    unsigned issued0 = 0;
    unsigned issued1 = 0;
    for (Cycles c = 0; c < 60 && (issued0 < 8 || issued1 < 8); ++c) {
        if (issued0 < 8 && bus.xbar.canOffer(0))
            bus.xbar.offer(0, makeReq(0, issued0++));
        if (issued1 < 8 && bus.xbar.canOffer(1))
            bus.xbar.offer(1, makeReq(1, issued1++));
        bus.eq.step();
    }
    bus.eq.run();

    ASSERT_EQ(bus.collector.responses.size(), 16u);
    for (unsigned i = 0; i + 1 < 16; ++i) {
        EXPECT_NE(bus.collector.responses[i].srcPort,
                  bus.collector.responses[i + 1].srcPort)
            << "grants did not alternate at " << i;
    }
}

TEST(Interconnect, OfferWhileFullIsRejected)
{
    BusFixture bus(1, 5);

    EXPECT_TRUE(bus.xbar.offer(0, makeReq(0, 1)));
    EXPECT_FALSE(bus.xbar.canOffer(0));
    EXPECT_FALSE(bus.xbar.offer(0, makeReq(0, 2)));
    bus.eq.run();
    EXPECT_EQ(bus.collector.responses.size(), 1u);

    // The slot frees after the grant.
    EXPECT_TRUE(bus.xbar.canOffer(0));
}

TEST(Interconnect, IdlesWhenNoWork)
{
    BusFixture bus(2, 5);
    bus.eq.run();
    EXPECT_EQ(bus.eq.curCycle(), 0u);
    EXPECT_FALSE(bus.xbar.active());
}

TEST(Interconnect, BurstArbitrationKeepsGrantingOneMaster)
{
    BusFixture bus(2, 5, /*burst=*/4);

    // Both masters continuously refill their slots.
    unsigned issued0 = 0;
    unsigned issued1 = 0;
    for (Cycles c = 0; c < 80 && (issued0 < 8 || issued1 < 8); ++c) {
        if (issued0 < 8 && bus.xbar.canOffer(0))
            bus.xbar.offer(0, makeReq(0, issued0++));
        if (issued1 < 8 && bus.xbar.canOffer(1))
            bus.xbar.offer(1, makeReq(1, issued1++));
        bus.eq.step();
    }
    bus.eq.run();

    ASSERT_EQ(bus.collector.responses.size(), 16u);
    // Count how often consecutive grants came from the same master:
    // burst-4 should produce long same-master runs (RR produces none).
    unsigned same_runs = 0;
    for (unsigned i = 0; i + 1 < 16; ++i) {
        same_runs += bus.collector.responses[i].srcPort ==
                     bus.collector.responses[i + 1].srcPort;
    }
    EXPECT_GE(same_runs, 8u);
}

TEST(Interconnect, BurstDoesNotChangeTotalThroughput)
{
    for (const unsigned burst : {1u, 8u}) {
        BusFixture bus(2, 5, burst);
        unsigned issued0 = 0;
        unsigned issued1 = 0;
        for (Cycles c = 0; c < 80 && (issued0 < 8 || issued1 < 8);
             ++c) {
            if (issued0 < 8 && bus.xbar.canOffer(0))
                bus.xbar.offer(0, makeReq(0, issued0++));
            if (issued1 < 8 && bus.xbar.canOffer(1))
                bus.xbar.offer(1, makeReq(1, issued1++));
            bus.eq.step();
        }
        bus.eq.run();
        // 16 beats, one per cycle, + memory latency tail.
        EXPECT_EQ(bus.collector.responses.size(), 16u) << burst;
        EXPECT_LE(bus.collector.cycles.back(), 16u + 5u + 2u) << burst;
    }
}

/** Downstream that can be told to refuse beats (a stalled pipeline). */
class StallableSink : public SimObject, public TimingConsumer
{
  public:
    StallableSink(EventQueue &eq, stats::StatGroup *root)
        : SimObject(eq, "sink", root),
          port(*this, "cpu_side", static_cast<TimingConsumer &>(*this))
    {
    }

    bool
    tryAccept(const MemRequest &req) override
    {
        if (stalled)
            return false;
        accepted.push_back(req);
        return true;
    }

    ResponsePort port;
    bool stalled = false;
    std::vector<MemRequest> accepted;
};

TEST(Interconnect, BurstBudgetDroppedWhenOwnerGoesIdle)
{
    // Regression: after a grant armed the burst (owner 0, budget 3),
    // arbitration re-entered the burst path even when the owner had no
    // pending beat, dereferencing the empty slot and starving everyone
    // else. The leftover budget must be dropped instead.
    EventQueue eq;
    stats::StatGroup root("soc");
    StallableSink sink(eq, &root);
    AxiInterconnect xbar(eq, &root, 2, /*max_burst=*/4);
    xbar.memSide().bind(sink.port);

    EXPECT_TRUE(xbar.offer(0, makeReq(0, 1)));
    eq.run();
    ASSERT_EQ(sink.accepted.size(), 1u);

    // Owner 0 went idle with burst budget left; master 1 must still be
    // served on the next beat.
    EXPECT_TRUE(xbar.offer(1, makeReq(1, 2)));
    eq.run();
    ASSERT_EQ(sink.accepted.size(), 2u);
    EXPECT_EQ(sink.accepted[1].srcPort, 1u);
    // And the queue drained: a stale burst must not keep the
    // interconnect ticking forever.
    EXPECT_FALSE(xbar.active());
}

TEST(Interconnect, StalledBurstBeatIsRetriedNotLost)
{
    EventQueue eq;
    stats::StatGroup root("soc");
    StallableSink sink(eq, &root);
    AxiInterconnect xbar(eq, &root, 2, /*max_burst=*/2);
    xbar.memSide().bind(sink.port);

    // First beat grants and arms the burst.
    EXPECT_TRUE(xbar.offer(0, makeReq(0, 1)));
    eq.step();
    ASSERT_EQ(sink.accepted.size(), 1u);

    // Second back-to-back beat hits a stalled downstream for a few
    // cycles; the beat (and the burst accounting) must survive the
    // stall and complete once the sink drains.
    sink.stalled = true;
    EXPECT_TRUE(xbar.offer(0, makeReq(0, 2)));
    eq.step();
    eq.step();
    EXPECT_EQ(sink.accepted.size(), 1u);
    EXPECT_FALSE(xbar.canOffer(0)); // beat still buffered, not dropped

    sink.stalled = false;
    eq.run();
    ASSERT_EQ(sink.accepted.size(), 2u);
    EXPECT_EQ(sink.accepted[1].id, 2u);
    EXPECT_FALSE(xbar.active());
}

TEST(Interconnect, NewOwnerStartsItsOwnBurstAfterReset)
{
    // After a dropped burst, the next master to win arbitration gets a
    // full burst of its own, not the stale leftover budget.
    EventQueue eq;
    stats::StatGroup root("soc");
    StallableSink sink(eq, &root);
    AxiInterconnect xbar(eq, &root, 2, /*max_burst=*/3);
    xbar.memSide().bind(sink.port);

    EXPECT_TRUE(xbar.offer(0, makeReq(0, 1)));
    eq.run(); // burst armed for 0, then dropped (0 idle)

    // Master 1 issues three back-to-back beats; with its own burst it
    // keeps the bus even though master 0 re-offers in between.
    EXPECT_TRUE(xbar.offer(1, makeReq(1, 10)));
    eq.step();
    EXPECT_TRUE(xbar.offer(1, makeReq(1, 11)));
    EXPECT_TRUE(xbar.offer(0, makeReq(0, 2)));
    eq.step();
    EXPECT_TRUE(xbar.offer(1, makeReq(1, 12)));
    eq.step();
    eq.run();

    ASSERT_EQ(sink.accepted.size(), 5u);
    EXPECT_EQ(sink.accepted[1].srcPort, 1u);
    EXPECT_EQ(sink.accepted[2].srcPort, 1u);
    EXPECT_EQ(sink.accepted[3].srcPort, 1u);
    EXPECT_EQ(sink.accepted[4].srcPort, 0u);
}

TEST(MemCtrl, PipelinedResponsesPreserveOrderAndLatency)
{
    EventQueue eq;
    stats::StatGroup root("soc");
    Collector collector(eq, &root, 1);
    MemoryController memctrl(eq, &root, 20);
    collector.ports[0]->bind(memctrl.cpuSide());

    std::vector<std::unique_ptr<LambdaEvent>> events;
    for (Cycles c = 1; c <= 5; ++c) {
        events.push_back(std::make_unique<LambdaEvent>([&memctrl, c] {
            MemRequest req = makeReq(0, c);
            EXPECT_TRUE(memctrl.tryAccept(req));
        }));
        eq.schedule(events.back().get(), c);
    }
    eq.run();

    ASSERT_EQ(collector.responses.size(), 5u);
    for (unsigned i = 0; i < 5; ++i) {
        EXPECT_EQ(collector.responses[i].id, i + 1);
        EXPECT_EQ(collector.cycles[i], i + 1 + 20);
    }
}

TEST(MemCtrl, SecondAcceptSameCycleRejected)
{
    EventQueue eq;
    stats::StatGroup root("soc");
    Collector collector(eq, &root, 1);
    MemoryController memctrl(eq, &root, 5);
    collector.ports[0]->bind(memctrl.cpuSide());

    LambdaEvent ev([&] {
        EXPECT_TRUE(memctrl.tryAccept(makeReq(0, 1)));
        EXPECT_FALSE(memctrl.tryAccept(makeReq(0, 2)));
    });
    eq.schedule(&ev, 1);
    eq.run();
    EXPECT_EQ(memctrl.requestsServed(), 1u);
}

TEST(MemCtrl, WriteAndReadBeatsCounted)
{
    EventQueue eq;
    stats::StatGroup root("soc");
    Collector collector(eq, &root, 1);
    MemoryController memctrl(eq, &root, 5);
    collector.ports[0]->bind(memctrl.cpuSide());

    std::vector<std::unique_ptr<LambdaEvent>> events;
    for (Cycles c = 1; c <= 4; ++c) {
        const MemCmd cmd = (c % 2) ? MemCmd::read : MemCmd::write;
        events.push_back(std::make_unique<LambdaEvent>(
            [&memctrl, c, cmd] {
                memctrl.tryAccept(makeReq(0, c, cmd));
            }));
        eq.schedule(events.back().get(), c);
    }
    eq.run();
    EXPECT_EQ(memctrl.requestsServed(), 4u);
}

} // namespace
} // namespace capcheck
