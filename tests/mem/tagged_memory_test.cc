#include <gtest/gtest.h>

#include "base/logging.hh"
#include "mem/tagged_memory.hh"

namespace capcheck
{
namespace
{

using cheri::Capability;
using cheri::permDataRW;

TEST(TaggedMemory, DataRoundTrip)
{
    TaggedMemory mem(4096);
    mem.writeValue<std::uint32_t>(0x100, 0xdeadbeef);
    EXPECT_EQ(mem.readValue<std::uint32_t>(0x100), 0xdeadbeefu);

    const char text[] = "capability";
    mem.write(0x200, text, sizeof(text));
    char back[sizeof(text)];
    mem.read(0x200, back, sizeof(back));
    EXPECT_STREQ(back, "capability");
}

TEST(TaggedMemory, CapStoreSetsTagAndRoundTrips)
{
    TaggedMemory mem(4096);
    const Capability cap =
        Capability::root().setBounds(0x40, 0x80).andPerms(permDataRW);
    mem.writeCap(0x10 * 16, cap);

    EXPECT_TRUE(mem.tagAt(0x100));
    const Capability back = mem.readCap(0x100);
    EXPECT_TRUE(back.tag());
    EXPECT_EQ(back.base(), cap.base());
    EXPECT_EQ(back.top(), cap.top());
    EXPECT_EQ(back.perms(), cap.perms());
}

TEST(TaggedMemory, UntaggedCapStoreClearsTag)
{
    TaggedMemory mem(4096);
    mem.writeCap(0x100, Capability::root().setBounds(0, 16));
    EXPECT_TRUE(mem.tagAt(0x100));
    mem.writeCap(0x100, Capability::root().setBounds(0, 16).cleared());
    EXPECT_FALSE(mem.tagAt(0x100));
}

TEST(TaggedMemory, DataWriteClearsOverlappingTags)
{
    // This is the anti-forgery rule: any plain-data write to a granule
    // holding a capability invalidates it.
    TaggedMemory mem(4096);
    mem.writeCap(0x100, Capability::root().setBounds(0, 16));
    mem.writeCap(0x110, Capability::root().setBounds(16, 16));

    // A one-byte write into the first granule kills only that tag.
    mem.writeValue<std::uint8_t>(0x10f, 0xff);
    EXPECT_FALSE(mem.tagAt(0x100));
    EXPECT_TRUE(mem.tagAt(0x110));

    // A straddling write kills the second too.
    mem.writeCap(0x100, Capability::root().setBounds(0, 16));
    mem.writeValue<std::uint64_t>(0x10c, 0);
    EXPECT_FALSE(mem.tagAt(0x100));
    EXPECT_FALSE(mem.tagAt(0x110));
}

TEST(TaggedMemory, ReadCapOfClearedGranuleIsUntagged)
{
    TaggedMemory mem(4096);
    const Capability cap = Capability::root().setBounds(0x40, 0x40);
    mem.writeCap(0x100, cap);
    mem.writeValue<std::uint64_t>(0x100, 0x4141414141414141ull);

    const Capability forged = mem.readCap(0x100);
    EXPECT_FALSE(forged.tag()); // bytes changed, rights did not survive
}

TEST(TaggedMemory, CountAndClearTags)
{
    TaggedMemory mem(4096);
    EXPECT_EQ(mem.countTags(), 0u);
    for (int i = 0; i < 4; ++i)
        mem.writeCap(0x100 + i * 16,
                     Capability::root().setBounds(0, 16));
    EXPECT_EQ(mem.countTags(), 4u);
    mem.clearTags(0x100, 32);
    EXPECT_EQ(mem.countTags(), 2u);
}

TEST(TaggedMemory, ScrubZeroesAndClears)
{
    TaggedMemory mem(4096);
    mem.writeValue<std::uint64_t>(0x100, ~0ull);
    mem.writeCap(0x110, Capability::root().setBounds(0, 16));
    mem.scrub(0x100, 0x40);
    EXPECT_EQ(mem.readValue<std::uint64_t>(0x100), 0u);
    EXPECT_FALSE(mem.tagAt(0x110));
}

TEST(TaggedMemory, UnalignedCapAccessPanics)
{
    TaggedMemory mem(4096);
    EXPECT_THROW(mem.writeCap(0x101, Capability::root()), SimError);
    EXPECT_THROW((void)mem.readCap(0x108), SimError);
}

TEST(TaggedMemory, OutOfRangePanics)
{
    TaggedMemory mem(4096);
    EXPECT_THROW(mem.writeValue<std::uint64_t>(4092, 0), SimError);
    std::uint8_t byte;
    EXPECT_THROW(mem.read(4096, &byte, 1), SimError);
}

TEST(TaggedMemory, SizeMustBeGranuleAligned)
{
    EXPECT_THROW(TaggedMemory bad(100), SimError);
    EXPECT_THROW(TaggedMemory empty(0), SimError);
}

} // namespace
} // namespace capcheck
