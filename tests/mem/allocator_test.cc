#include <gtest/gtest.h>

#include <set>

#include "base/logging.hh"
#include "base/random.hh"
#include "cheri/compressed.hh"
#include "mem/allocator.hh"

namespace capcheck
{
namespace
{

TEST(Allocator, AllocatesDisjointRegions)
{
    RegionAllocator alloc(0x1000, 0x10000);
    const auto a = alloc.allocate(256);
    const auto b = alloc.allocate(256);
    ASSERT_TRUE(a && b);
    EXPECT_NE(*a, *b);
    // Regions must not overlap.
    EXPECT_TRUE(*a + 256 <= *b || *b + 256 <= *a);
}

TEST(Allocator, RespectsCapabilityAlignment)
{
    RegionAllocator alloc(0x1000, 1 << 22);
    // Large buffers must land on their CHERI-exact alignment.
    const std::uint64_t size = (1 << 20) + 64;
    const auto addr = alloc.allocate(size);
    ASSERT_TRUE(addr);
    EXPECT_EQ(*addr % cheri::ccRequiredAlignment(size), 0u);
}

TEST(Allocator, MinimumSixteenByteAlignment)
{
    RegionAllocator alloc(0x1000, 0x1000);
    const auto a = alloc.allocate(1);
    const auto b = alloc.allocate(1);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*a % 16, 0u);
    EXPECT_EQ(*b % 16, 0u);
    EXPECT_GE(*b - *a, 16u); // never share a tag granule
}

TEST(Allocator, FreeAndCoalesce)
{
    RegionAllocator alloc(0, 0x100);
    const auto a = alloc.allocate(64);
    const auto b = alloc.allocate(64);
    const auto c = alloc.allocate(64);
    ASSERT_TRUE(a && b && c);
    EXPECT_FALSE(alloc.allocate(128));

    alloc.free(*a);
    alloc.free(*b);
    // After coalescing the first two spans, 128 bytes fit again.
    const auto d = alloc.allocate(128);
    EXPECT_TRUE(d);
    alloc.free(*c);
    alloc.free(*d);
    EXPECT_EQ(alloc.liveAllocations(), 0u);
    EXPECT_EQ(alloc.bytesAllocated(), 0u);
}

TEST(Allocator, ExhaustionReturnsNullopt)
{
    RegionAllocator alloc(0, 256);
    EXPECT_TRUE(alloc.allocate(128));
    EXPECT_TRUE(alloc.allocate(128));
    EXPECT_FALSE(alloc.allocate(16));
}

TEST(Allocator, GuardBytesSeparateAllocations)
{
    RegionAllocator alloc(0, 0x1000, /*guard_bytes=*/64);
    const auto a = alloc.allocate(16);
    const auto b = alloc.allocate(16);
    ASSERT_TRUE(a && b);
    EXPECT_GE(*b > *a ? *b - *a : *a - *b, 16u + 64u);
}

TEST(Allocator, SizeOfTracksUserSize)
{
    RegionAllocator alloc(0, 0x1000);
    const auto a = alloc.allocate(100);
    ASSERT_TRUE(a);
    EXPECT_EQ(alloc.sizeOf(*a), 100u);
    EXPECT_EQ(alloc.sizeOf(*a + 1), 0u);
}

TEST(Allocator, DoubleFreePanics)
{
    RegionAllocator alloc(0, 0x1000);
    const auto a = alloc.allocate(64);
    ASSERT_TRUE(a);
    alloc.free(*a);
    EXPECT_THROW(alloc.free(*a), SimError);
}

TEST(Allocator, ZeroSizeRejected)
{
    RegionAllocator alloc(0, 0x1000);
    EXPECT_FALSE(alloc.allocate(0));
}

TEST(Allocator, RandomizedChurnPreservesInvariants)
{
    // Property: across random alloc/free churn, live allocations never
    // overlap and everything stays inside the managed region.
    RegionAllocator alloc(0x10000, 0x40000);
    Rng rng(99);
    std::map<Addr, std::uint64_t> live;

    for (int step = 0; step < 2000; ++step) {
        if (live.empty() || rng.nextBool(0.6)) {
            const std::uint64_t size = 1 + rng.nextBounded(2048);
            const auto addr = alloc.allocate(size);
            if (!addr)
                continue;
            EXPECT_GE(*addr, 0x10000u);
            EXPECT_LE(*addr + size, 0x50000u);
            // No overlap with any live allocation.
            for (const auto &[other, other_size] : live) {
                EXPECT_TRUE(*addr + size <= other ||
                            other + other_size <= *addr);
            }
            live[*addr] = size;
        } else {
            auto it = live.begin();
            std::advance(it, rng.nextBounded(live.size()));
            alloc.free(it->first);
            live.erase(it);
        }
    }
    for (const auto &[addr, size] : live)
        alloc.free(addr);
    EXPECT_EQ(alloc.bytesAllocated(), 0u);
    // Full region available again.
    EXPECT_TRUE(alloc.allocate(0x40000 - 16));
}

} // namespace
} // namespace capcheck
