/**
 * @file
 * Randomized stress test of the event queue against a straightforward
 * reference model (a sorted multimap), exercising the lazy-deletion
 * path that deschedule/reschedule rely on.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "base/random.hh"
#include "sim/eventq.hh"

namespace capcheck
{
namespace
{

TEST(EventQueueStress, RandomScheduleDescheduleMatchesReference)
{
    EventQueue eq;
    Rng rng(2718);

    struct Tracker
    {
        std::unique_ptr<LambdaEvent> event;
        bool fired = false;
    };
    std::vector<Tracker> trackers;
    trackers.reserve(4000);

    // Reference: expected fire time per event index (or none).
    std::map<std::size_t, Cycles> expected;
    std::vector<std::pair<Cycles, std::size_t>> fired_log;

    Cycles horizon = 1;
    for (int step = 0; step < 4000; ++step) {
        const double dice = rng.nextDouble();
        if (dice < 0.70 || trackers.empty()) {
            // Schedule a fresh event in the future.
            const std::size_t idx = trackers.size();
            trackers.push_back({});
            trackers[idx].event = std::make_unique<LambdaEvent>(
                [&fired_log, &eq, idx] {
                    fired_log.emplace_back(eq.curCycle(), idx);
                });
            const Cycles when = horizon + rng.nextBounded(200);
            eq.schedule(trackers[idx].event.get(), when);
            expected[idx] = when;
        } else if (dice < 0.85) {
            // Deschedule a random still-scheduled event.
            const std::size_t idx = rng.nextBounded(trackers.size());
            if (trackers[idx].event->scheduled()) {
                eq.deschedule(trackers[idx].event.get());
                expected.erase(idx);
            }
        } else {
            // Reschedule a random still-scheduled event.
            const std::size_t idx = rng.nextBounded(trackers.size());
            if (trackers[idx].event->scheduled()) {
                const Cycles when = horizon + rng.nextBounded(200);
                eq.reschedule(trackers[idx].event.get(), when);
                expected[idx] = when;
            }
        }

        // Occasionally advance time partially.
        if (rng.nextBool(0.1)) {
            horizon += rng.nextBounded(50);
            eq.run(horizon);
        }
    }
    eq.run();

    // Every still-expected event fired exactly once at its time.
    std::map<std::size_t, Cycles> fired_at;
    for (const auto &[when, idx] : fired_log) {
        EXPECT_TRUE(fired_at.emplace(idx, when).second)
            << "event " << idx << " fired twice";
    }

    for (const auto &[idx, when] : expected) {
        auto it = fired_at.find(idx);
        ASSERT_NE(it, fired_at.end()) << "event " << idx << " lost";
        EXPECT_EQ(it->second, when) << "event " << idx;
    }
    // And nothing fired that was not expected.
    for (const auto &[idx, when] : fired_at) {
        auto it = expected.find(idx);
        ASSERT_NE(it, expected.end())
            << "event " << idx << " fired after deschedule";
    }

    // Fire log is time-ordered.
    for (std::size_t i = 0; i + 1 < fired_log.size(); ++i)
        EXPECT_LE(fired_log[i].first, fired_log[i + 1].first);

    EXPECT_EQ(eq.pending(), 0u);
}

} // namespace
} // namespace capcheck
