/** @file Tests for the simulation-kernel registry. */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/kernels/registry.hh"

using namespace capcheck::sim;

TEST(KernelRegistry, NamesRoundTrip)
{
    for (const SimKernel k :
         {SimKernel::ref, SimKernel::fast, SimKernel::compare}) {
        SimKernel parsed;
        ASSERT_TRUE(simKernelFromName(simKernelName(k), parsed))
            << simKernelName(k);
        EXPECT_EQ(parsed, k);
    }
}

TEST(KernelRegistry, RejectsUnknownNames)
{
    SimKernel parsed;
    EXPECT_FALSE(simKernelFromName("turbo", parsed));
    EXPECT_FALSE(simKernelFromName("", parsed));
    EXPECT_FALSE(simKernelFromName("Fast", parsed)); // case-sensitive
}

TEST(KernelRegistry, ChoicesListsEveryKernel)
{
    EXPECT_EQ(simKernelChoices(), "ref, fast, compare");
}

TEST(KernelRegistry, FastKernelsAreRegistered)
{
    std::set<std::string> names;
    for (const KernelInfo &info : fastKernels()) {
        EXPECT_FALSE(info.component.empty()) << info.name;
        EXPECT_FALSE(info.replaces.empty()) << info.name;
        EXPECT_FALSE(info.technique.empty()) << info.name;
        names.insert(info.name);
    }
    const std::set<std::string> expect{
        "captable.index", "capcache.index", "eventq.bucketed",
        "player.retry"};
    EXPECT_EQ(names, expect);
}

TEST(KernelRegistry, FindKernelByName)
{
    const KernelInfo *info = findKernel("eventq.bucketed");
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->name, "eventq.bucketed");
    EXPECT_EQ(findKernel("no.such.kernel"), nullptr);
}
