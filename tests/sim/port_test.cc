/**
 * @file
 * Tests for the typed port/binding layer: forwarding semantics, the
 * structured bind-time diagnostics (unbound use, double bind, role and
 * protocol mismatches — each naming the offending endpoints), the
 * automatic unbind on destruction, and the ComponentRegistry's dotted
 * "component.port" resolution.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/clocked.hh"
#include "sim/port.hh"

namespace capcheck
{
namespace
{

/** Producer: owns a request port, records responses. */
class Producer : public SimObject, public ResponseHandler
{
  public:
    Producer(EventQueue &eq, stats::StatGroup *root,
             std::string name = "producer")
        : SimObject(eq, std::move(name), root),
          port(*this, "mem_side", static_cast<ResponseHandler &>(*this))
    {
    }

    void
    handleResponse(const MemResponse &resp) override
    {
        responses.push_back(resp);
    }

    RequestPort port;
    std::vector<MemResponse> responses;
};

/** Consumer: owns a response port, echoes every request back. */
class Consumer : public SimObject, public TimingConsumer
{
  public:
    Consumer(EventQueue &eq, stats::StatGroup *root,
             std::string name = "consumer")
        : SimObject(eq, std::move(name), root),
          port(*this, "cpu_side", static_cast<TimingConsumer &>(*this))
    {
    }

    bool
    tryAccept(const MemRequest &req) override
    {
        if (reject_all)
            return false;
        accepted.push_back(req);
        MemResponse resp;
        resp.id = req.id;
        resp.srcPort = req.srcPort;
        resp.ok = true;
        port.sendResponse(resp);
        return true;
    }

    ResponsePort port;
    bool reject_all = false;
    std::vector<MemRequest> accepted;
};

MemRequest
makeReq(std::uint64_t id)
{
    MemRequest req;
    req.cmd = MemCmd::read;
    req.addr = 0x1000;
    req.size = 8;
    req.id = id;
    return req;
}

class PortFixture : public ::testing::Test
{
  protected:
    PortFixture() : root("t"), producer(eq, &root), consumer(eq, &root)
    {
    }

    EventQueue eq;
    stats::StatGroup root;
    Producer producer;
    Consumer consumer;
};

TEST_F(PortFixture, BoundPairForwardsRequestsAndResponses)
{
    producer.port.bind(consumer.port);
    ASSERT_TRUE(producer.port.bound());
    ASSERT_TRUE(consumer.port.bound());
    EXPECT_EQ(producer.port.peerBase(), &consumer.port);

    EXPECT_TRUE(producer.port.canSend());
    EXPECT_TRUE(producer.port.trySend(makeReq(42)));

    // Same-frame forwarding: the request landed and the echo response
    // came back before trySend returned.
    ASSERT_EQ(consumer.accepted.size(), 1u);
    EXPECT_EQ(consumer.accepted[0].id, 42u);
    ASSERT_EQ(producer.responses.size(), 1u);
    EXPECT_EQ(producer.responses[0].id, 42u);
}

TEST_F(PortFixture, BackpressurePropagatesThroughThePort)
{
    producer.port.bind(consumer.port);
    consumer.reject_all = true;
    EXPECT_FALSE(producer.port.trySend(makeReq(1)));
    EXPECT_TRUE(consumer.accepted.empty());
}

TEST_F(PortFixture, UnboundSendIsAStructuredError)
{
    try {
        producer.port.trySend(makeReq(1));
        FAIL() << "expected PortError";
    } catch (const PortError &e) {
        EXPECT_EQ(e.kind(), PortError::Kind::unbound);
        EXPECT_EQ(e.endpointA(), "producer.mem_side");
        EXPECT_NE(std::string(e.what()).find("producer.mem_side"),
                  std::string::npos);
    }
}

TEST_F(PortFixture, DoubleBindNamesBothEndpoints)
{
    producer.port.bind(consumer.port);
    Producer other(eq, &root, "other");
    try {
        other.port.bind(consumer.port);
        FAIL() << "expected PortError";
    } catch (const PortError &e) {
        EXPECT_EQ(e.kind(), PortError::Kind::doubleBind);
        const std::string what = e.what();
        EXPECT_NE(what.find("consumer.cpu_side"), std::string::npos);
        EXPECT_NE(what.find("other.mem_side"), std::string::npos);
    }
}

TEST_F(PortFixture, RoleMismatchIsRejected)
{
    Producer other(eq, &root, "other");
    try {
        bindPorts(producer.port, other.port);
        FAIL() << "expected PortError";
    } catch (const PortError &e) {
        EXPECT_EQ(e.kind(), PortError::Kind::roleMismatch);
        const std::string what = e.what();
        EXPECT_NE(what.find("producer.mem_side"), std::string::npos);
        EXPECT_NE(what.find("other.mem_side"), std::string::npos);
    }
}

TEST_F(PortFixture, SelfBindIsRejected)
{
    EXPECT_THROW(bindPorts(producer.port, producer.port), PortError);
}

TEST_F(PortFixture, ProtocolMismatchIsRejected)
{
    /** A response port speaking a different packet protocol. */
    class IrqSink : public SimObject, public TimingConsumer
    {
      public:
        IrqSink(EventQueue &eq, stats::StatGroup *root)
            : SimObject(eq, "irqsink", root),
              port(*this, "irq_side",
                   static_cast<TimingConsumer &>(*this), "irq")
        {
        }

        bool tryAccept(const MemRequest &) override { return true; }

        ResponsePort port;
    };

    IrqSink sink(eq, &root);
    try {
        bindPorts(producer.port, sink.port);
        FAIL() << "expected PortError";
    } catch (const PortError &e) {
        EXPECT_EQ(e.kind(), PortError::Kind::protocolMismatch);
    }
}

TEST_F(PortFixture, UnbindSeversBothSidesAndIsRebindable)
{
    producer.port.bind(consumer.port);
    producer.port.unbind();
    EXPECT_FALSE(producer.port.bound());
    EXPECT_FALSE(consumer.port.bound());

    // Both endpoints are free again.
    producer.port.bind(consumer.port);
    EXPECT_TRUE(producer.port.trySend(makeReq(7)));
}

TEST_F(PortFixture, DestructionUnbindsThePeer)
{
    {
        Producer ephemeral(eq, &root, "ephemeral");
        ephemeral.port.bind(consumer.port);
        EXPECT_TRUE(consumer.port.bound());
    }
    // The consumer must not be left with a dangling peer (trace
    // players die at the end of every wave).
    EXPECT_FALSE(consumer.port.bound());
    producer.port.bind(consumer.port);
    EXPECT_TRUE(producer.port.trySend(makeReq(8)));
}

TEST_F(PortFixture, DuplicatePortNameOnOneOwnerIsRejected)
{
    EXPECT_THROW(
        RequestPort(producer, "mem_side",
                    static_cast<ResponseHandler &>(producer)),
        PortError);
}

TEST_F(PortFixture, SimObjectResolvesPortsByLocalName)
{
    EXPECT_EQ(producer.findPort("mem_side"), &producer.port);
    EXPECT_EQ(producer.findPort("nope"), nullptr);
    ASSERT_EQ(producer.ports().size(), 1u);
    EXPECT_EQ(producer.ports()[0]->fullName(), "producer.mem_side");
}

TEST_F(PortFixture, RegistryResolvesDottedNamesAndBinds)
{
    ComponentRegistry registry;
    registry.add(producer);
    registry.add(consumer);

    EXPECT_EQ(registry.find("producer"), &producer);
    EXPECT_EQ(registry.find("absent"), nullptr);
    EXPECT_EQ(&registry.port("producer.mem_side"), &producer.port);

    registry.bind("producer.mem_side", "consumer.cpu_side");
    EXPECT_TRUE(producer.port.trySend(makeReq(3)));
    ASSERT_EQ(consumer.accepted.size(), 1u);

    const std::vector<std::string> names = registry.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "producer");
    EXPECT_EQ(names[1], "consumer");
}

TEST_F(PortFixture, RegistryUnknownNamesListTheKnownOnes)
{
    ComponentRegistry registry;
    registry.add(producer);

    try {
        registry.port("ghost.mem_side");
        FAIL() << "expected PortError";
    } catch (const PortError &e) {
        EXPECT_EQ(e.kind(), PortError::Kind::unknownComponent);
        // The message lists what *does* exist.
        EXPECT_NE(std::string(e.what()).find("producer"),
                  std::string::npos);
    }

    try {
        registry.port("producer.ghost_side");
        FAIL() << "expected PortError";
    } catch (const PortError &e) {
        EXPECT_EQ(e.kind(), PortError::Kind::unknownPort);
        EXPECT_NE(std::string(e.what()).find("mem_side"),
                  std::string::npos);
    }
}

TEST_F(PortFixture, RegistryRejectsDuplicateComponentNames)
{
    ComponentRegistry registry;
    registry.add(producer);
    Producer twin(eq, &root, "producer");
    try {
        registry.add(twin);
        FAIL() << "expected PortError";
    } catch (const PortError &e) {
        EXPECT_EQ(e.kind(), PortError::Kind::duplicateName);
    }
}

TEST(PortErrorKind, EveryKindHasAName)
{
    for (const auto kind :
         {PortError::Kind::unbound, PortError::Kind::doubleBind,
          PortError::Kind::roleMismatch,
          PortError::Kind::protocolMismatch, PortError::Kind::selfBind,
          PortError::Kind::duplicateName,
          PortError::Kind::unknownComponent,
          PortError::Kind::unknownPort}) {
        EXPECT_NE(std::string(portErrorKindName(kind)), "");
    }
}

} // namespace
} // namespace capcheck
