#include <gtest/gtest.h>

#include <vector>

#include "sim/clocked.hh"

namespace capcheck
{
namespace
{

/** Ticks for a fixed number of cycles, recording when it ran. */
class CountdownTicker : public TickingObject
{
  public:
    CountdownTicker(EventQueue &eq, stats::StatGroup *stats, int count)
        : TickingObject(eq, "ticker", stats), remaining(count)
    {
    }

    bool
    tick() override
    {
        tickCycles.push_back(curCycle());
        return --remaining > 0;
    }

    int remaining;
    std::vector<Cycles> tickCycles;
};

TEST(Clocked, TicksOncePerCycleWhileActive)
{
    EventQueue eq;
    stats::StatGroup root("root");
    CountdownTicker ticker(eq, &root, 3);
    ticker.activate(1);
    eq.run();

    EXPECT_EQ(ticker.tickCycles, (std::vector<Cycles>{1, 2, 3}));
    EXPECT_FALSE(ticker.active());
}

TEST(Clocked, ReactivationAfterIdle)
{
    EventQueue eq;
    stats::StatGroup root("root");
    CountdownTicker ticker(eq, &root, 1);
    ticker.activate(1);
    eq.run();
    EXPECT_EQ(ticker.tickCycles.size(), 1u);

    ticker.remaining = 2;
    ticker.activate(5);
    eq.run();
    ASSERT_EQ(ticker.tickCycles.size(), 3u);
    EXPECT_EQ(ticker.tickCycles[1], 6u);
    EXPECT_EQ(ticker.tickCycles[2], 7u);
}

TEST(Clocked, ActivateKeepsEarliestWakeup)
{
    EventQueue eq;
    stats::StatGroup root("root");
    CountdownTicker ticker(eq, &root, 1);
    ticker.activate(10);
    ticker.activate(2); // earlier wins
    ticker.activate(5); // later is ignored
    eq.run();
    ASSERT_EQ(ticker.tickCycles.size(), 1u);
    EXPECT_EQ(ticker.tickCycles[0], 2u);
}

TEST(Clocked, StatGroupNestsUnderParent)
{
    EventQueue eq;
    stats::StatGroup root("soc");
    CountdownTicker ticker(eq, &root, 1);
    EXPECT_EQ(ticker.statGroup().path(), "soc.ticker");
}

} // namespace
} // namespace capcheck
