/**
 * @file
 * Event/queue lifetime and lazy-deletion edge cases. The queue deletes
 * lazily — deschedule() leaves a stale entry in the heap, identified by
 * sequence number — so these tests pin down the contract: a descheduled
 * event may be destroyed immediately (its pointer is never touched
 * again), stale entries are invisible to run()/step(), and destroying a
 * still-scheduled event is a hard error.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "base/stats.hh"
#include "obs/sampler.hh"
#include "sim/eventq.hh"

namespace capcheck
{
namespace
{

TEST(EventQueueLifetime, DescheduleThenDestroyIsSafe)
{
    // The original implementation kept the raw Event* in the heap and
    // dereferenced it when the entry surfaced — a use-after-free once
    // the owner destroyed the descheduled event. Under ASan this test
    // is the proof that the pointer is no longer touched.
    EventQueue eq;
    bool other_fired = false;
    LambdaEvent other([&] { other_fired = true; });

    auto doomed = std::make_unique<LambdaEvent>([] { FAIL(); });
    eq.schedule(doomed.get(), 10);
    eq.schedule(&other, 20);
    eq.deschedule(doomed.get());
    doomed.reset(); // free while its stale entry is still heap-resident

    eq.run();
    EXPECT_TRUE(other_fired);
    EXPECT_EQ(eq.curCycle(), 20u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueLifetime, DestroyedEventSlotCanBeReusedImmediately)
{
    // Same-address reuse: a fresh event allocated where the descheduled
    // one lived must not be confused with the stale heap entry.
    EventQueue eq;
    auto first = std::make_unique<LambdaEvent>([] { FAIL(); });
    eq.schedule(first.get(), 5);
    eq.deschedule(first.get());
    first.reset();

    int fired = 0;
    LambdaEvent second([&] { ++fired; });
    eq.schedule(&second, 5);
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueLifetime, RescheduleToSameCycleMovesBehindPeers)
{
    // Rescheduling assigns a fresh sequence number, so an event moved
    // to the same cycle fires after same-priority peers that were
    // already queued — and exactly once, despite its stale entry.
    EventQueue eq;
    std::vector<int> order;
    LambdaEvent mover([&] { order.push_back(1); });
    LambdaEvent peer([&] { order.push_back(2); });

    eq.schedule(&mover, 10);
    eq.schedule(&peer, 10);
    eq.reschedule(&mover, 10);
    eq.run();

    EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventQueueLifetime, StaleEntriesInvisibleToRunLimit)
{
    EventQueue eq;
    bool fired = false;
    LambdaEvent live([&] { fired = true; });
    LambdaEvent cancelled_early([] { FAIL(); });
    LambdaEvent cancelled_late([] { FAIL(); });

    eq.schedule(&cancelled_early, 3);
    eq.schedule(&live, 5);
    eq.schedule(&cancelled_late, 100);
    eq.deschedule(&cancelled_early);
    eq.deschedule(&cancelled_late);

    EXPECT_EQ(eq.pending(), 1u);
    eq.run(50);
    EXPECT_TRUE(fired);
    // The stale cycle-100 entry must not hold time below the horizon.
    EXPECT_EQ(eq.curCycle(), 50u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueLifetime, StepSkipsStaleCycleAndProcessesTheLiveOne)
{
    // A stale entry at the heap top must not make step() burn a no-op
    // "cycle" on a time that has no live events.
    EventQueue eq;
    bool fired = false;
    LambdaEvent cancelled([] { FAIL(); });
    LambdaEvent live([&] { fired = true; });

    eq.schedule(&cancelled, 5);
    eq.schedule(&live, 7);
    eq.deschedule(&cancelled);

    eq.step();
    EXPECT_TRUE(fired);
    EXPECT_EQ(eq.curCycle(), 7u);
}

TEST(EventQueueLifetime, StepOnDrainedQueueIsANoOp)
{
    EventQueue eq;
    LambdaEvent cancelled([] { FAIL(); });
    eq.schedule(&cancelled, 5);
    eq.deschedule(&cancelled);

    eq.step(); // only a stale entry remains
    EXPECT_EQ(eq.curCycle(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueLifetimeDeath, DestroyingScheduledEventAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ASSERT_DEATH(
        {
            EventQueue eq;
            auto event = std::make_unique<LambdaEvent>([] {});
            eq.schedule(event.get(), 10);
            event.reset(); // still scheduled: must abort, not dangle
        },
        "destroyed while scheduled");
}

TEST(EventQueueLifetime, RunLimitAdvancesTimeWhenQueueDrainsEarly)
{
    // Regression: run(limit) used to stop the clock at the last event
    // when the queue drained before the horizon, so time-driven
    // observers missed their final window.
    EventQueue eq;
    std::vector<Cycles> probe_cycles;
    eq.cycleProbe().attach(
        [&](const Cycles &cycle) { probe_cycles.push_back(cycle); });

    LambdaEvent event([] {});
    eq.schedule(&event, 3);

    EXPECT_EQ(eq.run(30), 30u);
    EXPECT_EQ(eq.curCycle(), 30u);
    // Time advanced twice: to the event's cycle, then to the horizon.
    EXPECT_EQ(probe_cycles, (std::vector<Cycles>{3, 30}));

    // An unlimited run still stops at the last event processed.
    LambdaEvent later([] {});
    eq.schedule(&later, 40);
    EXPECT_EQ(eq.run(), 40u);
}

TEST(EventQueueLifetime, RunLimitDeliversStatsSamplerFinalWindow)
{
    // End-to-end form of the same regression: a sampler on a 10-cycle
    // interval must see the cycle-30 boundary even though the last
    // event fires at cycle 3.
    stats::StatGroup root("soc");
    EventQueue eq;
    obs::StatsSampler sampler(root, 10);
    sampler.attach(eq);

    LambdaEvent event([] {});
    eq.schedule(&event, 3);
    eq.run(30);

    ASSERT_EQ(sampler.numSamples(), 1u);
    sampler.finalize(eq.curCycle());
    // finalize() must not need to patch up a missing window: the run
    // itself delivered the cycle-30 sample, so it is a duplicate label
    // and gets skipped.
    EXPECT_EQ(sampler.numSamples(), 1u);
}

} // namespace
} // namespace capcheck
