#include <gtest/gtest.h>

#include <vector>

#include "base/logging.hh"
#include "sim/eventq.hh"

namespace capcheck
{
namespace
{

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    LambdaEvent e1([&] { order.push_back(1); });
    LambdaEvent e2([&] { order.push_back(2); });
    LambdaEvent e3([&] { order.push_back(3); });

    eq.schedule(&e2, 20);
    eq.schedule(&e3, 30);
    eq.schedule(&e1, 10);
    eq.run();

    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curCycle(), 30u);
}

TEST(EventQueue, SameCycleOrderedByPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    LambdaEvent low([&] { order.push_back(1); }, Event::requestPrio);
    LambdaEvent high([&] { order.push_back(0); }, Event::responsePrio);
    LambdaEvent first([&] { order.push_back(2); }, Event::defaultPrio);
    LambdaEvent second([&] { order.push_back(3); }, Event::defaultPrio);

    eq.schedule(&first, 5);
    eq.schedule(&second, 5);
    eq.schedule(&low, 5);
    eq.schedule(&high, 5);
    eq.run();

    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    LambdaEvent chained([&] { fired = 2; });
    LambdaEvent starter([&] {
        fired = 1;
        eq.schedule(&chained, eq.curCycle() + 3);
    });

    eq.schedule(&starter, 1);
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curCycle(), 4u);
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    bool fired = false;
    LambdaEvent event([&] { fired = true; });
    eq.schedule(&event, 10);
    eq.deschedule(&event);
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_FALSE(event.scheduled());
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    Cycles fired_at = 0;
    LambdaEvent event([&] { fired_at = eq.curCycle(); });
    eq.schedule(&event, 10);
    eq.reschedule(&event, 25);
    eq.run();
    EXPECT_EQ(fired_at, 25u);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    bool fired = false;
    LambdaEvent event([&] { fired = true; });
    eq.schedule(&event, 100);

    eq.run(50);
    EXPECT_FALSE(fired);
    EXPECT_EQ(eq.curCycle(), 50u);

    eq.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(eq.curCycle(), 100u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    LambdaEvent sentinel([] {});
    eq.schedule(&sentinel, 50);
    eq.run();

    LambdaEvent late([] {});
    EXPECT_THROW(eq.schedule(&late, 10), SimError);
}

TEST(EventQueue, DoubleSchedulePanics)
{
    EventQueue eq;
    LambdaEvent event([] {});
    eq.schedule(&event, 1);
    EXPECT_THROW(eq.schedule(&event, 2), SimError);
    eq.deschedule(&event);
}

TEST(EventQueue, DescheduleUnscheduledPanics)
{
    EventQueue eq;
    LambdaEvent event([] {});
    EXPECT_THROW(eq.deschedule(&event), SimError);
}

TEST(EventQueue, StepProcessesOneCycleOnly)
{
    EventQueue eq;
    std::vector<int> order;
    LambdaEvent a([&] { order.push_back(1); });
    LambdaEvent b([&] { order.push_back(2); });
    LambdaEvent c([&] { order.push_back(3); });
    eq.schedule(&a, 5);
    eq.schedule(&b, 5);
    eq.schedule(&c, 6);

    eq.step();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    eq.step();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PendingCountsLiveEvents)
{
    EventQueue eq;
    LambdaEvent a([] {});
    LambdaEvent b([] {});
    eq.schedule(&a, 1);
    eq.schedule(&b, 2);
    EXPECT_EQ(eq.pending(), 2u);
    eq.deschedule(&a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RescheduleAfterDescheduleViaStaleHeapEntry)
{
    // Regression guard for the lazy-deletion scheme: a stale heap entry
    // must not fire a rescheduled event twice.
    EventQueue eq;
    int count = 0;
    LambdaEvent event([&] { ++count; });
    eq.schedule(&event, 10);
    eq.reschedule(&event, 10); // same cycle, new sequence number
    eq.run();
    EXPECT_EQ(count, 1);
}

} // namespace
} // namespace capcheck
