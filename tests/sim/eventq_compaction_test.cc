/**
 * @file
 * The event queue's lazy-deletion housekeeping and the bucketed fast
 * kernel. Historically reschedule() stranded one cancelled entry per
 * call with nothing ever reclaiming them mid-run, so reschedule-heavy
 * components grew the heap without bound; compaction now bounds the
 * stored entries by the live count. The bucketed implementation must
 * replay the exact (when, priority, sequence) order of the reference
 * heap.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/eventq.hh"

namespace capcheck
{
namespace
{

TEST(EventQueueCompaction, RescheduleChurnIsBounded)
{
    for (const auto impl :
         {EventQueue::Impl::heap, EventQueue::Impl::bucketed}) {
        EventQueue q(impl);
        std::vector<std::unique_ptr<LambdaEvent>> events;
        for (int i = 0; i < 8; ++i) {
            events.push_back(std::make_unique<LambdaEvent>([] {}));
            q.schedule(events.back().get(), 100 + i);
        }

        for (int i = 0; i < 20000; ++i) {
            LambdaEvent *ev = events[i % events.size()].get();
            q.reschedule(ev, 100 + (i * 13) % 50);
            ASSERT_EQ(q.pending(), events.size());
            // The documented compaction bound; without it the heap
            // would hold ~20000 stale entries by the end of the loop.
            ASSERT_LE(q.storedEntries(), 2 * q.pending() + 1)
                << "iteration " << i;
        }

        for (auto &ev : events)
            q.deschedule(ev.get());
        EXPECT_EQ(q.pending(), 0u);
        EXPECT_LE(q.storedEntries(), 1u);
    }
}

/** Drive one scripted scenario and return the firing order. */
std::vector<int>
runScenario(EventQueue::Impl impl, Cycles *end_cycle)
{
    EventQueue q(impl);
    std::vector<int> order;
    std::vector<std::unique_ptr<LambdaEvent>> events;
    const auto add = [&](int id, int prio) {
        events.push_back(std::make_unique<LambdaEvent>(
            [&order, id] { order.push_back(id); }, prio));
        return events.back().get();
    };

    // Same cycle, mixed priorities and insertion orders; later events
    // of equal priority must fire in schedule order (sequence).
    q.schedule(add(0, Event::requestPrio), 10);
    q.schedule(add(1, Event::responsePrio), 10);
    q.schedule(add(2, Event::requestPrio), 10);
    q.schedule(add(3, Event::statsPrio), 5);
    q.schedule(add(4, Event::defaultPrio), 20);

    // Cancelled and rescheduled entries must be skipped.
    LambdaEvent *moved = add(5, Event::checkPrio);
    q.schedule(moved, 10);
    q.reschedule(moved, 15);
    LambdaEvent *dropped = add(6, Event::defaultPrio);
    q.schedule(dropped, 12);
    q.deschedule(dropped);

    // An event that schedules more work while running.
    LambdaEvent *tail = add(7, Event::defaultPrio);
    events.push_back(std::make_unique<LambdaEvent>(
        [&q, &order, tail] {
            order.push_back(8);
            q.schedule(tail, q.curCycle() + 3);
        },
        Event::arbitratePrio));
    q.schedule(events.back().get(), 15);

    *end_cycle = q.run(100);
    return order;
}

TEST(EventQueueCompaction, BucketedMatchesHeapOrder)
{
    Cycles heap_end = 0;
    Cycles bucketed_end = 0;
    const std::vector<int> heap_order =
        runScenario(EventQueue::Impl::heap, &heap_end);
    const std::vector<int> bucketed_order =
        runScenario(EventQueue::Impl::bucketed, &bucketed_end);

    EXPECT_EQ(heap_order,
              (std::vector<int>{3, 1, 0, 2, 5, 8, 7, 4}));
    EXPECT_EQ(bucketed_order, heap_order);
    // run(limit) advances to the horizon on both implementations.
    EXPECT_EQ(heap_end, 100u);
    EXPECT_EQ(bucketed_end, heap_end);
}

TEST(EventQueueCompaction, BucketedStepAndEmptyBehave)
{
    EventQueue q(EventQueue::Impl::bucketed);
    std::vector<int> order;
    LambdaEvent a([&order] { order.push_back(1); });
    LambdaEvent b([&order] { order.push_back(2); });
    q.schedule(&a, 4);
    q.schedule(&b, 9);

    q.step();
    EXPECT_EQ(order, (std::vector<int>{1}));
    EXPECT_EQ(q.curCycle(), 4u);
    EXPECT_EQ(q.pending(), 1u);

    q.step();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_TRUE(q.empty());

    q.step(); // empty queue: no-op
    EXPECT_EQ(q.curCycle(), 9u);
}

} // namespace
} // namespace capcheck
