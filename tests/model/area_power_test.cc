#include <gtest/gtest.h>

#include "model/area_power.hh"
#include "workloads/kernel.hh"

namespace capcheck::model
{
namespace
{

TEST(AreaModel, PaperAnchors)
{
    // 256-entry CapChecker ~ 30k LUTs.
    const auto full = AreaPowerModel::capCheckerLuts(256);
    EXPECT_NEAR(static_cast<double>(full), 30000.0, 1500.0);
    // CFU-class checker (register-based, no CAM): under 100 LUTs on a
    // ~10k LUT microcontroller system.
    EXPECT_LT(AreaPowerModel::capCheckerLuts(2), 100u);
    EXPECT_EQ(AreaPowerModel::microcontrollerLuts(), 10000u);
}

TEST(AreaModel, ScalesLinearlyWithEntries)
{
    const auto l128 = AreaPowerModel::capCheckerLuts(128);
    const auto l256 = AreaPowerModel::capCheckerLuts(256);
    const auto l512 = AreaPowerModel::capCheckerLuts(512);
    EXPECT_EQ(l512 - l256, 2 * (l256 - l128));
}

TEST(AreaModel, CheriCpuLargerThanPlain)
{
    EXPECT_GT(AreaPowerModel::cpuLuts(true),
              AreaPowerModel::cpuLuts(false));
}

TEST(AreaModel, AccelAreaGrowsWithParallelismAndPorts)
{
    const auto &small = workloads::kernelSpec("bfs_bulk");    // ilp 4
    const auto &big = workloads::kernelSpec("viterbi");       // ilp 128
    EXPECT_GT(AreaPowerModel::accelLuts(big, 8),
              AreaPowerModel::accelLuts(small, 8));
    EXPECT_EQ(AreaPowerModel::accelLuts(small, 8),
              8 * AreaPowerModel::accelLuts(small, 1));
}

TEST(AreaModel, SystemAreaOverheadNearFifteenPercent)
{
    // Across all benchmarks, adding the 256-entry CapChecker costs
    // roughly the paper's ~15%.
    for (const std::string &name : workloads::allKernelNames()) {
        const auto base =
            AreaPowerModel::cpuLuts(true) +
            AreaPowerModel::accelLuts(workloads::kernelSpec(name), 8);
        const double overhead =
            static_cast<double>(AreaPowerModel::capCheckerLuts(256)) /
            static_cast<double>(base);
        EXPECT_GT(overhead, 0.05) << name;
        EXPECT_LT(overhead, 0.30) << name;
    }
}

TEST(PowerModel, StaticGrowsWithArea)
{
    EXPECT_GT(AreaPowerModel::staticPowerW(200000),
              AreaPowerModel::staticPowerW(100000));
}

TEST(PowerModel, DynamicScalesWithActivity)
{
    const double idle = AreaPowerModel::dynamicPowerW(100000, 0.0);
    const double busy = AreaPowerModel::dynamicPowerW(100000, 1.0);
    EXPECT_EQ(idle, 0.0);
    EXPECT_GT(busy, 0.0);
    // Activity is clamped.
    EXPECT_EQ(AreaPowerModel::dynamicPowerW(100000, 5.0), busy);
}

TEST(PowerModel, CapCheckerPowerIsSmallShare)
{
    const double system =
        AreaPowerModel::totalPowerW(200000, 0.3);
    const double checker = AreaPowerModel::capCheckerPowerW(256, 0.3);
    EXPECT_LT(checker / system, 0.10);
    EXPECT_GT(checker, 0.0);
}

} // namespace
} // namespace capcheck::model
