/**
 * @file
 * FIPS-197 known-answer validation of the AES-256 primitives used by
 * the aes kernel.
 */

#include <gtest/gtest.h>

#include "workloads/kernels/aes_core.hh"

namespace capcheck::workloads::kernels::aes
{
namespace
{

TEST(AesCore, Fips197AppendixC3KnownAnswer)
{
    // FIPS-197 Appendix C.3 (AES-256):
    //   key       000102...1f
    //   plaintext 00112233445566778899aabbccddeeff
    //   cipher    8ea2b7ca516745bfeafc49904b496089
    Key key;
    for (unsigned i = 0; i < keyBytes; ++i)
        key[i] = static_cast<std::uint8_t>(i);

    Block plain;
    for (unsigned i = 0; i < blockBytes; ++i)
        plain[i] = static_cast<std::uint8_t>(i * 0x11);

    const Block expect = {0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45,
                          0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
                          0x60, 0x89};

    const Block got = encryptBlock(plain, expandKey(key));
    EXPECT_EQ(got, expect);
}

TEST(AesCore, KeyScheduleStartsWithKeyAndIsDeterministic)
{
    // The first 32 bytes of the schedule are the key itself (FIPS-197
    // section 5.2); the remainder is pinned transitively by the
    // Appendix C.3 known-answer test above.
    Key key;
    for (unsigned i = 0; i < keyBytes; ++i)
        key[i] = static_cast<std::uint8_t>(i);
    const Schedule w = expandKey(key);

    for (unsigned i = 0; i < keyBytes; ++i)
        EXPECT_EQ(w[i], key[i]);
    EXPECT_EQ(expandKey(key), w);

    // Changing one key bit changes the final round key.
    Key key2 = key;
    key2[0] ^= 1;
    const Schedule w2 = expandKey(key2);
    bool tail_differs = false;
    for (unsigned i = 224; i < w.size(); ++i)
        tail_differs |= w[i] != w2[i];
    EXPECT_TRUE(tail_differs);
}

TEST(AesCore, SboxIsAPermutation)
{
    bool seen[256] = {};
    for (unsigned i = 0; i < 256; ++i) {
        EXPECT_FALSE(seen[sbox[i]]);
        seen[sbox[i]] = true;
    }
    EXPECT_EQ(sbox[0x00], 0x63);
    EXPECT_EQ(sbox[0x53], 0xed);
}

TEST(AesCore, XtimeMatchesGf256Doubling)
{
    EXPECT_EQ(xtime(0x57), 0xae);
    EXPECT_EQ(xtime(0xae), 0x47);
    EXPECT_EQ(xtime(0x80), 0x1b);
    EXPECT_EQ(xtime(0x01), 0x02);
}

TEST(AesCore, DistinctKeysDistinctCiphertexts)
{
    Key key_a{};
    Key key_b{};
    key_b[31] = 1; // single-bit key difference
    Block plain{};
    const Block a = encryptBlock(plain, expandKey(key_a));
    const Block b = encryptBlock(plain, expandKey(key_b));
    EXPECT_NE(a, b);
}

} // namespace
} // namespace capcheck::workloads::kernels::aes
