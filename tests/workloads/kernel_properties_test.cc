/**
 * @file
 * Algorithm-level property tests for the MachSuite kernels. Unlike the
 * per-kernel check() (which compares against a reference of the *same*
 * algorithm), these validate mathematical properties from the buffer
 * contents alone — so a kernel whose "reference" shared a bug with its
 * implementation would still be caught.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "workloads/host_accessor.hh"
#include "workloads/kernel.hh"

namespace capcheck::workloads
{
namespace
{

struct RunKernel
{
    explicit RunKernel(const std::string &name, std::uint64_t seed = 7)
        : kernel(createKernel(name)), mem(kernel->spec())
    {
        Rng rng(seed);
        kernel->init(mem, rng);
        // Snapshot inputs before execution.
        for (ObjectId obj = 0; obj < kernel->spec().buffers.size();
             ++obj)
            before.push_back(mem.bufferData(obj));
        kernel->run(mem);
    }

    template <typename T>
    std::vector<T>
    typed(ObjectId obj, bool pre = false) const
    {
        const auto &raw = pre ? before[obj] : mem.bufferData(obj);
        std::vector<T> out(raw.size() / sizeof(T));
        std::memcpy(out.data(), raw.data(), out.size() * sizeof(T));
        return out;
    }

    std::unique_ptr<Kernel> kernel;
    HostAccessor mem;
    std::vector<std::vector<std::uint8_t>> before;
};

template <typename T>
void
checkSortedPermutation(const char *name)
{
    RunKernel run(name);
    const auto input = run.template typed<T>(0, /*pre=*/true);
    const auto output = run.template typed<T>(0);
    ASSERT_EQ(input.size(), output.size()) << name;

    EXPECT_TRUE(std::is_sorted(output.begin(), output.end())) << name;
    auto in_sorted = input;
    std::sort(in_sorted.begin(), in_sorted.end());
    EXPECT_EQ(output, in_sorted)
        << name << ": output is not a permutation of the input";
}

TEST(KernelProperties, SortsProduceSortedPermutations)
{
    checkSortedPermutation<std::int32_t>("sort_merge");
    checkSortedPermutation<std::uint32_t>("sort_radix");
}

TEST(KernelProperties, FftStridedPreservesEnergy)
{
    // Parseval: sum |x|^2 == (1/N) sum |X|^2. This holds only for a
    // genuine Fourier transform, whatever the output ordering.
    RunKernel run("fft_strided");
    const auto in_r = run.typed<double>(0, true);
    const auto in_i = run.typed<double>(1, true);
    const auto out_r = run.typed<double>(0);
    const auto out_i = run.typed<double>(1);
    const std::size_t n = in_r.size();

    double time_energy = 0;
    double freq_energy = 0;
    for (std::size_t i = 0; i < n; ++i) {
        time_energy += in_r[i] * in_r[i] + in_i[i] * in_i[i];
        freq_energy += out_r[i] * out_r[i] + out_i[i] * out_i[i];
    }
    EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
                1e-6 * time_energy);
}

TEST(KernelProperties, FftStridedDcComponentIsSum)
{
    // X[0] = sum x[i] regardless of output permutation (bin 0 stays
    // at index 0 under bit reversal).
    RunKernel run("fft_strided");
    const auto in_r = run.typed<double>(0, true);
    const auto in_i = run.typed<double>(1, true);
    const auto out_r = run.typed<double>(0);
    const auto out_i = run.typed<double>(1);

    double sum_r = 0;
    double sum_i = 0;
    for (std::size_t i = 0; i < in_r.size(); ++i) {
        sum_r += in_r[i];
        sum_i += in_i[i];
    }
    EXPECT_NEAR(out_r[0], sum_r, 1e-9 * std::fabs(sum_r) + 1e-9);
    EXPECT_NEAR(out_i[0], sum_i, 1e-9 * std::fabs(sum_i) + 1e-9);
}

TEST(KernelProperties, FftTransposeMatchesDirectDft)
{
    // Full cross-validation against an O(n^2) DFT.
    RunKernel run("fft_transpose");
    const auto in_r = run.typed<float>(0, true);
    const auto in_i = run.typed<float>(1, true);
    const auto out_r = run.typed<float>(0);
    const auto out_i = run.typed<float>(1);
    const std::size_t n = in_r.size();

    for (const std::size_t k : {std::size_t{0}, std::size_t{1},
                                std::size_t{37}, std::size_t{256},
                                n - 1}) {
        double acc_r = 0;
        double acc_i = 0;
        for (std::size_t t = 0; t < n; ++t) {
            const double angle = -2.0 * M_PI *
                                 static_cast<double>(k * t) /
                                 static_cast<double>(n);
            acc_r += in_r[t] * std::cos(angle) -
                     in_i[t] * std::sin(angle);
            acc_i += in_r[t] * std::sin(angle) +
                     in_i[t] * std::cos(angle);
        }
        EXPECT_NEAR(out_r[k], acc_r, 2e-2) << "bin " << k;
        EXPECT_NEAR(out_i[k], acc_i, 2e-2) << "bin " << k;
    }
}

TEST(KernelProperties, KmpMatchesNaiveSearch)
{
    RunKernel run("kmp");
    const auto pattern = run.typed<std::uint8_t>(0, true);
    const auto text = run.typed<std::uint8_t>(1, true);
    const auto n_matches = run.typed<std::int32_t>(3)[0];

    std::int32_t naive = 0;
    for (std::size_t i = 0; i + pattern.size() <= text.size(); ++i) {
        if (std::equal(pattern.begin(), pattern.end(),
                       text.begin() + static_cast<long>(i)))
            ++naive;
    }
    EXPECT_GT(naive, 0); // the small alphabet guarantees matches
    EXPECT_EQ(n_matches, naive);
}

TEST(KernelProperties, GemmEntriesMatchDotProducts)
{
    for (const char *name : {"gemm_ncubed", "gemm_blocked"}) {
        RunKernel run(name);
        const auto a = run.typed<float>(0, true);
        const auto b = run.typed<float>(1, true);
        const auto c = run.typed<float>(2);
        const unsigned dim = 64;

        for (const unsigned idx : {0u, 63u, 64u * 17 + 3, 4095u}) {
            const unsigned i = idx / dim;
            const unsigned j = idx % dim;
            double dot = 0;
            for (unsigned k = 0; k < dim; ++k)
                dot += static_cast<double>(a[i * dim + k]) *
                       static_cast<double>(b[k * dim + j]);
            EXPECT_NEAR(c[idx], dot, 1e-3) << name << " @" << idx;
        }
    }
}

TEST(KernelProperties, BfsLevelsAreConsistentWithEdges)
{
    for (const char *name : {"bfs_bulk", "bfs_queue"}) {
        RunKernel run(name);
        const auto begin = run.typed<std::int32_t>(0, true);
        const auto end = run.typed<std::int32_t>(1, true);
        const auto edges = run.typed<std::int32_t>(2, true);
        const auto level = run.typed<std::int8_t>(3);

        EXPECT_EQ(level[0], 0) << name;
        for (std::size_t node = 0; node < begin.size(); ++node) {
            if (level[node] < 0)
                continue;
            for (std::int32_t e = begin[node]; e < end[node]; ++e) {
                const auto child =
                    static_cast<std::size_t>(edges[e]);
                // A discovered child is never more than one level
                // deeper than its parent (tree edges: exactly one,
                // unless the horizon limit cut it off).
                if (level[child] >= 0) {
                    EXPECT_LE(level[child], level[node] + 1)
                        << name << " node " << node;
                }
            }
        }
        // In a tree rooted at 0, most nodes are discovered.
        const std::size_t discovered = static_cast<std::size_t>(
            std::count_if(level.begin(), level.end(),
                          [](std::int8_t l) { return l >= 0; }));
        EXPECT_GT(discovered, level.size() / 2) << name;
    }
}

TEST(KernelProperties, NwAlignmentIsValidAndScoresMatch)
{
    RunKernel run("nw");
    const auto seq_a = run.typed<std::int32_t>(0, true);
    const auto seq_b = run.typed<std::int32_t>(1, true);
    const auto score = run.typed<std::int32_t>(2);
    const auto aligned_a = run.typed<std::int32_t>(4);
    const auto aligned_b = run.typed<std::int32_t>(5);

    const auto len = static_cast<std::size_t>(aligned_a[0]);
    ASSERT_EQ(static_cast<std::size_t>(aligned_b[0]), len);
    ASSERT_GE(len, seq_a.size());

    // Removing gaps recovers the original sequences.
    std::vector<std::int32_t> recovered_a;
    std::vector<std::int32_t> recovered_b;
    std::int32_t replayed_score = 0;
    for (std::size_t k = 0; k < len; ++k) {
        const std::int32_t ca = aligned_a[1 + k];
        const std::int32_t cb = aligned_b[1 + k];
        ASSERT_FALSE(ca == -1 && cb == -1);
        if (ca != -1)
            recovered_a.push_back(ca);
        if (cb != -1)
            recovered_b.push_back(cb);
        if (ca == -1 || cb == -1)
            replayed_score += -1; // gap
        else
            replayed_score += (ca == cb) ? 1 : -1;
    }
    EXPECT_EQ(recovered_a, seq_a);
    EXPECT_EQ(recovered_b, seq_b);

    // The emitted alignment's score equals the DP matrix corner.
    const unsigned dp_dim = 129;
    EXPECT_EQ(replayed_score, score[128 * dp_dim + 128]);
}

TEST(KernelProperties, ViterbiPathBeatsRandomPaths)
{
    RunKernel run("viterbi");
    const auto trans = run.typed<float>(0, true);
    const auto emission = run.typed<float>(1, true);
    const auto init = run.typed<float>(2, true);
    const auto obs = run.typed<std::int32_t>(3, true);
    const auto path = run.typed<std::int32_t>(4);

    constexpr unsigned states = 64;
    constexpr unsigned symbols = 32;

    auto path_cost = [&](const std::vector<std::int32_t> &p) {
        double cost =
            init[static_cast<std::size_t>(p[0])] +
            emission[static_cast<std::size_t>(p[0]) * symbols +
                     static_cast<std::size_t>(obs[0])];
        for (std::size_t t = 1; t < obs.size(); ++t) {
            cost += trans[static_cast<std::size_t>(p[t - 1]) * states +
                          static_cast<std::size_t>(p[t])] +
                    emission[static_cast<std::size_t>(p[t]) * symbols +
                             static_cast<std::size_t>(obs[t])];
        }
        return cost;
    };

    const double best = path_cost(path);
    Rng rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::int32_t> random_path(obs.size());
        for (auto &s : random_path)
            s = static_cast<std::int32_t>(rng.nextBounded(states));
        EXPECT_LE(best, path_cost(random_path) + 1e-3);
    }
    // Local perturbations of the optimal path are no better either.
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::int32_t> tweaked(path.begin(), path.end());
        tweaked[rng.nextBounded(tweaked.size())] =
            static_cast<std::int32_t>(rng.nextBounded(states));
        EXPECT_LE(best, path_cost(tweaked) + 1e-3);
    }
}

TEST(KernelProperties, AesCiphertextLooksRandomAndIsKeyed)
{
    // Black-box cipher sanity: ciphertext differs from plaintext in
    // roughly half the bits, and a different seed (key) yields a
    // completely different ciphertext.
    RunKernel run_a("aes", 7);
    RunKernel run_b("aes", 8);

    const auto pre = run_a.typed<std::uint8_t>(0, true);
    const auto post_a = run_a.typed<std::uint8_t>(0);
    const auto post_b = run_b.typed<std::uint8_t>(0);

    unsigned flipped = 0;
    for (std::size_t i = 32; i < pre.size(); ++i)
        flipped += static_cast<unsigned>(
            std::popcount(static_cast<unsigned>(pre[i] ^ post_a[i])));
    const unsigned data_bits = (128 - 32) * 8;
    EXPECT_GT(flipped, data_bits / 3);
    EXPECT_LT(flipped, data_bits * 2 / 3);

    unsigned same_bytes = 0;
    for (std::size_t i = 32; i < post_a.size(); ++i)
        same_bytes += post_a[i] == post_b[i];
    EXPECT_LT(same_bytes, 12u); // ~1/256 chance per byte
}

TEST(KernelProperties, Stencil2dIsLinearInTheFilter)
{
    // The convolution output's global sum equals
    // sum(filter) applied over the interior neighbourhood sums — a
    // cheap independent linearity check on one output row.
    RunKernel run("stencil2d");
    const auto orig = run.typed<std::int32_t>(0, true);
    const auto sol = run.typed<std::int32_t>(1);
    const auto filter = run.typed<std::int32_t>(2, true);
    const unsigned cols = 64;

    for (const unsigned r : {0u, 5u, 100u}) {
        for (const unsigned c : {0u, 30u, 61u}) {
            std::int64_t acc = 0;
            for (unsigned fr = 0; fr < 3; ++fr) {
                for (unsigned fc = 0; fc < 3; ++fc) {
                    acc += static_cast<std::int64_t>(
                               filter[fr * 3 + fc]) *
                           orig[(r + fr) * cols + (c + fc)];
                }
            }
            EXPECT_EQ(sol[r * cols + c], acc);
        }
    }
}

TEST(KernelProperties, SpmvOutputsAreLinearCombinations)
{
    // out = A*x implies out scales if we recompute from the stored
    // sparse structure; validate several rows of both formats.
    {
        RunKernel run("spmv_crs");
        const auto val = run.typed<double>(0, true);
        const auto cols = run.typed<std::int32_t>(1, true);
        const auto rowptr = run.typed<std::int32_t>(2, true);
        const auto vec = run.typed<float>(3, true);
        const auto out = run.typed<float>(4);
        for (const unsigned r : {0u, 100u, 493u}) {
            double acc = 0;
            for (std::int32_t k = rowptr[r]; k < rowptr[r + 1]; ++k)
                acc += val[static_cast<std::size_t>(k)] *
                       vec[static_cast<std::size_t>(cols[
                           static_cast<std::size_t>(k)])];
            EXPECT_NEAR(out[r], acc, 1e-4 + 1e-4 * std::fabs(acc));
        }
    }
    {
        RunKernel run("spmv_ellpack");
        const auto nzval = run.typed<float>(0, true);
        const auto cols = run.typed<std::int32_t>(1, true);
        const auto vec = run.typed<float>(2, true);
        const auto out = run.typed<float>(3);
        for (const unsigned r : {0u, 250u, 493u}) {
            double acc = 0;
            for (unsigned k = 0; k < 10; ++k)
                acc += nzval[r * 10 + k] *
                       vec[static_cast<std::size_t>(
                           cols[r * 10 + k])];
            EXPECT_NEAR(out[r], acc, 1e-4 + 1e-4 * std::fabs(acc));
        }
    }
}

TEST(KernelProperties, MdForcesAreFinite)
{
    for (const char *name : {"md_grid", "md_knn"}) {
        RunKernel run(name);
        const auto &spec = run.kernel->spec();
        for (ObjectId obj = 0; obj < spec.buffers.size(); ++obj) {
            if (spec.buffers[obj].name.rfind("frc", 0) != 0)
                continue;
            const auto forces = run.typed<double>(obj);
            double magnitude = 0;
            for (const double f : forces) {
                EXPECT_TRUE(std::isfinite(f)) << name;
                magnitude += std::fabs(f);
            }
            EXPECT_GT(magnitude, 0.0)
                << name << " " << spec.buffers[obj].name;
        }
    }
}

} // namespace
} // namespace capcheck::workloads
