#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/host_accessor.hh"
#include "workloads/kernel.hh"

namespace capcheck::workloads
{
namespace
{

/** Parameterized over all 19 MachSuite benchmarks. */
class KernelSuite : public ::testing::TestWithParam<std::string>
{
};

TEST_P(KernelSuite, InitRunCheckPasses)
{
    const auto kernel = createKernel(GetParam());
    HostAccessor mem(kernel->spec());
    Rng rng(12345);
    kernel->init(mem, rng);
    kernel->run(mem);
    EXPECT_TRUE(kernel->check(mem));
}

TEST_P(KernelSuite, CheckFailsWithoutRun)
{
    // Every kernel's check must actually depend on run() having
    // happened — a check that passes on untouched outputs is vacuous.
    const auto kernel = createKernel(GetParam());
    HostAccessor mem(kernel->spec());
    Rng rng(777);
    kernel->init(mem, rng);
    EXPECT_FALSE(kernel->check(mem));
}

TEST_P(KernelSuite, DeterministicAcrossRuns)
{
    const auto run_once = [&](std::uint64_t seed) {
        const auto kernel = createKernel(GetParam());
        HostAccessor mem(kernel->spec());
        Rng rng(seed);
        kernel->init(mem, rng);
        kernel->run(mem);
        return mem.bufferData(0);
    };
    EXPECT_EQ(run_once(42), run_once(42));
}

TEST_P(KernelSuite, WorksAcrossSeeds)
{
    for (const std::uint64_t seed : {1ull, 99ull, 31415ull}) {
        const auto kernel = createKernel(GetParam());
        HostAccessor mem(kernel->spec());
        Rng rng(seed);
        kernel->init(mem, rng);
        kernel->run(mem);
        EXPECT_TRUE(kernel->check(mem)) << "seed " << seed;
    }
}

TEST_P(KernelSuite, SpecIsWellFormed)
{
    const KernelSpec &spec = kernelSpec(GetParam());
    EXPECT_EQ(spec.name, GetParam());
    EXPECT_FALSE(spec.buffers.empty());
    std::set<std::string> names;
    for (const BufferDef &buf : spec.buffers) {
        EXPECT_GT(buf.size, 0u);
        EXPECT_TRUE(names.insert(buf.name).second)
            << "duplicate buffer name " << buf.name;
    }
    EXPECT_GE(spec.timing.ilp, 1u);
    EXPECT_GE(spec.timing.maxOutstanding, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, KernelSuite,
                         ::testing::ValuesIn(allKernelNames()),
                         [](const auto &info) { return info.param; });

TEST(KernelRegistry, HasAllNineteenBenchmarks)
{
    EXPECT_EQ(allKernelNames().size(), 19u);
}

TEST(KernelRegistry, UnknownNameIsFatal)
{
    EXPECT_THROW(createKernel("definitely-not-a-benchmark"), SimError);
}

struct Table2Golden
{
    std::uint32_t count;
    std::uint64_t min;
    std::uint64_t max;
};

TEST(KernelRegistry, BufferFootprintsMatchPaperTable2)
{
    // Golden values transcribed from Table 2 of the paper (8 accelerator
    // instances per benchmark).
    const std::map<std::string, Table2Golden> golden = {
        {"aes", {8, 128, 128}},
        {"backprop", {56, 12, 10432}},
        {"bfs_bulk", {40, 40, 16384}},
        {"bfs_queue", {40, 40, 16384}},
        {"fft_strided", {48, 4096, 4096}},
        {"fft_transpose", {16, 2048, 2048}},
        {"gemm_blocked", {24, 16384, 16384}},
        {"gemm_ncubed", {24, 16384, 16384}},
        {"kmp", {32, 4, 64824}},
        {"md_grid", {56, 256, 2560}},
        {"md_knn", {56, 1024, 16384}},
        {"nw", {48, 512, 66564}},
        {"sort_merge", {16, 8192, 8192}},
        {"sort_radix", {32, 16, 8192}},
        {"spmv_crs", {40, 1976, 6664}},
        {"spmv_ellpack", {32, 1976, 19760}},
        {"stencil2d", {24, 36, 32768}},
        {"stencil3d", {24, 8, 65536}},
        {"viterbi", {40, 256, 16384}},
    };

    for (const std::string &name : allKernelNames()) {
        ASSERT_TRUE(golden.count(name)) << name;
        const Table2Row row = makeTable2Row(kernelSpec(name), 8);
        EXPECT_EQ(row.bufferCount, golden.at(name).count) << name;
        EXPECT_EQ(row.minBytes, golden.at(name).min) << name;
        EXPECT_EQ(row.maxBytes, golden.at(name).max) << name;
    }
}

TEST(KernelSpecs, SpecHelpers)
{
    const KernelSpec &spec = kernelSpec("gemm_ncubed");
    EXPECT_EQ(spec.totalBytes(), 3u * 16384u);
    EXPECT_EQ(spec.minBufferBytes(), 16384u);
    EXPECT_EQ(spec.maxBufferBytes(), 16384u);
    EXPECT_EQ(spec.buffer(0).name, "A");
    EXPECT_THROW(spec.buffer(99), SimError);
}

} // namespace
} // namespace capcheck::workloads
