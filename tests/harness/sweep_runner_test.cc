/**
 * @file
 * Tests for the SweepRunner: parallel determinism (the paper grid must
 * produce identical numbers at any --jobs), result caching, submission
 * -order dedup, JSON output, and failure propagation from workers.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "harness/result_json.hh"
#include "harness/sweep_runner.hh"
#include "system/soc_config_builder.hh"

using namespace capcheck;
using namespace capcheck::harness;
using system::SocConfig;
using system::SocConfigBuilder;
using system::SystemMode;

namespace
{

SocConfig
smallConfig(SystemMode mode, std::uint64_t seed = 1)
{
    return SocConfigBuilder()
        .mode(mode)
        .numInstances(2)
        .seed(seed)
        .build();
}

/** A small but non-trivial batch: distinct seeds, modes, and a mix. */
std::vector<RunRequest>
sampleBatch()
{
    std::vector<RunRequest> requests;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        requests.push_back(RunRequest::single(
            "aes", smallConfig(SystemMode::ccpuAccel, seed)));
        requests.push_back(RunRequest::single(
            "aes", smallConfig(SystemMode::ccpuCaccel, seed)));
    }
    requests.push_back(RunRequest::mixed(
        {"aes", "backprop"}, smallConfig(SystemMode::ccpuCaccel)));
    return requests;
}

SweepRunner::Options
silent(unsigned jobs, bool cache = true)
{
    SweepRunner::Options opts;
    opts.jobs = jobs;
    opts.cacheEnabled = cache;
    opts.progress = nullptr;
    return opts;
}

} // namespace

TEST(SweepRunner, SerialAndParallelResultsAreBitIdentical)
{
    const auto requests = sampleBatch();

    SweepRunner serial(silent(1, /*cache=*/false));
    SweepRunner parallel(silent(8, /*cache=*/false));

    const auto a = serial.run(requests, "determinism");
    const auto b = parallel.run(requests, "determinism");

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        // RunResult::operator== compares every field, including the
        // serialized statistics — bit-identical, not just same cycles.
        EXPECT_EQ(a[i].result, b[i].result) << requests[i].label();
        // And the serialized JSON (which omits wall time) matches
        // byte for byte.
        EXPECT_EQ(runJson(a[i].request, a[i].result),
                  runJson(b[i].request, b[i].result));
    }
    EXPECT_EQ(serial.simulationsExecuted(),
              parallel.simulationsExecuted());
}

TEST(SweepRunner, JsonTopologySweepIsJobsInvariant)
{
    // A sweep over a JSON-loaded topology must stay byte-identical at
    // any --jobs, exactly like the builtin shapes.
    namespace fs = std::filesystem;
    const fs::path path =
        fs::temp_directory_path() / "sweep-two-channel.topo.json";
    {
        std::ofstream os(path);
        os << R"({
  "name": "two-channel",
  "nodes": [
    {"name": "protect", "kind": "protect", "params": {"scheme": "auto"}},
    {"name": "memctrl0", "kind": "memctrl", "params": {}},
    {"name": "memctrl1", "kind": "memctrl", "params": {}},
    {"name": "router", "kind": "router", "params": {"channels": 2}},
    {"name": "checkstage", "kind": "checkstage",
     "params": {"checker": "protect"}},
    {"name": "xbar", "kind": "xbar", "params": {}},
    {"name": "accels", "kind": "accel_pool", "params": {"xbar": "xbar"}}
  ],
  "edges": [
    {"from": "xbar.mem_side", "to": "checkstage.cpu_side"},
    {"from": "checkstage.mem_side", "to": "router.cpu_side"},
    {"from": "router.mem_side0", "to": "memctrl0.cpu_side"},
    {"from": "router.mem_side1", "to": "memctrl1.cpu_side"}
  ]
})";
    }

    std::vector<RunRequest> requests;
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        SocConfig cfg = SocConfigBuilder()
                            .mode(SystemMode::ccpuCaccel)
                            .numInstances(2)
                            .collectStats(true)
                            .seed(seed)
                            .topologyFile(path.string())
                            .build();
        requests.push_back(RunRequest::single("aes", cfg));
    }
    // Same point without the topology file: must hash differently.
    requests.push_back(RunRequest::single(
        "aes", SocConfigBuilder()
                   .mode(SystemMode::ccpuCaccel)
                   .numInstances(2)
                   .collectStats(true)
                   .seed(1)
                   .build()));
    EXPECT_NE(requests[0].hash(), requests[2].hash());
    EXPECT_NE(requests[0].label().find("topology="),
              std::string::npos);

    SweepRunner serial(silent(1, /*cache=*/false));
    SweepRunner parallel(silent(8, /*cache=*/false));
    const auto a = serial.run(requests, "topo");
    const auto b = parallel.run(requests, "topo");
    fs::remove(path);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].result, b[i].result) << requests[i].label();
        EXPECT_EQ(runJson(a[i].request, a[i].result),
                  runJson(b[i].request, b[i].result));
    }
    // The JSON record names the topology file so a run is
    // reproducible from its artifact alone.
    EXPECT_NE(runJson(a[0].request, a[0].result).find("topologyFile"),
              std::string::npos);
    EXPECT_EQ(runJson(a[2].request, a[2].result).find("topologyFile"),
              std::string::npos);
}

TEST(SweepRunner, RepeatedRequestIsServedFromCache)
{
    SweepRunner runner(silent(2));
    const auto req =
        RunRequest::single("aes", smallConfig(SystemMode::ccpuAccel));

    const auto first = runner.run({req}, "cache");
    EXPECT_FALSE(first.front().cacheHit);
    EXPECT_EQ(runner.simulationsExecuted(), 1u);

    const auto second = runner.run({req}, "cache");
    EXPECT_TRUE(second.front().cacheHit);
    EXPECT_EQ(runner.simulationsExecuted(), 1u) << "re-simulated a "
                                                   "cached request";
    EXPECT_EQ(runner.cacheHits(), 1u);
    EXPECT_EQ(first.front().result, second.front().result);
}

TEST(SweepRunner, DuplicatesInOneBatchSimulateOnce)
{
    SweepRunner runner(silent(4));
    const auto req =
        RunRequest::single("aes", smallConfig(SystemMode::ccpuAccel));

    const auto outcomes =
        runner.run({req, req, req, req}, "dedup");
    ASSERT_EQ(outcomes.size(), 4u);
    EXPECT_EQ(runner.simulationsExecuted(), 1u);
    EXPECT_FALSE(outcomes[0].cacheHit);
    for (std::size_t i = 1; i < outcomes.size(); ++i) {
        EXPECT_TRUE(outcomes[i].cacheHit) << i;
        EXPECT_EQ(outcomes[i].result, outcomes[0].result);
    }
}

TEST(SweepRunner, CacheDisabledReSimulates)
{
    SweepRunner runner(silent(1, /*cache=*/false));
    const auto req =
        RunRequest::single("aes", smallConfig(SystemMode::ccpuAccel));

    runner.run({req, req}, "nocache");
    EXPECT_EQ(runner.simulationsExecuted(), 2u);
    EXPECT_EQ(runner.cacheHits(), 0u);
}

TEST(SweepRunner, RejectsInvalidRequestBeforeSimulating)
{
    SweepRunner runner(silent(1));
    SocConfig bad = smallConfig(SystemMode::ccpuAccel);
    bad.numInstances = 0;
    std::vector<RunRequest> requests = {
        RunRequest::single("aes", bad, 1)};
    EXPECT_THROW(runner.run(requests, "invalid"), SimError);
    EXPECT_EQ(runner.simulationsExecuted(), 0u);
}

TEST(SweepRunner, WorkerFailurePropagatesToCaller)
{
    SweepRunner runner(silent(2));
    std::vector<RunRequest> requests = {
        RunRequest::single("aes", smallConfig(SystemMode::ccpuAccel)),
        RunRequest::single("no_such_kernel",
                           smallConfig(SystemMode::ccpuAccel))};
    EXPECT_THROW(runner.run(requests, "failing"), SimError);
}

TEST(SweepRunner, ProgressLinesNameEveryRun)
{
    std::ostringstream progress;
    SweepRunner::Options opts = silent(1);
    opts.progress = &progress;
    SweepRunner runner(opts);

    const auto req = RunRequest::single(
        "aes", smallConfig(SystemMode::ccpuAccel));
    runner.run({req, req}, "progress");

    const std::string lines = progress.str();
    EXPECT_NE(lines.find("aes"), std::string::npos);
    EXPECT_NE(lines.find("cache=miss"), std::string::npos);
    EXPECT_NE(lines.find("cache=hit"), std::string::npos);
    EXPECT_NE(lines.find("wall="), std::string::npos);
}

TEST(SweepRunner, EndOfSweepSummaryReportsTheProfile)
{
    std::ostringstream progress;
    SweepRunner::Options opts = silent(2);
    opts.progress = &progress;
    SweepRunner runner(opts);

    const auto req = RunRequest::single(
        "aes", smallConfig(SystemMode::ccpuAccel));
    runner.run({req, req}, "summary");

    const std::string lines = progress.str();
    EXPECT_NE(lines.find("[sweep summary]"), std::string::npos);
    EXPECT_NE(lines.find("2 requests"), std::string::npos);
    EXPECT_NE(lines.find("1 executed"), std::string::npos);
    EXPECT_NE(lines.find("1 cached"), std::string::npos);
    EXPECT_NE(lines.find("utilization="), std::string::npos);
}

TEST(SweepRunner, ManifestCarriesTheProfilingBlock)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "capcheck_sweep_profile_test";
    fs::remove_all(dir);

    SweepRunner::Options opts = silent(2);
    opts.jsonDir = dir.string();
    SweepRunner runner(opts);
    const auto req = RunRequest::single(
        "aes", smallConfig(SystemMode::ccpuAccel));
    runner.run({req, req}, "profiled");

    std::ifstream is(dir / "profiled.manifest.json");
    std::stringstream body;
    body << is.rdbuf();
    const std::string manifest = body.str();
    EXPECT_NE(manifest.find("\"profile\""), std::string::npos);
    // Only one unique request, so one worker ran despite jobs=2.
    EXPECT_NE(manifest.find("\"workers\": 1"), std::string::npos);
    EXPECT_NE(manifest.find("\"executed\": 1"), std::string::npos);
    EXPECT_NE(manifest.find("\"cacheHits\": 1"), std::string::npos);
    EXPECT_NE(manifest.find("\"workerUtilization\""),
              std::string::npos);
    EXPECT_NE(manifest.find("\"wallMillis\""), std::string::npos);

    fs::remove_all(dir);
}

TEST(SweepRunner, WritesRunFilesAndManifest)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "capcheck_sweep_test";
    fs::remove_all(dir);

    SweepRunner::Options opts = silent(2);
    opts.jsonDir = dir.string();
    SweepRunner runner(opts);

    const auto requests = std::vector<RunRequest>{
        RunRequest::single("aes", smallConfig(SystemMode::ccpuAccel)),
        RunRequest::single("aes",
                           smallConfig(SystemMode::ccpuCaccel))};
    const auto outcomes = runner.run(requests, "json_sweep");

    for (const auto &out : outcomes) {
        const fs::path file =
            dir / ("run-" + out.request.hashHex() + ".json");
        ASSERT_TRUE(fs::exists(file)) << file;

        std::ifstream is(file);
        std::stringstream body;
        body << is.rdbuf();
        EXPECT_EQ(body.str(), runJson(out.request, out.result));
        EXPECT_NE(body.str().find("\"requestHash\""),
                  std::string::npos);
        EXPECT_EQ(body.str().find("wall"), std::string::npos)
            << "wall-clock leaked into deterministic JSON";
    }

    const fs::path manifest = dir / "json_sweep.manifest.json";
    ASSERT_TRUE(fs::exists(manifest));
    std::ifstream is(manifest);
    std::stringstream body;
    body << is.rdbuf();
    EXPECT_NE(body.str().find("\"sweep\": \"json_sweep\""),
              std::string::npos);
    EXPECT_NE(body.str().find("\"runs\": 2"), std::string::npos);

    fs::remove_all(dir);
}

TEST(SweepRunner, RunOneCachesAcrossCalls)
{
    SweepRunner::Options o;
    o.jobs = 1;
    SweepRunner runner(o);
    const auto req = RunRequest::single(
        "fft_strided", smallConfig(SystemMode::cpuAccel, 12345));

    const auto r1 = runner.runOne(req);
    EXPECT_EQ(runner.simulationsExecuted(), 1u);
    const auto r2 = runner.runOne(req);
    EXPECT_EQ(runner.simulationsExecuted(), 1u);
    EXPECT_EQ(r1, r2);
}
