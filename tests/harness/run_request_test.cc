/** @file Tests for RunRequest construction, hashing, and execution. */

#include <gtest/gtest.h>

#include "harness/run_request.hh"
#include "system/soc_config_builder.hh"

using namespace capcheck;
using namespace capcheck::harness;
using system::SocConfig;
using system::SocConfigBuilder;
using system::SystemMode;

namespace
{

SocConfig
smallConfig(SystemMode mode = SystemMode::ccpuAccel)
{
    return SocConfigBuilder().mode(mode).numInstances(2).build();
}

} // namespace

TEST(RunRequest, SingleResolvesZeroTasksAtConstruction)
{
    // The old runMode() helper deferred num_tasks = 0 resolution into
    // SocSystem; RunRequest resolves it immediately, so the stored
    // request always states its real task count.
    SocConfig cfg; // numInstances = 8
    const auto implicit = RunRequest::single("aes", cfg);
    const auto explicit8 = RunRequest::single("aes", cfg, 8);

    EXPECT_EQ(implicit.numTasks, 8u);
    EXPECT_EQ(implicit, explicit8);
    EXPECT_EQ(implicit.hash(), explicit8.hash());
}

TEST(RunRequest, TaskCountChangesHash)
{
    SocConfig cfg;
    EXPECT_NE(RunRequest::single("aes", cfg, 4).hash(),
              RunRequest::single("aes", cfg, 8).hash());
}

TEST(RunRequest, HashIsStableAcrossCalls)
{
    const auto req = RunRequest::single("gemm_ncubed", smallConfig());
    EXPECT_EQ(req.hash(), req.hash());
    EXPECT_EQ(req.hashHex().size(), 16u);
}

TEST(RunRequest, EveryConfigFieldFeedsTheHash)
{
    const auto base = RunRequest::single("aes", smallConfig());

    auto with = [](SocConfig cfg) {
        return RunRequest::single("aes", std::move(cfg), 2).hash();
    };

    SocConfig seed_cfg = smallConfig();
    seed_cfg.seed = 2;
    EXPECT_NE(base.hash(), with(seed_cfg));

    SocConfig lat_cfg = smallConfig();
    lat_cfg.memLatency = 31;
    EXPECT_NE(base.hash(), with(lat_cfg));

    SocConfig cost_cfg = smallConfig();
    cost_cfg.cpuCosts.missPenalty += 1;
    EXPECT_NE(base.hash(), with(cost_cfg));

    SocConfig drv_cfg = smallConfig();
    drv_cfg.driverCosts.capDerive += 1;
    EXPECT_NE(base.hash(), with(drv_cfg));
}

TEST(RunRequest, BenchmarkNameChangesHash)
{
    const auto cfg = smallConfig();
    EXPECT_NE(RunRequest::single("aes", cfg).hash(),
              RunRequest::single("fft_strided", cfg).hash());
}

TEST(RunRequest, MixedDiffersFromSingle)
{
    const auto cfg = smallConfig();
    const auto single = RunRequest::single("aes", cfg, 1);
    const auto mixed = RunRequest::mixed({"aes"}, cfg);

    // Same benchmark list and task count, but they were constructed
    // identically — these two really are the same experiment.
    EXPECT_FALSE(mixed.isMixed());
    EXPECT_EQ(single.hash(), mixed.hash());

    const auto two = RunRequest::mixed({"aes", "aes"}, cfg);
    EXPECT_TRUE(two.isMixed());
    EXPECT_EQ(two.numTasks, 2u);
    EXPECT_NE(two.hash(), single.hash());
}

TEST(RunRequest, LabelNamesTheExperiment)
{
    const auto req =
        RunRequest::single("aes", smallConfig(SystemMode::ccpuAccel), 2);
    const std::string label = req.label();
    EXPECT_NE(label.find("aes"), std::string::npos);
    EXPECT_NE(label.find("tasks=2"), std::string::npos);
    EXPECT_NE(label.find("seed=1"), std::string::npos);
}

TEST(RunRequest, ExecuteRunsTheSimulation)
{
    const auto req = RunRequest::single("aes", smallConfig(), 1);
    const auto result = req.execute();
    EXPECT_TRUE(result.functionallyCorrect);
    EXPECT_GT(result.totalCycles, 0u);
    EXPECT_EQ(result.numTasks, 1u);
}

TEST(RunRequest, ExecuteIsDeterministic)
{
    const auto req = RunRequest::single("backprop", smallConfig(), 2);
    EXPECT_EQ(req.execute(), req.execute());
}
