/**
 * @file
 * Tests for the disk-backed result cache: round-trip fidelity,
 * persistence across instances (the daemon-restart contract),
 * version/hash validation of on-disk entries, and the LRU byte-cap
 * eviction that bounds growth.
 */

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "harness/disk_cache.hh"

using namespace capcheck;
using harness::DiskResultCache;

namespace
{

namespace fs = std::filesystem;

struct TempDir
{
    fs::path path;

    TempDir()
    {
        path = fs::temp_directory_path() /
               ("capcheck_disk_cache_" +
                std::to_string(::getpid()) + "_" +
                std::to_string(counter++));
        fs::remove_all(path);
    }
    ~TempDir() { fs::remove_all(path); }

    static inline int counter = 0;
};

system::RunResult
sampleResult(std::uint64_t cycles, std::string stats = "s")
{
    system::RunResult r;
    r.benchmark = "aes";
    r.mode = system::SystemMode::ccpuCaccel;
    r.numTasks = 2;
    r.totalCycles = cycles;
    r.kernelCycles = cycles / 2;
    r.functionallyCorrect = true;
    r.statsText = std::move(stats);
    r.statsJson = "{\n  \"x\": 1\n}";
    return r;
}

} // namespace

TEST(DiskResultCache, StoreLookupRoundTripsEveryField)
{
    TempDir dir;
    DiskResultCache cache(dir.path.string());
    const auto result = sampleResult(1000);
    cache.store(0xabcdef0123456789ull, result);
    const auto back = cache.lookup(0xabcdef0123456789ull);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, result);
}

TEST(DiskResultCache, MissOnUnknownHash)
{
    TempDir dir;
    DiskResultCache cache(dir.path.string());
    EXPECT_FALSE(cache.lookup(42).has_value());
    const auto stats = cache.stats();
    EXPECT_EQ(stats.lookups, 1u);
    EXPECT_EQ(stats.hits, 0u);
}

TEST(DiskResultCache, EntriesSurviveANewInstance)
{
    TempDir dir;
    const auto result = sampleResult(77);
    {
        DiskResultCache first(dir.path.string());
        first.store(7, result);
    }
    // A second instance (a restarted daemon) indexes what is on disk.
    DiskResultCache second(dir.path.string());
    EXPECT_EQ(second.stats().entries, 1u);
    const auto back = second.lookup(7);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, result);
    EXPECT_EQ(second.stats().hits, 1u);
}

TEST(DiskResultCache, CorruptEntryIsDroppedNotServed)
{
    TempDir dir;
    DiskResultCache cache(dir.path.string());
    cache.store(9, sampleResult(1));
    ASSERT_TRUE(cache.lookup(9).has_value());

    // Truncate the file behind the cache's back.
    std::ofstream(cache.pathFor(9),
                  std::ios::trunc)
        << "{\"version\": 1, \"hash\"";
    DiskResultCache fresh(dir.path.string());
    EXPECT_FALSE(fresh.lookup(9).has_value());
    // The poisoned file is gone, not retried forever.
    EXPECT_FALSE(fs::exists(fresh.pathFor(9)));
}

TEST(DiskResultCache, HashMismatchInsideTheFileIsAMiss)
{
    TempDir dir;
    DiskResultCache cache(dir.path.string());
    cache.store(0x1111, sampleResult(1));
    // Rename the entry so the name claims a different hash than the
    // body records.
    fs::rename(cache.pathFor(0x1111), cache.pathFor(0x2222));
    DiskResultCache fresh(dir.path.string());
    EXPECT_FALSE(fresh.lookup(0x2222).has_value());
}

TEST(DiskResultCache, ForeignFilesAreIgnored)
{
    TempDir dir;
    fs::create_directories(dir.path);
    std::ofstream(dir.path / "README.txt") << "not a cache entry";
    std::ofstream(dir.path / "zz.json") << "{}";
    DiskResultCache cache(dir.path.string());
    EXPECT_EQ(cache.stats().entries, 0u);
    cache.store(1, sampleResult(1));
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_TRUE(fs::exists(dir.path / "README.txt"));
}

TEST(DiskResultCache, ByteCapEvictsLeastRecentlyUsed)
{
    TempDir dir;
    // Measure one entry, then size the cap for about two of them.
    std::uint64_t oneEntry = 0;
    {
        DiskResultCache probe(dir.path.string());
        probe.store(1, sampleResult(1));
        oneEntry = probe.stats().bytes;
        ASSERT_GT(oneEntry, 0u);
    }
    fs::remove_all(dir.path);

    DiskResultCache cache(dir.path.string(), oneEntry * 2 + 1);
    cache.store(1, sampleResult(1));
    cache.store(2, sampleResult(2));
    EXPECT_EQ(cache.stats().entries, 2u);

    // Touch 1 so 2 is the LRU victim when 3 arrives.
    ASSERT_TRUE(cache.lookup(1).has_value());
    cache.store(3, sampleResult(3));

    const auto stats = cache.stats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_GE(stats.evictions, 1u);
    EXPECT_TRUE(cache.lookup(1).has_value());
    EXPECT_FALSE(cache.lookup(2).has_value()) << "evicted the wrong "
                                                 "entry";
    EXPECT_TRUE(cache.lookup(3).has_value());
    EXPECT_FALSE(fs::exists(cache.pathFor(2)));
}

TEST(DiskResultCache, UnboundedWhenCapIsZero)
{
    TempDir dir;
    DiskResultCache cache(dir.path.string(), 0);
    for (std::uint64_t h = 1; h <= 8; ++h)
        cache.store(h, sampleResult(h));
    EXPECT_EQ(cache.stats().entries, 8u);
    EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(DiskResultCache, StatsTrackOccupancyAndTraffic)
{
    TempDir dir;
    DiskResultCache cache(dir.path.string());
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);

    cache.store(1, sampleResult(1));
    cache.store(2, sampleResult(2, std::string(500, 'x')));
    const auto stats = cache.stats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_GT(stats.bytes, 500u);

    cache.lookup(1);
    cache.lookup(1);
    cache.lookup(99);
    EXPECT_EQ(cache.stats().lookups, 3u);
    EXPECT_EQ(cache.stats().hits, 2u);
}
