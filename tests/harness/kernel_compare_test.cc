/**
 * @file
 * The kernel comparator harness: `--kernel compare` runs one request
 * under the reference and fast kernels back to back and hard-fails on
 * any divergence. These tests pin the differential gate itself — fast
 * results equal ref results on a small grid, compare mode returns the
 * reference result, and the request hash/label carry the kernel axis
 * only when it deviates from ref.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/logging.hh"
#include "harness/run_request.hh"
#include "system/soc_config_builder.hh"
#include "system/soc_system.hh"

using namespace capcheck;
using namespace capcheck::harness;
using system::SocConfig;
using system::SocConfigBuilder;
using system::SystemMode;

namespace
{

SocConfig
smallConfig(SystemMode mode, sim::SimKernel kernel)
{
    return SocConfigBuilder()
        .mode(mode)
        .numInstances(2)
        .collectStats(true)
        .simKernel(kernel)
        .build();
}

} // namespace

TEST(KernelCompare, FastMatchesRefAcrossModes)
{
    // The protected mode exercises the CapTable/CapCache fast indexes;
    // the unprotected one still covers the bucketed event queue and
    // retry-wake replay. Full-stats runs so the comparison covers the
    // entire stats dump, not just the headline cycle count.
    for (const SystemMode mode :
         {SystemMode::ccpuCaccel, SystemMode::ccpuAccel}) {
        const auto ref = RunRequest::single(
            "aes", smallConfig(mode, sim::SimKernel::ref), 2);
        const auto fast = RunRequest::single(
            "aes", smallConfig(mode, sim::SimKernel::fast), 2);

        const auto ref_result = ref.execute();
        const auto fast_result = fast.execute();
        EXPECT_TRUE(fast_result == ref_result)
            << "fast kernel diverged in mode "
            << system::systemModeName(mode) << ": totalCycles "
            << fast_result.totalCycles << " vs "
            << ref_result.totalCycles;
        EXPECT_EQ(fast_result.statsJson, ref_result.statsJson);
    }
}

TEST(KernelCompare, FastMatchesRefWithCapCache)
{
    const SocConfig base = SocConfigBuilder()
                               .mode(SystemMode::ccpuCaccel)
                               .numInstances(2)
                               .capTableEntries(8)
                               .capCache(4)
                               .collectStats(true)
                               .build();
    auto with = [&](sim::SimKernel k) {
        return RunRequest::single(
            "gemm_ncubed",
            SocConfigBuilder(base).simKernel(k).build(), 2);
    };
    const auto ref_result = with(sim::SimKernel::ref).execute();
    const auto fast_result = with(sim::SimKernel::fast).execute();
    EXPECT_TRUE(fast_result == ref_result);
}

TEST(KernelCompare, CompareModeReturnsReferenceResult)
{
    const auto compare = RunRequest::single(
        "aes", smallConfig(SystemMode::ccpuCaccel, sim::SimKernel::compare),
        1);
    const auto ref = RunRequest::single(
        "aes", smallConfig(SystemMode::ccpuCaccel, sim::SimKernel::ref),
        1);

    system::RunResult compared;
    ASSERT_NO_THROW(compared = compare.execute());
    EXPECT_TRUE(compared == ref.execute());
}

TEST(KernelCompare, SocSystemRefusesCompareConfig)
{
    // compare is a harness-layer mode; a SocSystem only ever sees ref
    // or fast. Constructing one directly must fail loudly.
    const SocConfig cfg =
        smallConfig(SystemMode::ccpuCaccel, sim::SimKernel::compare);
    EXPECT_THROW(system::SocSystem soc(cfg), SimError);
}

TEST(KernelCompare, KernelFeedsHashAndLabelOnlyWhenNotRef)
{
    const auto ref = RunRequest::single(
        "aes", smallConfig(SystemMode::ccpuCaccel, sim::SimKernel::ref),
        1);
    const auto fast = RunRequest::single(
        "aes", smallConfig(SystemMode::ccpuCaccel, sim::SimKernel::fast),
        1);

    // Distinct experiments for caching purposes...
    EXPECT_NE(ref.hash(), fast.hash());
    // ...but ref keeps the pre-registry hash and label, so existing
    // baselines and cached results stay valid.
    EXPECT_EQ(ref.label().find("kernel="), std::string::npos);
    EXPECT_NE(fast.label().find(" kernel=fast"), std::string::npos);
}
