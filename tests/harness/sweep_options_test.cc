/**
 * @file
 * Tests for the unified SweepOptions struct: the fluent builder, the
 * environment-variable defaults, and the per-run observability path
 * derivation shared by SweepRunner and the capcheckd daemon.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "harness/run_request.hh"
#include "harness/sweep_options.hh"
#include "system/soc_config_builder.hh"

using namespace capcheck;
using harness::RunRequest;
using harness::SweepOptions;
using system::SocConfigBuilder;
using system::SystemMode;

namespace
{

RunRequest
sampleRequest()
{
    return RunRequest::single("aes",
                              SocConfigBuilder()
                                  .mode(SystemMode::ccpuCaccel)
                                  .numInstances(2)
                                  .build());
}

/** setenv/unsetenv with restore-on-scope-exit. */
struct ScopedEnv
{
    std::string key;
    std::string saved;
    bool hadValue = false;

    ScopedEnv(const std::string &key, const char *value) : key(key)
    {
        if (const char *old = std::getenv(key.c_str())) {
            saved = old;
            hadValue = true;
        }
        if (value)
            ::setenv(key.c_str(), value, 1);
        else
            ::unsetenv(key.c_str());
    }
    ~ScopedEnv()
    {
        if (hadValue)
            ::setenv(key.c_str(), saved.c_str(), 1);
        else
            ::unsetenv(key.c_str());
    }
};

} // namespace

TEST(SweepOptions, FluentBuilderReadsAsOneExpression)
{
    const SweepOptions opts = SweepOptions{}
                                  .withJobs(4)
                                  .withCache(false)
                                  .withJsonDir("out")
                                  .withTraceDir("tr")
                                  .withSampleInterval(100)
                                  .withAuditDir("au")
                                  .withFlightDir("fl")
                                  .withLatencyDir("la")
                                  .withTopN(3)
                                  .withServerSocket("/tmp/s.sock")
                                  .withCacheDir("/tmp/cache")
                                  .withCacheMaxBytes(1234);
    EXPECT_EQ(opts.jobs, 4u);
    EXPECT_FALSE(opts.cacheEnabled);
    EXPECT_EQ(opts.jsonDir, "out");
    EXPECT_EQ(opts.traceDir, "tr");
    EXPECT_EQ(opts.sampleInterval, 100u);
    EXPECT_EQ(opts.auditDir, "au");
    EXPECT_EQ(opts.flightDir, "fl");
    EXPECT_EQ(opts.latencyDir, "la");
    EXPECT_EQ(opts.topN, 3u);
    EXPECT_EQ(opts.serverSocket, "/tmp/s.sock");
    EXPECT_EQ(opts.cacheDir, "/tmp/cache");
    EXPECT_EQ(opts.cacheMaxBytes, 1234u);
}

TEST(SweepOptions, DefaultsAreQuietInProcessAndCached)
{
    const SweepOptions opts;
    EXPECT_EQ(opts.jobs, 0u);
    EXPECT_TRUE(opts.cacheEnabled);
    EXPECT_EQ(opts.progress, nullptr);
    EXPECT_TRUE(opts.serverSocket.empty());
    EXPECT_TRUE(opts.cacheDir.empty());
    EXPECT_GT(opts.cacheMaxBytes, 0u) << "disk cache must not "
                                         "default to unbounded";
}

TEST(SweepOptions, FromEnvironmentReadsTheCapcheckVariables)
{
    ScopedEnv dir("CAPCHECK_CACHE_DIR", "/tmp/envcache");
    ScopedEnv cap("CAPCHECK_CACHE_MAX_BYTES", "4096");
    ScopedEnv sock("CAPCHECK_SERVER", "/tmp/env.sock");
    const SweepOptions opts = SweepOptions::fromEnvironment();
    EXPECT_EQ(opts.cacheDir, "/tmp/envcache");
    EXPECT_EQ(opts.cacheMaxBytes, 4096u);
    EXPECT_EQ(opts.serverSocket, "/tmp/env.sock");
}

TEST(SweepOptions, FromEnvironmentFallsBackToDefaults)
{
    ScopedEnv dir("CAPCHECK_CACHE_DIR", nullptr);
    ScopedEnv cap("CAPCHECK_CACHE_MAX_BYTES", nullptr);
    ScopedEnv sock("CAPCHECK_SERVER", nullptr);
    const SweepOptions opts = SweepOptions::fromEnvironment();
    EXPECT_TRUE(opts.cacheDir.empty());
    EXPECT_TRUE(opts.serverSocket.empty());
    EXPECT_EQ(opts.cacheMaxBytes, SweepOptions{}.cacheMaxBytes);
}

TEST(SweepOptions, ObsPathsAreKeyedByTheRequestHash)
{
    const RunRequest req = sampleRequest();
    const std::string hex = req.hashHex();
    const SweepOptions opts = SweepOptions{}
                                  .withTraceDir("tr")
                                  .withSampleInterval(50)
                                  .withAuditDir("au")
                                  .withFlightDir("fl")
                                  .withLatencyDir("la")
                                  .withTopN(7);
    const obs::ObsOptions oo = harness::obsOptionsFor(opts, req);
    EXPECT_EQ(oo.traceFile, "tr/run-" + hex + ".trace.json");
    EXPECT_EQ(oo.samplesFile, "tr/run-" + hex + ".samples.json");
    EXPECT_EQ(oo.sampleInterval, 50u);
    EXPECT_EQ(oo.auditFile, "au/run-" + hex + ".audit.jsonl");
    EXPECT_EQ(oo.flightFile, "fl/run-" + hex + ".flights.json");
    EXPECT_EQ(oo.latencyFile, "la/run-" + hex + ".latency.json");
    EXPECT_EQ(oo.topN, 7u);
}

TEST(SweepOptions, SamplesFallBackToJsonDirWithoutTraceDir)
{
    const RunRequest req = sampleRequest();
    const SweepOptions opts =
        SweepOptions{}.withJsonDir("out").withSampleInterval(10);
    const obs::ObsOptions oo = harness::obsOptionsFor(opts, req);
    EXPECT_EQ(oo.samplesFile,
              "out/run-" + req.hashHex() + ".samples.json");
    EXPECT_TRUE(oo.traceFile.empty());
}

TEST(SweepOptions, NoArtefactsSelectedMeansNoPaths)
{
    const obs::ObsOptions oo =
        harness::obsOptionsFor(SweepOptions{}, sampleRequest());
    EXPECT_TRUE(oo.traceFile.empty());
    EXPECT_TRUE(oo.samplesFile.empty());
    EXPECT_TRUE(oo.auditFile.empty());
    EXPECT_TRUE(oo.flightFile.empty());
    EXPECT_TRUE(oo.latencyFile.empty());
}
