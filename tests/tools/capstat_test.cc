/**
 * @file
 * Tests for the capstat statdiff library: loading single-run and
 * merged latency artefacts, label-keyed merging, the regression diff
 * (tolerance semantics drive CI's perf gate) and the top-flights
 * table.
 */

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "statdiff.hh"

using namespace capcheck::tools;

namespace fs = std::filesystem;

namespace
{

class CapstatTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir = fs::temp_directory_path() / "capcheck_capstat";
        fs::remove_all(dir);
        fs::create_directories(dir);
    }

    void TearDown() override { fs::remove_all(dir); }

    std::string
    write(const std::string &name, const std::string &body)
    {
        const fs::path path = dir / name;
        std::ofstream os(path);
        os << body;
        return path.string();
    }

    static std::string
    runDoc(const std::string &label, double p50, double p95, double p99)
    {
        std::ostringstream os;
        os << "{\"label\": \"" << label
           << "\", \"flights\": {\"endToEnd\": {\"p50\": " << p50
           << ", \"p95\": " << p95 << ", \"p99\": " << p99 << "}}}";
        return os.str();
    }

    fs::path dir;
};

} // namespace

TEST_F(CapstatTest, LoadsSingleRunArtefacts)
{
    LatencyReport report;
    ASSERT_TRUE(loadLatencyDocument(
        write("a.json", runDoc("run-a", 10, 20, 30)), report));
    ASSERT_EQ(report.runs.size(), 1u);
    EXPECT_EQ(report.runs[0].label, "run-a");
    EXPECT_EQ(report.runs[0].metric("endToEnd.p99"), 30.0);
    EXPECT_TRUE(std::isnan(report.runs[0].metric("endToEnd.nope")));
}

TEST_F(CapstatTest, MergeSortsByLabelAndLastFileWins)
{
    LatencyReport report;
    ASSERT_TRUE(loadLatencyDocument(
        write("b.json", runDoc("zeta", 1, 2, 3)), report));
    ASSERT_TRUE(loadLatencyDocument(
        write("a.json", runDoc("alpha", 4, 5, 6)), report));
    ASSERT_TRUE(loadLatencyDocument(
        write("b2.json", runDoc("zeta", 7, 8, 9)), report));

    ASSERT_EQ(report.runs.size(), 2u);
    EXPECT_EQ(report.runs[0].label, "alpha");
    EXPECT_EQ(report.runs[1].label, "zeta");
    EXPECT_EQ(report.runs[1].metric("endToEnd.p99"), 9.0);
}

TEST_F(CapstatTest, MergedJsonRoundTrips)
{
    LatencyReport report;
    ASSERT_TRUE(loadLatencyDocument(
        write("a.json", runDoc("alpha", 4, 5, 6)), report));
    ASSERT_TRUE(loadLatencyDocument(
        write("z.json", runDoc("zeta", 1, 2, 3)), report));

    const std::string merged = mergedJson(report);
    LatencyReport reloaded;
    ASSERT_TRUE(loadLatencyDocument(write("merged.json", merged),
                                    reloaded));
    ASSERT_EQ(reloaded.runs.size(), 2u);
    EXPECT_EQ(reloaded.runs[0].metric("endToEnd.p95"), 5.0);
    // Deterministic bytes: serializing again is identical.
    EXPECT_EQ(mergedJson(reloaded), merged);
}

TEST_F(CapstatTest, DiffFlagsP99RegressionsBeyondTolerance)
{
    LatencyReport baseline;
    ASSERT_TRUE(loadLatencyDocument(
        write("base.json", runDoc("run-a", 30, 38, 40)), baseline));
    LatencyReport current;
    ASSERT_TRUE(loadLatencyDocument(
        write("cur.json", runDoc("run-a", 30, 38, 44)), current));

    DiffOptions opts;
    opts.tolerancePct = 5.0; // 40 -> 44 is +10%
    const DiffResult diff = diffReports(baseline, current, opts);
    ASSERT_EQ(diff.deltas.size(), 3u);
    EXPECT_TRUE(diff.regression());
    const MetricDelta &p99 = diff.deltas.back();
    EXPECT_EQ(p99.metric, "endToEnd.p99");
    EXPECT_TRUE(p99.regression);
    EXPECT_NEAR(p99.pct, 10.0, 1e-9);

    opts.tolerancePct = 15.0;
    EXPECT_FALSE(diffReports(baseline, current, opts).regression());
}

TEST_F(CapstatTest, DiffImprovementsAndMatchesPass)
{
    LatencyReport baseline;
    ASSERT_TRUE(loadLatencyDocument(
        write("base.json", runDoc("run-a", 30, 38, 40)), baseline));
    LatencyReport current;
    ASSERT_TRUE(loadLatencyDocument(
        write("cur.json", runDoc("run-a", 25, 30, 32)), current));

    const DiffResult diff =
        diffReports(baseline, current, DiffOptions{});
    EXPECT_FALSE(diff.regression());
    for (const MetricDelta &d : diff.deltas)
        EXPECT_LT(d.pct, 0.0);
}

TEST_F(CapstatTest, DiffTracksMissingAndAddedRuns)
{
    LatencyReport baseline;
    ASSERT_TRUE(loadLatencyDocument(
        write("base.json", runDoc("gone", 1, 2, 3)), baseline));
    LatencyReport current;
    ASSERT_TRUE(loadLatencyDocument(
        write("cur.json", runDoc("fresh", 1, 2, 3)), current));

    const DiffResult diff =
        diffReports(baseline, current, DiffOptions{});
    EXPECT_TRUE(diff.deltas.empty());
    ASSERT_EQ(diff.missing.size(), 1u);
    EXPECT_EQ(diff.missing[0], "gone");
    ASSERT_EQ(diff.added.size(), 1u);
    EXPECT_EQ(diff.added[0], "fresh");
    // Coverage changes alone are not a latency regression.
    EXPECT_FALSE(diff.regression());
}

TEST_F(CapstatTest, DiffSkipsMetricsAbsentOnEitherSide)
{
    LatencyReport baseline;
    ASSERT_TRUE(loadLatencyDocument(
        write("base.json",
              "{\"label\": \"a\", \"flights\": {}}"),
        baseline));
    LatencyReport current;
    ASSERT_TRUE(loadLatencyDocument(
        write("cur.json", runDoc("a", 10, 20, 30)), current));

    const DiffResult diff =
        diffReports(baseline, current, DiffOptions{});
    EXPECT_TRUE(diff.deltas.empty());
    EXPECT_FALSE(diff.regression());
}

TEST_F(CapstatTest, ZeroBaselineCountsAsRegressionWhenCurrentIsSlower)
{
    LatencyReport baseline;
    ASSERT_TRUE(loadLatencyDocument(
        write("base.json", runDoc("a", 0, 0, 0)), baseline));
    LatencyReport current;
    ASSERT_TRUE(loadLatencyDocument(
        write("cur.json", runDoc("a", 5, 5, 5)), current));

    EXPECT_TRUE(
        diffReports(baseline, current, DiffOptions{}).regression());
}

TEST_F(CapstatTest, RejectsMalformedDocuments)
{
    LatencyReport report;
    std::string error;
    EXPECT_FALSE(loadLatencyDocument(
        write("bad.json", "{\"nope\": 1}"), report, &error));
    EXPECT_NE(error.find("label"), std::string::npos);
    EXPECT_FALSE(loadLatencyDocument(
        write("syntax.json", "{"), report, &error));
    EXPECT_FALSE(
        loadLatencyDocument((dir / "absent.json").string(), report,
                            &error));
}

TEST_F(CapstatTest, PrintDiffReportsVerdictPerMetric)
{
    LatencyReport baseline;
    ASSERT_TRUE(loadLatencyDocument(
        write("base.json", runDoc("run-a", 30, 38, 40)), baseline));
    LatencyReport current;
    ASSERT_TRUE(loadLatencyDocument(
        write("cur.json", runDoc("run-a", 30, 38, 80)), current));

    DiffOptions opts;
    std::ostringstream os;
    const bool regressed =
        printDiff(os, diffReports(baseline, current, opts), opts);
    EXPECT_TRUE(regressed);
    EXPECT_NE(os.str().find("REGRESSION"), std::string::npos);
    EXPECT_NE(os.str().find("FAIL"), std::string::npos);
}

TEST_F(CapstatTest, TopFlightsTableRendersHops)
{
    const std::string doc =
        "{\"label\": \"demo\", \"topN\": 2, \"issued\": 2, "
        "\"completed\": 2, \"denied\": 1, \"flights\": ["
        "{\"flight\": 3, \"task\": 1, \"cmd\": \"read\", "
        "\"addr\": \"0xbeef\", \"cache\": \"miss\", \"denied\": true, "
        "\"hops\": {\"xbarWait\": 2, \"check\": 60, \"drain\": 1, "
        "\"mem\": 0}, \"endToEnd\": 63}]}";
    std::ostringstream os;
    std::string error;
    ASSERT_TRUE(printTopFlights(os, write("f.json", doc), 0, &error))
        << error;
    EXPECT_NE(os.str().find("demo"), std::string::npos);
    EXPECT_NE(os.str().find("0xbeef"), std::string::npos);
    EXPECT_NE(os.str().find("63"), std::string::npos);
    EXPECT_NE(os.str().find("yes"), std::string::npos);
}
