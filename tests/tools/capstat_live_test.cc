/**
 * @file
 * Tests for `capstat live`: argument parsing, the one-shot dashboard
 * rendered against a live capcheckd, and the --latency-out document,
 * which must load like any other latency artefact and self-diff green
 * at tolerance 0 so daemon-side p95 gates can ride on it.
 */

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/run_request.hh"
#include "live.hh"
#include "service/remote.hh"
#include "service/server.hh"
#include "statdiff.hh"
#include "system/soc_config_builder.hh"

using namespace capcheck;
using namespace capcheck::tools;
using harness::RunRequest;
using harness::SweepOptions;
using service::RemoteService;
using service::Server;
using service::ServerOptions;
using system::SocConfigBuilder;
using system::SystemMode;

namespace
{

namespace fs = std::filesystem;

struct TempDir
{
    fs::path path;

    TempDir()
    {
        path = fs::temp_directory_path() /
               ("capcheck_live_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter++));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string str(const std::string &leaf) const
    {
        return (path / leaf).string();
    }

    static inline int counter = 0;
};

std::vector<RunRequest>
sampleBatch()
{
    std::vector<RunRequest> requests;
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        requests.push_back(
            RunRequest::single("aes", SocConfigBuilder()
                                          .mode(SystemMode::ccpuAccel)
                                          .numInstances(2)
                                          .seed(seed)
                                          .build()));
        requests.push_back(
            RunRequest::single("aes", SocConfigBuilder()
                                          .mode(SystemMode::ccpuCaccel)
                                          .numInstances(2)
                                          .seed(seed)
                                          .build()));
    }
    return requests;
}

} // namespace

TEST(CapstatLive, ParseArgs)
{
    LiveOptions opts;
    std::string error;
    EXPECT_TRUE(parseLiveArgs({"/tmp/d.sock", "--once",
                               "--latency-out=/tmp/l.json",
                               "--label", "svc", "--interval", "25"},
                              opts, &error))
        << error;
    EXPECT_EQ(opts.socketPath, "/tmp/d.sock");
    EXPECT_TRUE(opts.once);
    EXPECT_EQ(opts.count, 1u) << "--once forces a single poll";
    EXPECT_EQ(opts.latencyOut, "/tmp/l.json");
    EXPECT_EQ(opts.label, "svc");
    EXPECT_EQ(opts.intervalMillis, 25u);

    LiveOptions counted;
    EXPECT_TRUE(
        parseLiveArgs({"--count=3", "/tmp/d.sock"}, counted, &error));
    EXPECT_EQ(counted.count, 3u);

    LiveOptions bad;
    EXPECT_FALSE(parseLiveArgs({}, bad, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseLiveArgs({"/tmp/d.sock", "--bogus"}, bad,
                               &error));
    EXPECT_FALSE(
        parseLiveArgs({"/tmp/a.sock", "/tmp/b.sock"}, bad, &error));
}

TEST(CapstatLive, AbsentSocketFailsWithExitTwo)
{
    TempDir dir;
    LiveOptions opts;
    opts.socketPath = dir.str("nothing.sock");
    opts.once = true;
    opts.count = 1;
    std::ostringstream out;
    EXPECT_EQ(runLive(out, opts), 2);
    EXPECT_NE(out.str().find("cannot connect"), std::string::npos);
}

TEST(CapstatLive, OnceRendersDashboardAndLatencyDocumentGates)
{
    TempDir dir;
    ServerOptions so;
    so.socketPath = dir.str("d.sock");
    so.jobs = 2;
    Server server(so);
    server.start();

    {
        SweepOptions copts;
        copts.serverSocket = so.socketPath;
        copts.progress = nullptr;
        RemoteService client(copts);
        client.submit(sampleBatch(), "live");
        client.submit(sampleBatch(), "live"); // cache hits too
    }

    LiveOptions opts;
    opts.socketPath = so.socketPath;
    opts.once = true;
    opts.count = 1;
    opts.latencyOut = dir.str("service.latency.json");
    opts.label = "service";
    std::ostringstream out;
    EXPECT_EQ(runLive(out, opts), 0) << out.str();
    const std::string text = out.str();

    // Non-empty dashboard: handshake line, the counter summaries and
    // the span percentile table all rendered from live daemon state.
    EXPECT_NE(text.find("capcheckd on " + so.socketPath),
              std::string::npos);
    EXPECT_EQ(text.find("warning"), std::string::npos)
        << "no protocol/build skew against our own daemon";
    EXPECT_NE(text.find("-- poll 1 --"), std::string::npos);
    EXPECT_NE(text.find("requests: received=8"), std::string::npos)
        << text;
    EXPECT_NE(text.find("executed=4"), std::string::npos);
    EXPECT_NE(text.find("endToEnd"), std::string::npos);
    EXPECT_NE(text.find("wire: in"), std::string::npos);

    server.stop();

    // The latency document is a first-class artefact: it loads, its
    // metrics are finite, and a self-diff at tolerance 0 is green.
    LatencyReport report;
    std::string error;
    ASSERT_TRUE(loadLatencyDocument(opts.latencyOut, report, &error))
        << error;
    ASSERT_EQ(report.runs.size(), 1u);
    EXPECT_EQ(report.runs[0].label, "service");
    const double p95 = report.runs[0].metric("endToEnd.p95");
    EXPECT_TRUE(std::isfinite(p95));
    EXPECT_GE(p95, 0.0);

    DiffOptions dopts;
    dopts.tolerancePct = 0.0;
    const DiffResult diff = diffReports(report, report, dopts);
    EXPECT_FALSE(diff.deltas.empty());
    std::ostringstream diag;
    EXPECT_FALSE(printDiff(diag, diff, dopts))
        << "self-diff must never regress: " << diag.str();
}
