/**
 * @file
 * Tests for the capstat prof library: loading single-run and merged
 * host-time profile artefacts, label-keyed merging, the domain-share
 * diff (percentage-point tolerance drives CI's attribution gate) and
 * the file-naming provenance in one-sided-label messages. A
 * round-trip test feeds a real RunProfile's json() through the
 * loader, pinning the producer and consumer to the same schema.
 */

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/prof.hh"
#include "prof.hh"
#include "statdiff.hh"

using namespace capcheck;
using namespace capcheck::tools;

namespace fs = std::filesystem;

namespace
{

class CapstatProfTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir = fs::temp_directory_path() / "capcheck_capstat_prof";
        fs::remove_all(dir);
        fs::create_directories(dir);
    }

    void TearDown() override { fs::remove_all(dir); }

    std::string
    write(const std::string &name, const std::string &body)
    {
        const fs::path path = dir / name;
        std::ofstream os(path);
        os << body;
        return path.string();
    }

    /** A profile doc whose domains carry the given shares of a 1 s
     *  wall. The final domain is "other" absorbing the remainder. */
    static std::string
    profDoc(const std::string &label,
            const std::vector<std::pair<std::string, double>> &shares)
    {
        const std::uint64_t wall = 1000000000ull;
        double used = 0;
        std::ostringstream os;
        os << "{\"schema\": \"capcheck.prof.v1\", \"label\": \""
           << label << "\", \"kernel\": \"ref\", \"wallNanos\": "
           << wall << ", \"domains\": [";
        for (const auto &[name, share] : shares) {
            os << "{\"domain\": \"" << name << "\", \"selfNanos\": "
               << static_cast<std::uint64_t>(share * wall)
               << ", \"totalNanos\": "
               << static_cast<std::uint64_t>(share * wall)
               << ", \"calls\": 10, \"share\": " << share << "},";
            used += share;
        }
        os << "{\"domain\": \"other\", \"selfNanos\": "
           << static_cast<std::uint64_t>((1 - used) * wall)
           << ", \"totalNanos\": "
           << static_cast<std::uint64_t>((1 - used) * wall)
           << ", \"calls\": 0, \"share\": " << (1 - used) << "}]"
           << ", \"sites\": [{\"domain\": \"" << shares[0].first
           << "\", \"name\": \"hot\", \"selfNanos\": 1, "
              "\"totalNanos\": 1, \"calls\": 1}]}";
        return os.str();
    }

    fs::path dir;
};

} // namespace

TEST_F(CapstatProfTest, LoadsSingleRunArtefacts)
{
    ProfReport report;
    ASSERT_TRUE(loadProfDocument(
        write("a.prof.json", profDoc("run-a", {{"capcheck", 0.4}})),
        report));
    ASSERT_EQ(report.runs.size(), 1u);
    EXPECT_EQ(report.runs[0].label, "run-a");
    EXPECT_EQ(report.runs[0].kernel, "ref");
    EXPECT_EQ(report.runs[0].wallNanos, 1000000000ull);
    EXPECT_DOUBLE_EQ(report.runs[0].domainShare("capcheck"), 0.4);
    EXPECT_TRUE(std::isnan(report.runs[0].domainShare("absent")));
    ASSERT_EQ(report.runs[0].sites.size(), 1u);
    EXPECT_EQ(report.runs[0].sites[0].name, "hot");
}

TEST_F(CapstatProfTest, MergeKeysRunsByLabelAndRoundTrips)
{
    ProfReport report;
    ASSERT_TRUE(loadProfDocument(
        write("a.prof.json", profDoc("run-a", {{"sim", 0.2}})),
        report));
    ASSERT_TRUE(loadProfDocument(
        write("b.prof.json", profDoc("run-b", {{"sim", 0.3}})),
        report));
    // Same label again: last file wins, no duplicate.
    ASSERT_TRUE(loadProfDocument(
        write("a2.prof.json", profDoc("run-a", {{"sim", 0.5}})),
        report));
    ASSERT_EQ(report.runs.size(), 2u);
    EXPECT_DOUBLE_EQ(report.find("run-a")->domainShare("sim"), 0.5);

    // Merged document loads back identically.
    const std::string merged = mergedProfJson(report);
    ProfReport reload;
    ASSERT_TRUE(loadProfDocument(write("merged.json", merged), reload));
    ASSERT_EQ(reload.runs.size(), 2u);
    EXPECT_DOUBLE_EQ(reload.find("run-b")->domainShare("sim"), 0.3);
    EXPECT_EQ(mergedProfJson(reload), merged);
}

TEST_F(CapstatProfTest, DiffGatesOnShareGrowthInPoints)
{
    ProfReport baseline;
    ASSERT_TRUE(loadProfDocument(
        write("base.json",
              profDoc("run-a", {{"capcheck", 0.10}, {"sim", 0.50}})),
        baseline));
    ProfReport current;
    ASSERT_TRUE(loadProfDocument(
        write("cur.json",
              profDoc("run-a", {{"capcheck", 0.16}, {"sim", 0.48}})),
        current));

    ProfDiffOptions opts;
    opts.tolerancePts = 3.0;
    const ProfDiffResult diff =
        diffProfReports(baseline, current, opts);
    EXPECT_TRUE(diff.regression());
    bool sawCapcheck = false;
    for (const ProfDelta &d : diff.deltas) {
        if (d.domain == "capcheck") {
            sawCapcheck = true;
            EXPECT_NEAR(d.deltaPts, 6.0, 1e-9);
            EXPECT_TRUE(d.regression);
        }
        if (d.domain == "sim") {
            EXPECT_FALSE(d.regression); // shrinking never regresses
        }
    }
    EXPECT_TRUE(sawCapcheck);

    // A looser tolerance passes.
    opts.tolerancePts = 10.0;
    EXPECT_FALSE(
        diffProfReports(baseline, current, opts).regression());
}

TEST_F(CapstatProfTest, DiffCatchesBrandNewDomains)
{
    ProfReport baseline;
    ASSERT_TRUE(loadProfDocument(
        write("base.json", profDoc("run-a", {{"sim", 0.5}})),
        baseline));
    ProfReport current;
    ASSERT_TRUE(loadProfDocument(
        write("cur.json",
              profDoc("run-a", {{"sim", 0.5}, {"harness", 0.2}})),
        current));

    ProfDiffOptions opts;
    opts.tolerancePts = 5.0;
    const ProfDiffResult diff =
        diffProfReports(baseline, current, opts);
    // "harness" was absent from the baseline (share 0) and now eats
    // 20% of the run: that is a regression, not a skipped comparison.
    EXPECT_TRUE(diff.regression());
}

TEST_F(CapstatProfTest, OneSidedLabelsNameTheFiles)
{
    ProfReport baseline;
    const std::string basePath =
        write("base.json", profDoc("gone", {{"sim", 0.5}}));
    ASSERT_TRUE(loadProfDocument(basePath, baseline));
    ProfReport current;
    const std::string curPath =
        write("cur.json", profDoc("fresh", {{"sim", 0.5}}));
    ASSERT_TRUE(loadProfDocument(curPath, current));

    const ProfDiffResult diff =
        diffProfReports(baseline, current, ProfDiffOptions{});
    ASSERT_EQ(diff.missing.size(), 1u);
    EXPECT_EQ(diff.missing[0], "gone");
    ASSERT_EQ(diff.added.size(), 1u);
    EXPECT_EQ(diff.added[0], "fresh");

    std::ostringstream os;
    EXPECT_FALSE(printProfDiff(os, diff, ProfDiffOptions{}));
    const std::string text = os.str();
    // The messages name the label, the file it came from, and the
    // file(s) the counterpart was expected in.
    EXPECT_NE(text.find("missing from current: 'gone'"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("(baselined in " + basePath +
                        "; expected in " + curPath + ")"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("new run (no baseline): 'fresh'"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("(found in " + curPath +
                        "; no counterpart in " + basePath + ")"),
              std::string::npos)
        << text;
}

TEST_F(CapstatProfTest, LatencyDiffAlsoNamesTheFiles)
{
    // The same provenance contract on the latency side (capstat diff).
    LatencyReport baseline;
    const std::string basePath = write(
        "lat_base.json",
        "{\"label\": \"gone\", \"flights\": {\"endToEnd\": "
        "{\"p99\": 5}}}");
    ASSERT_TRUE(loadLatencyDocument(basePath, baseline));
    LatencyReport current;
    const std::string curPath = write(
        "lat_cur.json",
        "{\"label\": \"fresh\", \"flights\": {\"endToEnd\": "
        "{\"p99\": 5}}}");
    ASSERT_TRUE(loadLatencyDocument(curPath, current));

    std::ostringstream os;
    printDiff(os, diffReports(baseline, current, DiffOptions{}),
              DiffOptions{});
    const std::string text = os.str();
    EXPECT_NE(text.find("missing from current: 'gone' (baselined in " +
                        basePath + "; expected in " + curPath + ")"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("new run (no baseline): 'fresh' (found in " +
                        curPath + "; no counterpart in " + basePath +
                        ")"),
              std::string::npos)
        << text;
}

TEST_F(CapstatProfTest, RejectsMalformedDocuments)
{
    ProfReport report;
    std::string error;
    EXPECT_FALSE(loadProfDocument(
        write("bad.json", "[1, 2]"), report, &error));
    EXPECT_NE(error.find("bad.json"), std::string::npos);
    EXPECT_FALSE(loadProfDocument(
        write("nolabel.json", "{\"wallNanos\": 5}"), report, &error));
    EXPECT_FALSE(loadProfDocument(
        (dir / "absent.json").string(), report, &error));
}

TEST_F(CapstatProfTest, RealProfilerOutputLoads)
{
    if (!prof::compiledIn())
        GTEST_SKIP() << "profiler compiled out";
    prof::RunProfile profile;
    {
        const prof::ProfileSession session(profile);
        PROF_SCOPE("t.capstat", "work");
        // A little real work so shares are nonzero.
        volatile unsigned sink = 0;
        for (unsigned i = 0; i < 100000; ++i)
            sink = sink + i;
    }

    const std::string path = dir / "real.prof.json";
    {
        std::ofstream os(path);
        os << profile.json("kmp tasks=4 kernel=fast", "fast");
    }
    ProfReport report;
    std::string error;
    ASSERT_TRUE(loadProfDocument(path, report, &error)) << error;
    ASSERT_EQ(report.runs.size(), 1u);
    const ProfRun &run = report.runs[0];
    EXPECT_EQ(run.label, "kmp tasks=4 kernel=fast");
    EXPECT_EQ(run.kernel, "fast");
    EXPECT_EQ(run.wallNanos, profile.wallNanos());
    // Self-diffing a profile is always a PASS at tolerance 0.
    ProfDiffOptions opts;
    opts.tolerancePts = 0.0;
    EXPECT_FALSE(diffProfReports(report, report, opts).regression());
}
