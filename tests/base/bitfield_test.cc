#include <gtest/gtest.h>

#include "base/bitfield.hh"

namespace capcheck
{
namespace
{

TEST(Bitfield, MaskWidths)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(14), 0x3fffu);
    EXPECT_EQ(mask(63), 0x7fffffffffffffffull);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
    EXPECT_EQ(mask(100), ~std::uint64_t{0});
}

TEST(Bitfield, BitsExtractsInclusiveRange)
{
    const std::uint64_t v = 0xdeadbeefcafef00dull;
    EXPECT_EQ(bits(v, 3, 0), 0xdu);
    EXPECT_EQ(bits(v, 63, 60), 0xdu);
    EXPECT_EQ(bits(v, 31, 16), 0xcafeu);
    EXPECT_EQ(bits(v, 63, 0), v);
}

TEST(Bitfield, SingleBit)
{
    EXPECT_EQ(bits(0x8000000000000000ull, 63), 1u);
    EXPECT_EQ(bits(0x8000000000000000ull, 62), 0u);
    EXPECT_EQ(bits(1ull, 0), 1u);
}

TEST(Bitfield, InsertBitsRoundTrips)
{
    std::uint64_t v = 0;
    v = insertBits(v, 25, 14, 0xabc);
    EXPECT_EQ(bits(v, 25, 14), 0xabcu);
    v = insertBits(v, 13, 0, 0x3fff);
    EXPECT_EQ(bits(v, 13, 0), 0x3fffu);
    EXPECT_EQ(bits(v, 25, 14), 0xabcu);
    // Overwrite must clear old contents.
    v = insertBits(v, 25, 14, 0);
    EXPECT_EQ(bits(v, 25, 14), 0u);
    EXPECT_EQ(bits(v, 13, 0), 0x3fffu);
}

TEST(Bitfield, InsertBitsTruncatesSource)
{
    const std::uint64_t v = insertBits(0, 3, 0, 0xff);
    EXPECT_EQ(v, 0xfull);
}

TEST(Bitfield, SignExtension)
{
    EXPECT_EQ(sext(0xff, 8), -1);
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0x80, 8), -128);
    EXPECT_EQ(sext(0xfff, 12), -1);
}

TEST(Bitfield, PowerOfTwoPredicates)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(4097));
    EXPECT_TRUE(isPowerOf2(1ull << 63));
}

TEST(Bitfield, Rounding)
{
    EXPECT_EQ(roundUp(0, 8), 0u);
    EXPECT_EQ(roundUp(1, 8), 8u);
    EXPECT_EQ(roundUp(8, 8), 8u);
    EXPECT_EQ(roundDown(15, 8), 8u);
    EXPECT_EQ(roundDown(16, 8), 16u);
}

TEST(Bitfield, Logarithms)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4097), 13u);
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(4095), 11u);
    EXPECT_EQ(floorLog2(4096), 12u);
}

TEST(Bitfield, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4096), 0u);
    EXPECT_EQ(divCeil(1, 4096), 1u);
    EXPECT_EQ(divCeil(4096, 4096), 1u);
    EXPECT_EQ(divCeil(4097, 4096), 2u);
}

} // namespace
} // namespace capcheck
