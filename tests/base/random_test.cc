#include <gtest/gtest.h>

#include <set>

#include "base/random.hh"

namespace capcheck
{
namespace
{

TEST(Random, SplitMixIsDeterministic)
{
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_EQ(same, 0);
}

TEST(Random, BoundedStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Random, BoundedZeroIsZero)
{
    Rng rng(7);
    EXPECT_EQ(rng.nextBounded(0), 0u);
}

TEST(Random, RangeInclusive)
{
    Rng rng(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    // All 7 values should appear in 2000 draws.
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Random, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Random, BoundedIsRoughlyUniform)
{
    Rng rng(13);
    constexpr int buckets = 8;
    constexpr int draws = 80000;
    int counts[buckets] = {};
    for (int i = 0; i < draws; ++i)
        ++counts[rng.nextBounded(buckets)];
    for (int count : counts) {
        EXPECT_GT(count, draws / buckets * 0.9);
        EXPECT_LT(count, draws / buckets * 1.1);
    }
}

TEST(Random, BernoulliRespectsProbability)
{
    Rng rng(17);
    int hits = 0;
    constexpr int draws = 100000;
    for (int i = 0; i < draws; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / draws, 0.25, 0.02);
}

} // namespace
} // namespace capcheck
