#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "base/trace.hh"

namespace capcheck
{
namespace
{

TEST(Trace, FlagsStartDisabled)
{
    trace::DebugFlag flag("TestFlagA");
    EXPECT_FALSE(flag.enabled());
    flag.enable();
    EXPECT_TRUE(flag.enabled());
    flag.enable(false);
    EXPECT_FALSE(flag.enabled());
}

TEST(Trace, EnableByName)
{
    trace::DebugFlag flag("TestFlagB");
    EXPECT_TRUE(trace::DebugFlag::enableByName("TestFlagB"));
    EXPECT_TRUE(flag.enabled());
    EXPECT_FALSE(trace::DebugFlag::enableByName("NoSuchFlag"));
    flag.enable(false);
}

TEST(Trace, EnableAll)
{
    trace::DebugFlag flag("TestFlagC");
    EXPECT_TRUE(trace::DebugFlag::enableByName("All"));
    EXPECT_TRUE(flag.enabled());
    // Restore: disable everything we touched.
    for (trace::DebugFlag *f : trace::DebugFlag::all())
        f->enable(false);
}

TEST(Trace, BuiltinSubsystemFlagsRegistered)
{
    bool found_capchecker = false;
    bool found_driver = false;
    for (const trace::DebugFlag *flag : trace::DebugFlag::all()) {
        found_capchecker |= std::string(flag->name()) == "CapChecker";
        found_driver |= std::string(flag->name()) == "Driver";
    }
    EXPECT_TRUE(found_capchecker);
    EXPECT_TRUE(found_driver);
}

TEST(Trace, ListFlagsNamesEveryRegisteredFlag)
{
    trace::DebugFlag flag("TestFlagList");
    std::ostringstream os;
    trace::DebugFlag::listFlags(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("registered debug flags"), std::string::npos);
    EXPECT_NE(out.find("TestFlagList"), std::string::npos);
    EXPECT_NE(out.find("CapChecker"), std::string::npos);
    EXPECT_NE(out.find("All"), std::string::npos);
}

TEST(Trace, ApplyListEnablesCommaSeparatedFlags)
{
    trace::DebugFlag a("TestFlagE");
    trace::DebugFlag b("TestFlagF");
    trace::DebugFlag c("TestFlagG");
    trace::DebugFlag::applyList("TestFlagE,TestFlagG");
    EXPECT_TRUE(a.enabled());
    EXPECT_FALSE(b.enabled());
    EXPECT_TRUE(c.enabled());

    ::testing::internal::CaptureStderr();
    trace::DebugFlag::applyList("NoSuchFlag"); // warns, must not die
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("NoSuchFlag"), std::string::npos);

    a.enable(false);
    c.enable(false);
}

TEST(Trace, ApplyListQuestionMarkListsToStderr)
{
    trace::DebugFlag flag("TestFlagH");
    ::testing::internal::CaptureStderr();
    trace::DebugFlag::applyList("?");
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("TestFlagH"), std::string::npos);
    EXPECT_FALSE(flag.enabled());
}

TEST(Trace, DprintfIsGated)
{
    trace::DebugFlag flag("TestFlagD");
    int evaluations = 0;
    auto count = [&] {
        ++evaluations;
        return 1;
    };
    CAPCHECK_DPRINTF(flag, "value %d", count());
    EXPECT_EQ(evaluations, 0); // disabled: arguments not evaluated

    ::testing::internal::CaptureStderr();
    flag.enable();
    CAPCHECK_DPRINTF(flag, "value %d", count());
    const std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(evaluations, 1);
    EXPECT_NE(out.find("TestFlagD: value 1"), std::string::npos);
    flag.enable(false);
}

} // namespace
} // namespace capcheck
