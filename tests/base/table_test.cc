#include <gtest/gtest.h>

#include <sstream>

#include "base/logging.hh"
#include "base/table.hh"

namespace capcheck
{
namespace
{

TEST(Table, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"longer-name", "22"});

    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);

    // All lines should have equal length (aligned table).
    std::istringstream lines(out);
    std::string line;
    std::size_t len = 0;
    while (std::getline(lines, line)) {
        if (len == 0)
            len = line.size();
        EXPECT_EQ(line.size(), len);
    }
}

TEST(Table, RejectsWrongArity)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), SimError);
}

TEST(Table, CountsRows)
{
    TextTable table({"x"});
    EXPECT_EQ(table.rows(), 0u);
    table.addRow({"1"});
    table.addRow({"2"});
    EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPercent(0.014, 1), "1.4%");
    EXPECT_EQ(fmtSpeedup(2041.3, 1), "2041.3x");
    EXPECT_EQ(fmtDouble(-0.5, 3), "-0.500");
}

} // namespace
} // namespace capcheck
