/**
 * @file
 * Tests for the JSON parser (base/json_value): it must read back
 * everything the streaming writer (base/json) emits, preserve object
 * member order, resolve dotted paths, and reject malformed input with
 * a useful error instead of crashing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/json.hh"
#include "base/json_value.hh"

namespace capcheck::json
{
namespace
{

TEST(JsonValue, ParsesScalars)
{
    EXPECT_TRUE(parseJson("null")->isNull());
    EXPECT_TRUE(parseJson("true")->asBool());
    EXPECT_FALSE(parseJson("false")->asBool());
    EXPECT_DOUBLE_EQ(parseJson("42")->asNumber(), 42);
    EXPECT_DOUBLE_EQ(parseJson("-1.5e3")->asNumber(), -1500);
    EXPECT_EQ(parseJson("\"hi\\nthere\"")->asString(), "hi\nthere");
}

TEST(JsonValue, ParsesNestedContainersPreservingOrder)
{
    const auto doc = parseJson(
        R"({"z": 1, "a": [1, 2, {"k": "v"}], "m": {"x": true}})");
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());
    ASSERT_EQ(doc->members().size(), 3u);
    // Member order is document order, not sorted.
    EXPECT_EQ(doc->members()[0].first, "z");
    EXPECT_EQ(doc->members()[1].first, "a");
    EXPECT_EQ(doc->members()[2].first, "m");

    const JsonValue *arr = doc->get("a");
    ASSERT_NE(arr, nullptr);
    ASSERT_EQ(arr->elements().size(), 3u);
    EXPECT_DOUBLE_EQ(arr->elements()[1].asNumber(), 2);
    EXPECT_EQ(arr->elements()[2].get("k")->asString(), "v");
}

TEST(JsonValue, DottedPathDescendsObjects)
{
    const auto doc = parseJson(
        R"({"flights": {"endToEnd": {"p99": 123.5}}})");
    ASSERT_TRUE(doc.has_value());
    const JsonValue *p99 = doc->at("flights.endToEnd.p99");
    ASSERT_NE(p99, nullptr);
    EXPECT_DOUBLE_EQ(p99->asNumber(), 123.5);
    EXPECT_EQ(doc->at("flights.nosuch.p99"), nullptr);
    EXPECT_EQ(doc->at("flights.endToEnd.p99.deeper"), nullptr);
}

TEST(JsonValue, RoundTripsWriterOutput)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("name").value("a \"quoted\"\nstring");
    w.key("count").value(std::uint64_t{18446744073709551615ull});
    w.key("ratio").value(0.1);
    w.key("flags").beginArray();
    w.value(true).value(false).nullValue();
    w.endArray();
    w.endObject();

    std::string error;
    const auto doc = parseJson(os.str(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->get("name")->asString(), "a \"quoted\"\nstring");
    EXPECT_DOUBLE_EQ(doc->get("ratio")->asNumber(), 0.1);
    ASSERT_EQ(doc->get("flags")->elements().size(), 3u);
    EXPECT_TRUE(doc->get("flags")->elements()[2].isNull());
}

TEST(JsonValue, ParsesUnicodeEscapes)
{
    const auto doc = parseJson(R"("café")");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->asString(), "caf\xc3\xa9");
}

TEST(JsonValue, RejectsMalformedDocuments)
{
    std::string error;
    EXPECT_FALSE(parseJson("{", &error).has_value());
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseJson("{\"a\": }", &error).has_value());
    EXPECT_FALSE(parseJson("[1, 2,]", &error).has_value());
    EXPECT_FALSE(parseJson("\"unterminated", &error).has_value());
    EXPECT_FALSE(parseJson("12 34", &error).has_value());
    EXPECT_FALSE(parseJson("nul", &error).has_value());
    EXPECT_FALSE(parseJson("", &error).has_value());
}

TEST(JsonValue, MissingFileReportsError)
{
    std::string error;
    EXPECT_FALSE(
        parseJsonFile("/nonexistent/capcheck.json", &error).has_value());
    EXPECT_NE(error.find("cannot open"), std::string::npos);
}

} // namespace
} // namespace capcheck::json
