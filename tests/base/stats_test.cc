#include <gtest/gtest.h>

#include <sstream>

#include "base/stats.hh"

namespace capcheck::stats
{
namespace
{

TEST(Stats, ScalarArithmetic)
{
    StatGroup group("g");
    Scalar counter(group, "count", "a counter");
    ++counter;
    counter += 2.5;
    EXPECT_DOUBLE_EQ(counter.value(), 3.5);
    counter = 7;
    EXPECT_DOUBLE_EQ(counter.value(), 7);
    counter.reset();
    EXPECT_DOUBLE_EQ(counter.value(), 0);
}

TEST(Stats, GroupFindsStatsByLeafName)
{
    StatGroup group("g");
    Scalar a(group, "a", "first");
    Scalar b(group, "b", "second");
    EXPECT_EQ(group.find("a"), &a);
    EXPECT_EQ(group.find("b"), &b);
    EXPECT_EQ(group.find("c"), nullptr);
}

TEST(Stats, NestedGroupPaths)
{
    StatGroup root("soc");
    StatGroup child("capchecker", &root);
    EXPECT_EQ(child.path(), "soc.capchecker");
}

TEST(Stats, DumpShowsQualifiedNames)
{
    StatGroup root("soc");
    StatGroup child("mem", &root);
    Scalar reads(child, "reads", "read count");
    reads += 5;

    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("soc.mem.reads"), std::string::npos);
    EXPECT_NE(os.str().find("5"), std::string::npos);
}

TEST(Stats, DistributionTracksMoments)
{
    StatGroup group("g");
    Distribution dist(group, "lat", "latency", 0, 100, 10);
    dist.sample(10);
    dist.sample(20);
    dist.sample(30);
    EXPECT_EQ(dist.samples(), 3u);
    EXPECT_DOUBLE_EQ(dist.mean(), 20);
    EXPECT_DOUBLE_EQ(dist.minSeen(), 10);
    EXPECT_DOUBLE_EQ(dist.maxSeen(), 30);
}

TEST(Stats, DistributionHandlesOutliers)
{
    StatGroup group("g");
    Distribution dist(group, "d", "", 0, 10, 5);
    dist.sample(-5);
    dist.sample(100);
    EXPECT_EQ(dist.samples(), 2u);
    EXPECT_DOUBLE_EQ(dist.minSeen(), -5);
    EXPECT_DOUBLE_EQ(dist.maxSeen(), 100);
}

TEST(Stats, DistributionReset)
{
    StatGroup group("g");
    Distribution dist(group, "d", "", 0, 10, 5);
    dist.sample(5);
    dist.reset();
    EXPECT_EQ(dist.samples(), 0u);
    EXPECT_DOUBLE_EQ(dist.mean(), 0);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatGroup group("g");
    Scalar hits(group, "hits", "");
    Scalar total(group, "total", "");
    Formula ratio(group, "ratio", "hit ratio", [&] {
        return total.value() ? hits.value() / total.value() : 0;
    });

    EXPECT_DOUBLE_EQ(ratio.value(), 0);
    hits += 3;
    total += 4;
    EXPECT_DOUBLE_EQ(ratio.value(), 0.75);
}

TEST(Stats, ResetAllRecurses)
{
    StatGroup root("r");
    StatGroup child("c", &root);
    Scalar a(root, "a", "");
    Scalar b(child, "b", "");
    a += 1;
    b += 2;
    root.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0);
    EXPECT_DOUBLE_EQ(b.value(), 0);
}

} // namespace
} // namespace capcheck::stats
