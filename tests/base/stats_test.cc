#include <gtest/gtest.h>

#include <sstream>

#include "base/json.hh"
#include "base/stats.hh"

namespace capcheck::stats
{
namespace
{

TEST(Stats, ScalarArithmetic)
{
    StatGroup group("g");
    Scalar counter(group, "count", "a counter");
    ++counter;
    counter += 2.5;
    EXPECT_DOUBLE_EQ(counter.value(), 3.5);
    counter = 7;
    EXPECT_DOUBLE_EQ(counter.value(), 7);
    counter.reset();
    EXPECT_DOUBLE_EQ(counter.value(), 0);
}

TEST(Stats, GroupFindsStatsByLeafName)
{
    StatGroup group("g");
    Scalar a(group, "a", "first");
    Scalar b(group, "b", "second");
    EXPECT_EQ(group.find("a"), &a);
    EXPECT_EQ(group.find("b"), &b);
    EXPECT_EQ(group.find("c"), nullptr);
}

TEST(Stats, NestedGroupPaths)
{
    StatGroup root("soc");
    StatGroup child("capchecker", &root);
    EXPECT_EQ(child.path(), "soc.capchecker");
}

TEST(Stats, DumpShowsQualifiedNames)
{
    StatGroup root("soc");
    StatGroup child("mem", &root);
    Scalar reads(child, "reads", "read count");
    reads += 5;

    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("soc.mem.reads"), std::string::npos);
    EXPECT_NE(os.str().find("5"), std::string::npos);
}

TEST(Stats, DistributionTracksMoments)
{
    StatGroup group("g");
    Distribution dist(group, "lat", "latency", 0, 100, 10);
    dist.sample(10);
    dist.sample(20);
    dist.sample(30);
    EXPECT_EQ(dist.samples(), 3u);
    EXPECT_DOUBLE_EQ(dist.mean(), 20);
    EXPECT_DOUBLE_EQ(dist.minSeen(), 10);
    EXPECT_DOUBLE_EQ(dist.maxSeen(), 30);
}

TEST(Stats, DistributionHandlesOutliers)
{
    StatGroup group("g");
    Distribution dist(group, "d", "", 0, 10, 5);
    dist.sample(-5);
    dist.sample(100);
    EXPECT_EQ(dist.samples(), 2u);
    EXPECT_DOUBLE_EQ(dist.minSeen(), -5);
    EXPECT_DOUBLE_EQ(dist.maxSeen(), 100);
}

TEST(Stats, DistributionReset)
{
    StatGroup group("g");
    Distribution dist(group, "d", "", 0, 10, 5);
    dist.sample(5);
    dist.reset();
    EXPECT_EQ(dist.samples(), 0u);
    EXPECT_DOUBLE_EQ(dist.mean(), 0);
}

TEST(Stats, DistributionJsonRoundTripsLosslessly)
{
    StatGroup group("g");
    Distribution dist(group, "d", "", 0, 10, 5);
    dist.sample(-5);   // underflow
    dist.sample(3);    // bucket 1
    dist.sample(100);  // overflow

    std::ostringstream os;
    json::JsonWriter w(os);
    dist.dumpJson(w);
    const std::string doc = os.str();

    // Everything needed to reconstruct the histogram exactly: bucket
    // geometry plus the out-of-range counts, not just the buckets.
    EXPECT_NE(doc.find("\"lo\": 0"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"hi\": 1e+01"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"underflow\": 1"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"overflow\": 1"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"buckets\""), std::string::npos) << doc;
}

TEST(Stats, HistogramBucketsByLog2)
{
    StatGroup group("g");
    Histogram h(group, "lat", "latency");
    h.sample(0);
    h.sample(1);
    h.sample(2);
    h.sample(3);
    h.sample(1000);

    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.minSeen(), 0u);
    EXPECT_EQ(h.maxSeen(), 1000u);
    EXPECT_EQ(h.sum(), 1006u);
    // {0} -> bucket 0, {1} -> bucket 1, {2,3} -> bucket 2,
    // 1000 -> bucket 10 ([512, 1024)).
    ASSERT_EQ(h.bucketCounts().size(), 11u);
    EXPECT_EQ(h.bucketCounts()[0], 1u);
    EXPECT_EQ(h.bucketCounts()[1], 1u);
    EXPECT_EQ(h.bucketCounts()[2], 2u);
    EXPECT_EQ(h.bucketCounts()[10], 1u);
    EXPECT_EQ(Histogram::bucketLow(10), 512u);
    EXPECT_EQ(Histogram::bucketHigh(10), 1024u);
}

TEST(Stats, HistogramQuantilesAreOrderedAndBounded)
{
    StatGroup group("g");
    Histogram h(group, "lat", "");
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.sample(v);

    const double p50 = h.p50();
    const double p95 = h.p95();
    const double p99 = h.p99();
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p99, 101.0);
    // The median of 1..100 lies in the [32, 64) bucket.
    EXPECT_GE(p50, 32.0);
    EXPECT_LT(p50, 64.0);
}

TEST(Stats, HistogramSingleValueQuantiles)
{
    StatGroup group("g");
    Histogram h(group, "lat", "");
    h.sample(42, 1000);
    // All samples share one bucket clipped to [min, max + 1): every
    // quantile must stay within one unit of the only value.
    EXPECT_GE(h.p50(), 42.0);
    EXPECT_LE(h.p99(), 43.0);
    EXPECT_EQ(h.samples(), 1000u);
}

TEST(Stats, HistogramJsonEmitsQuantilesAndSparseBuckets)
{
    StatGroup group("g");
    Histogram h(group, "lat", "");
    h.sample(5);
    h.sample(1000000);

    std::ostringstream os;
    json::JsonWriter w(os);
    h.dumpJson(w);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"p99\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"count\": 1"), std::string::npos) << doc;
    // Sparse encoding: empty buckets between 5 and 1e6 are omitted.
    EXPECT_EQ(doc.find("\"count\": 0"), std::string::npos) << doc;
}

TEST(Stats, HistogramReset)
{
    StatGroup group("g");
    Histogram h(group, "lat", "");
    h.sample(7);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_TRUE(h.bucketCounts().empty());
    EXPECT_DOUBLE_EQ(h.p99(), 0);
}

TEST(Stats, FindResolvesDottedPaths)
{
    StatGroup root("soc");
    StatGroup checker("capchecker", &root);
    StatGroup cache("cache", &checker);
    Scalar hits(cache, "hits", "");
    Scalar top(root, "cycles", "");

    EXPECT_EQ(root.find("cycles"), &top);
    EXPECT_EQ(root.find("capchecker.cache.hits"), &hits);
    // A leading segment naming the root itself is tolerated, so fully
    // qualified stat-dump paths resolve as-is.
    EXPECT_EQ(root.find("soc.capchecker.cache.hits"), &hits);
    EXPECT_EQ(checker.find("cache.hits"), &hits);
    EXPECT_EQ(root.find("capchecker.cache.misses"), nullptr);
    EXPECT_EQ(root.find("nosuch.cache.hits"), nullptr);
    EXPECT_EQ(root.findChild("capchecker"), &checker);
    EXPECT_EQ(root.findChild("mem"), nullptr);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatGroup group("g");
    Scalar hits(group, "hits", "");
    Scalar total(group, "total", "");
    Formula ratio(group, "ratio", "hit ratio", [&] {
        return total.value() ? hits.value() / total.value() : 0;
    });

    EXPECT_DOUBLE_EQ(ratio.value(), 0);
    hits += 3;
    total += 4;
    EXPECT_DOUBLE_EQ(ratio.value(), 0.75);
}

TEST(Stats, ResetAllRecurses)
{
    StatGroup root("r");
    StatGroup child("c", &root);
    Scalar a(root, "a", "");
    Scalar b(child, "b", "");
    a += 1;
    b += 2;
    root.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0);
    EXPECT_DOUBLE_EQ(b.value(), 0);
}

} // namespace
} // namespace capcheck::stats
