/** @file Tests for the typed probe-point layer. */

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/probe.hh"

using namespace capcheck;

TEST(ProbePoint, NotifyWithoutListenersIsANoOp)
{
    probe::ProbePoint<int> point("test.point");
    EXPECT_FALSE(point.connected());
    EXPECT_EQ(point.numListeners(), 0u);
    point.notify(42); // must not crash or allocate listeners
    EXPECT_EQ(point.name(), "test.point");
}

TEST(ProbePoint, ListenersFireInAttachOrder)
{
    probe::ProbePoint<int> point("test.order");
    std::vector<std::pair<char, int>> calls;
    point.attach([&](const int &v) { calls.emplace_back('a', v); });
    point.attach([&](const int &v) { calls.emplace_back('b', v); });
    point.attach([&](const int &v) { calls.emplace_back('c', v); });

    point.notify(7);
    ASSERT_EQ(calls.size(), 3u);
    EXPECT_EQ(calls[0], std::make_pair('a', 7));
    EXPECT_EQ(calls[1], std::make_pair('b', 7));
    EXPECT_EQ(calls[2], std::make_pair('c', 7));
}

TEST(ProbePoint, DetachRemovesOnlyTheHandledListener)
{
    probe::ProbePoint<int> point("test.detach");
    int a = 0, b = 0;
    const auto ha = point.attach([&](const int &v) { a += v; });
    const auto hb = point.attach([&](const int &v) { b += v; });
    ASSERT_NE(ha, hb);

    EXPECT_TRUE(point.detach(ha));
    point.notify(5);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 5);

    // A handle detaches at most once.
    EXPECT_FALSE(point.detach(ha));
    EXPECT_TRUE(point.detach(hb));
    EXPECT_EQ(point.numListeners(), 0u);
    point.notify(5);
    EXPECT_EQ(b, 5);
}

TEST(ProbePoint, HandlesAreNotReusedAfterDetach)
{
    probe::ProbePoint<int> point("test.handles");
    const auto first = point.attach([](const int &) {});
    EXPECT_TRUE(point.detach(first));
    const auto second = point.attach([](const int &) {});
    EXPECT_NE(first, second);
}

TEST(ProbePoint, DetachAllDropsEveryListener)
{
    probe::ProbePoint<std::string> point("test.detachAll");
    int calls = 0;
    point.attach([&](const std::string &) { ++calls; });
    point.attach([&](const std::string &) { ++calls; });
    point.detachAll();
    EXPECT_FALSE(point.connected());
    point.notify("x");
    EXPECT_EQ(calls, 0);
}

TEST(ProbePoint, PayloadIsBorrowedByReference)
{
    probe::ProbePoint<std::string> point("test.payload");
    const std::string payload = "payload";
    const std::string *seen = nullptr;
    point.attach([&](const std::string &v) { seen = &v; });
    point.notify(payload);
    EXPECT_EQ(seen, &payload); // no copy on the notify path
}

TEST(ProbePoint, MoveCarriesListeners)
{
    probe::ProbePoint<int> point("test.move");
    int sum = 0;
    point.attach([&](const int &v) { sum += v; });

    probe::ProbePoint<int> moved = std::move(point);
    EXPECT_EQ(moved.numListeners(), 1u);
    moved.notify(3);
    EXPECT_EQ(sum, 3);
    EXPECT_EQ(moved.name(), "test.move");
}

TEST(ProbePoint, OneShotListenerPattern)
{
    // Fires once, then the owner detaches it between notifications.
    probe::ProbePoint<int> point("test.oneshot");
    int calls = 0;
    probe::ListenerHandle handle = probe::invalidListener;
    handle = point.attach([&](const int &) { ++calls; });
    point.notify(1);
    point.detach(handle);
    point.notify(1);
    EXPECT_EQ(calls, 1);
}
