/** @file Tests for the streaming JSON writer. */

#include <cstdint>
#include <sstream>

#include <gtest/gtest.h>

#include "base/json.hh"

using namespace capcheck;

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(json::escape("gemm_ncubed mode=ccpu+caccel"),
              "gemm_ncubed mode=ccpu+caccel");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json::escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(json::escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonFormatDouble, RoundTripsAndIsStable)
{
    EXPECT_EQ(json::formatDouble(0.0), "0");
    EXPECT_EQ(json::formatDouble(2.0), "2");
    EXPECT_EQ(json::formatDouble(0.5), "0.5");
    // Same value, same string — the determinism contract.
    EXPECT_EQ(json::formatDouble(1.0 / 3.0),
              json::formatDouble(1.0 / 3.0));
    const double third = std::stod(json::formatDouble(1.0 / 3.0));
    EXPECT_DOUBLE_EQ(third, 1.0 / 3.0);
}

TEST(JsonWriter, WritesNestedDocument)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("cycles").value(std::uint64_t{42});
    w.key("ok").value(true);
    w.key("name").value("aes");
    w.key("list").beginArray();
    w.value(1).value(2);
    w.endArray();
    w.key("nothing").nullValue();
    w.endObject();

    EXPECT_EQ(w.depth(), 0u);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"cycles\": 42"), std::string::npos);
    EXPECT_NE(doc.find("\"ok\": true"), std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"aes\""), std::string::npos);
    EXPECT_NE(doc.find("\"nothing\": null"), std::string::npos);
    // Array elements separated by a comma.
    EXPECT_NE(doc.find("1,"), std::string::npos);
}

TEST(JsonWriter, RawValueSplicesFragment)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("stats").rawValue("{\"a\": 1}");
    w.endObject();
    EXPECT_NE(os.str().find("\"stats\": {\"a\": 1}"),
              std::string::npos);
}

TEST(JsonWriter, IdenticalInputsSerializeIdentically)
{
    auto render = [] {
        std::ostringstream os;
        json::JsonWriter w(os);
        w.beginObject();
        w.key("pi").value(3.14159);
        w.key("tag").value("x\"y");
        w.endObject();
        return os.str();
    };
    EXPECT_EQ(render(), render());
}
