/** @file Tests for the streaming JSON writer. */

#include <cstdint>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "base/json.hh"

using namespace capcheck;

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(json::escape("gemm_ncubed mode=ccpu+caccel"),
              "gemm_ncubed mode=ccpu+caccel");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json::escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(json::escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonFormatDouble, RoundTripsAndIsStable)
{
    EXPECT_EQ(json::formatDouble(0.0), "0");
    EXPECT_EQ(json::formatDouble(2.0), "2");
    EXPECT_EQ(json::formatDouble(0.5), "0.5");
    // Same value, same string — the determinism contract.
    EXPECT_EQ(json::formatDouble(1.0 / 3.0),
              json::formatDouble(1.0 / 3.0));
    const double third = std::stod(json::formatDouble(1.0 / 3.0));
    EXPECT_DOUBLE_EQ(third, 1.0 / 3.0);
}

TEST(JsonWriter, WritesNestedDocument)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("cycles").value(std::uint64_t{42});
    w.key("ok").value(true);
    w.key("name").value("aes");
    w.key("list").beginArray();
    w.value(1).value(2);
    w.endArray();
    w.key("nothing").nullValue();
    w.endObject();

    EXPECT_EQ(w.depth(), 0u);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"cycles\": 42"), std::string::npos);
    EXPECT_NE(doc.find("\"ok\": true"), std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"aes\""), std::string::npos);
    EXPECT_NE(doc.find("\"nothing\": null"), std::string::npos);
    // Array elements separated by a comma.
    EXPECT_NE(doc.find("1,"), std::string::npos);
}

TEST(JsonWriter, RawValueSplicesFragment)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("stats").rawValue("{\"a\": 1}");
    w.endObject();
    EXPECT_NE(os.str().find("\"stats\": {\"a\": 1}"),
              std::string::npos);
}

TEST(JsonWriter, IdenticalInputsSerializeIdentically)
{
    auto render = [] {
        std::ostringstream os;
        json::JsonWriter w(os);
        w.beginObject();
        w.key("pi").value(3.14159);
        w.key("tag").value("x\"y");
        w.endObject();
        return os.str();
    };
    EXPECT_EQ(render(), render());
}

TEST(JsonEscape, EscapesEveryControlCharacter)
{
    // RFC 8259: everything below 0x20 must be escaped. The named
    // escapes (\n, \r, \t) are allowed; the rest must use \uXXXX.
    for (int c = 1; c < 0x20; ++c) {
        const std::string in(1, static_cast<char>(c));
        const std::string out = json::escape(in);
        ASSERT_GE(out.size(), 2u) << "control char " << c;
        EXPECT_EQ(out[0], '\\') << "control char " << c;
        if (c == '\n') {
            EXPECT_EQ(out, "\\n");
        } else if (c == '\r') {
            EXPECT_EQ(out, "\\r");
        } else if (c == '\t') {
            EXPECT_EQ(out, "\\t");
        } else {
            char expect[8];
            std::snprintf(expect, sizeof(expect), "\\u%04x", c);
            EXPECT_EQ(out, expect) << "control char " << c;
        }
    }
}

TEST(JsonEscape, EmbeddedNulIsEscapedNotTruncated)
{
    std::string in = "a";
    in.push_back('\0');
    in.push_back('b');
    EXPECT_EQ(json::escape(in), "a\\u0000b");
}

TEST(JsonEscape, RoundTripsThroughUnescaping)
{
    // Build a string exercising every escape class, escape it, then
    // undo the escapes by hand: the round trip must reproduce the
    // original bytes exactly.
    std::string original = "plain \"quoted\" back\\slash\n\r\t";
    original.push_back('\x01');
    original.push_back('\x1f');
    original += "tail";

    const std::string escaped = json::escape(original);

    std::string decoded;
    for (std::size_t i = 0; i < escaped.size(); ++i) {
        if (escaped[i] != '\\') {
            decoded += escaped[i];
            continue;
        }
        ASSERT_LT(i + 1, escaped.size());
        const char kind = escaped[++i];
        switch (kind) {
          case 'n': decoded += '\n'; break;
          case 'r': decoded += '\r'; break;
          case 't': decoded += '\t'; break;
          case '"': decoded += '"'; break;
          case '\\': decoded += '\\'; break;
          case 'u': {
            ASSERT_LE(i + 4, escaped.size() - 1);
            const std::string hexDigits = escaped.substr(i + 1, 4);
            decoded += static_cast<char>(
                std::stoi(hexDigits, nullptr, 16));
            i += 4;
            break;
          }
          default:
            FAIL() << "unexpected escape \\" << kind;
        }
    }
    EXPECT_EQ(decoded, original);
}

TEST(JsonFormatDouble, NonFiniteValuesBecomeNull)
{
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(json::formatDouble(inf), "null");
    EXPECT_EQ(json::formatDouble(-inf), "null");
    EXPECT_EQ(json::formatDouble(
                  std::numeric_limits<double>::quiet_NaN()),
              "null");
}

TEST(JsonWriter, NonFiniteDoubleValuesSerializeAsNull)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    w.beginObject();
    w.key("nan").value(std::numeric_limits<double>::quiet_NaN());
    w.key("inf").value(std::numeric_limits<double>::infinity());
    w.endObject();
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"nan\": null"), std::string::npos);
    EXPECT_NE(doc.find("\"inf\": null"), std::string::npos);
    // The document stays machine-parseable: no bare nan/inf tokens.
    EXPECT_EQ(doc.find("nan,"), std::string::npos);
    EXPECT_EQ(doc.find("inf,"), std::string::npos);
}
