/**
 * @file
 * Flight recorder tests: per-hop attribution must telescope exactly to
 * the end-to-end latency on every path through the platform (allowed
 * and denied, cache hit and miss, Fine and Coarse provenance), the
 * top-N table must keep the slowest flights deterministically, and the
 * artefact writers must produce parseable JSON with stable shape.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "base/json.hh"
#include "base/json_value.hh"
#include "capchecker/capchecker.hh"
#include "harness/run_request.hh"
#include "obs/flight.hh"
#include "sim/eventq.hh"
#include "system/soc_config_builder.hh"

using namespace capcheck;
using namespace capcheck::obs;
using harness::RunRequest;
using system::SocConfigBuilder;
using system::SystemMode;

namespace fs = std::filesystem;

namespace
{

MemRequest
request(PortId port, std::uint64_t id, Addr addr = 0x1000)
{
    MemRequest req;
    req.cmd = MemCmd::read;
    req.addr = addr;
    req.size = 8;
    req.srcPort = port;
    req.task = port;
    req.id = id;
    return req;
}

MemResponse
response(PortId port, std::uint64_t id, bool ok = true)
{
    MemResponse resp;
    resp.id = id;
    resp.srcPort = port;
    resp.ok = ok;
    return resp;
}

/** Run @p fn at absolute cycle @p when. */
void
at(EventQueue &eq, Cycles when, std::function<void()> fn)
{
    eq.schedule(new LambdaEvent(std::move(fn)), when);
}

std::string
slurp(const fs::path &file)
{
    std::ifstream is(file);
    std::stringstream body;
    body << is.rdbuf();
    return body.str();
}

} // namespace

TEST(FlightRecorder, AttributesEveryCycleOfAnAllowedFlight)
{
    EventQueue eq;
    FlightRecorder rec(eq, 10, "unit");

    const auto req = request(0, 0);
    at(eq, 10, [&] { rec.onIssue(req); });
    at(eq, 13, [&] { rec.onGrant(req); });
    at(eq, 13, [&] { rec.onCheck(req, true, 13, 15); });
    at(eq, 15, [&] { rec.onMemAccept(req); });
    at(eq, 45, [&] { rec.onRespond(response(0, 0)); });
    eq.run();

    ASSERT_EQ(rec.completedFlights(), 1u);
    const auto flights = rec.slowestFlights();
    ASSERT_EQ(flights.size(), 1u);
    const FlightRecord &f = flights.front();
    EXPECT_EQ(f.hopXbar(), 3u);
    EXPECT_EQ(f.hopCheck(), 2u);
    EXPECT_EQ(f.hopDrain(), 0u);
    EXPECT_EQ(f.hopMem(), 30u);
    EXPECT_EQ(f.endToEnd(), 35u);
    EXPECT_EQ(f.hopXbar() + f.hopCheck() + f.hopDrain() + f.hopMem(),
              f.endToEnd());
    EXPECT_FALSE(f.denied);
}

TEST(FlightRecorder, DeniedFlightsNeverTouchMemory)
{
    EventQueue eq;
    FlightRecorder rec(eq, 10, "unit");

    const auto req = request(2, 7);
    at(eq, 5, [&] { rec.onIssue(req); });
    at(eq, 6, [&] { rec.onGrant(req); });
    at(eq, 6, [&] { rec.onCheck(req, false, 6, 7); });
    at(eq, 7, [&] { rec.onRespond(response(2, 7, /*ok=*/false)); });
    eq.run();

    const auto flights = rec.slowestFlights();
    ASSERT_EQ(flights.size(), 1u);
    const FlightRecord &f = flights.front();
    EXPECT_TRUE(f.denied);
    EXPECT_EQ(f.hopMem(), 0u);
    EXPECT_EQ(f.hopXbar() + f.hopCheck() + f.hopDrain() + f.hopMem(),
              f.endToEnd());
}

TEST(FlightRecorder, CacheOutcomeCorrelatesWithTheNextCheck)
{
    EventQueue eq;
    FlightRecorder rec(eq, 10, "unit");

    const auto miss_req = request(0, 0);
    at(eq, 0, [&] { rec.onIssue(miss_req); });
    at(eq, 1, [&] {
        rec.onGrant(miss_req);
        rec.onCacheMiss();
        rec.onCheck(miss_req, true, 1, 61);
    });
    at(eq, 61, [&] { rec.onMemAccept(miss_req); });
    at(eq, 91, [&] { rec.onRespond(response(0, 0)); });

    const auto hit_req = request(0, 1);
    at(eq, 92, [&] { rec.onIssue(hit_req); });
    at(eq, 93, [&] {
        rec.onGrant(hit_req);
        rec.onCacheHit();
        rec.onCheck(hit_req, true, 93, 94);
    });
    at(eq, 94, [&] { rec.onMemAccept(hit_req); });
    at(eq, 124, [&] { rec.onRespond(response(0, 1)); });
    eq.run();

    const auto flights = rec.slowestFlights();
    ASSERT_EQ(flights.size(), 2u);
    // Slowest first: the miss walked the table for 60 cycles.
    EXPECT_EQ(flights[0].cache, FlightRecord::CacheOutcome::miss);
    EXPECT_EQ(flights[0].hopCheck(), 60u);
    EXPECT_EQ(flights[1].cache, FlightRecord::CacheOutcome::hit);
    EXPECT_EQ(flights[1].hopCheck(), 1u);
}

TEST(FlightRecorder, PassThroughStallOverwritesTheCheckTimestamps)
{
    EventQueue eq;
    FlightRecorder rec(eq, 10, "unit");

    // A zero-latency pass-through check re-fires its timing probe each
    // cycle the memory controller rejects the beat, and the memory
    // acceptance can land before the xbar's grant probe in the same
    // cycle. The last check attempt must win and the hop sum must
    // still telescope.
    const auto req = request(1, 3);
    at(eq, 0, [&] { rec.onIssue(req); });
    at(eq, 2, [&] { rec.onCheck(req, true, 2, 2); });
    at(eq, 3, [&] {
        rec.onCheck(req, true, 3, 3);
        rec.onMemAccept(req);
        rec.onGrant(req);
    });
    at(eq, 33, [&] { rec.onRespond(response(1, 3)); });
    eq.run();

    const auto flights = rec.slowestFlights();
    ASSERT_EQ(flights.size(), 1u);
    const FlightRecord &f = flights.front();
    EXPECT_EQ(f.checkStart, 3u);
    EXPECT_EQ(f.hopXbar(), 3u);
    EXPECT_EQ(f.hopCheck(), 0u);
    EXPECT_EQ(f.hopMem(), 30u);
    EXPECT_EQ(f.hopXbar() + f.hopCheck() + f.hopDrain() + f.hopMem(),
              f.endToEnd());
}

TEST(FlightRecorder, CascadedHopsPartitionThePreCheckWait)
{
    EventQueue eq;
    FlightRecorder rec(eq, 10, "unit");

    // Two crossbar levels before a shared check stage: the beat waits
    // 2 cycles in the leaf and 3 in the root, each its own
    // (offer, grant) pair, and the pairs sum into hopXbar.
    const auto req = request(0, 0);
    at(eq, 10, [&] {
        rec.onIssue(req);
        rec.onOffer(req); // leaf slot entry, same frame as the issue
    });
    at(eq, 12, [&] {
        rec.onGrant(req); // leaf arbitration win...
        rec.onOffer(req); // ...lands the beat in the root's slot
    });
    at(eq, 15, [&] {
        rec.onGrant(req);
        rec.onCheck(req, true, 15, 17);
    });
    at(eq, 17, [&] { rec.onMemAccept(req); });
    at(eq, 47, [&] { rec.onRespond(response(0, 0)); });
    eq.run();

    const auto flights = rec.slowestFlights();
    ASSERT_EQ(flights.size(), 1u);
    const FlightRecord &f = flights.front();
    ASSERT_EQ(f.xbarHops.size(), 2u);
    EXPECT_EQ(f.xbarHops[0].offer, 10u);
    EXPECT_EQ(f.xbarHops[0].grant, 12u);
    EXPECT_EQ(f.xbarHops[1].offer, 12u);
    EXPECT_EQ(f.xbarHops[1].grant, 15u);
    EXPECT_EQ(f.hopXbar(), 5u);
    EXPECT_EQ(f.hopCheck(), 2u);
    EXPECT_EQ(f.hopDrain(), 0u);
    EXPECT_EQ(f.hopMem(), 30u);
    EXPECT_EQ(f.endToEnd(), 37u);
    EXPECT_EQ(f.hopXbar() + f.hopCheck() + f.hopDrain() + f.hopMem(),
              f.endToEnd());
}

TEST(FlightRecorder, PostCheckHopBoundsTheDrainWindow)
{
    EventQueue eq;
    FlightRecorder rec(eq, 10, "unit");

    // A banked tree checks at the leaf, then crosses the root: the
    // drain window runs from the verdict to the first post-check
    // offer, and the root wait is charged to hopXbar, not drain.
    const auto req = request(1, 5);
    at(eq, 0, [&] {
        rec.onIssue(req);
        rec.onOffer(req);
    });
    at(eq, 2, [&] {
        rec.onGrant(req);
        rec.onCheck(req, true, 2, 4);
    });
    at(eq, 6, [&] { rec.onOffer(req); }); // left the stage at 6
    at(eq, 9, [&] {
        rec.onGrant(req);
        rec.onMemAccept(req);
    });
    at(eq, 39, [&] { rec.onRespond(response(1, 5)); });
    eq.run();

    const auto flights = rec.slowestFlights();
    ASSERT_EQ(flights.size(), 1u);
    const FlightRecord &f = flights.front();
    ASSERT_EQ(f.xbarHops.size(), 2u);
    EXPECT_EQ(f.hopXbar(), 5u);  // (2-0) + (9-6)
    EXPECT_EQ(f.hopCheck(), 2u); // 2..4
    EXPECT_EQ(f.hopDrain(), 2u); // 4..6, verdict to the root offer
    EXPECT_EQ(f.hopMem(), 30u);
    EXPECT_EQ(f.endToEnd(), 39u);
    EXPECT_EQ(f.hopXbar() + f.hopCheck() + f.hopDrain() + f.hopMem(),
              f.endToEnd());
}

TEST(FlightRecorder, DeniedMultiHopFlightStillTelescopes)
{
    EventQueue eq;
    FlightRecorder rec(eq, 10, "unit");

    const auto req = request(2, 9);
    at(eq, 0, [&] {
        rec.onIssue(req);
        rec.onOffer(req);
    });
    at(eq, 2, [&] {
        rec.onGrant(req);
        rec.onOffer(req);
    });
    at(eq, 5, [&] {
        rec.onGrant(req);
        rec.onCheck(req, false, 5, 6);
    });
    at(eq, 6, [&] { rec.onRespond(response(2, 9, /*ok=*/false)); });
    eq.run();

    const auto flights = rec.slowestFlights();
    ASSERT_EQ(flights.size(), 1u);
    const FlightRecord &f = flights.front();
    EXPECT_TRUE(f.denied);
    ASSERT_EQ(f.xbarHops.size(), 2u);
    EXPECT_EQ(f.hopXbar(), 5u);
    EXPECT_EQ(f.hopCheck(), 1u);
    EXPECT_EQ(f.hopDrain(), 0u);
    EXPECT_EQ(f.hopMem(), 0u);
    EXPECT_EQ(f.hopXbar() + f.hopCheck() + f.hopDrain() + f.hopMem(),
              f.endToEnd());
}

TEST(FlightRecorder, XbarHopsAppearInTheArtefactOnlyForMultiHopTrees)
{
    const fs::path dir =
        fs::temp_directory_path() / "capcheck_flight_hops";
    fs::create_directories(dir);
    const fs::path flights_file = dir / "hops.flights.json";

    EventQueue eq;
    FlightRecorder rec(eq, 10, "unit");

    // Flight 0: two-level path (slower, sorts first).
    const auto multi = request(0, 0);
    at(eq, 0, [&] {
        rec.onIssue(multi);
        rec.onOffer(multi);
    });
    at(eq, 2, [&] {
        rec.onGrant(multi);
        rec.onOffer(multi);
    });
    at(eq, 5, [&] {
        rec.onGrant(multi);
        rec.onCheck(multi, true, 5, 6);
    });
    at(eq, 6, [&] { rec.onMemAccept(multi); });
    at(eq, 46, [&] { rec.onRespond(response(0, 0)); });

    // Flight 1: the flat single-hop paper shape.
    const auto flat = request(0, 1);
    at(eq, 100, [&] {
        rec.onIssue(flat);
        rec.onOffer(flat);
    });
    at(eq, 101, [&] {
        rec.onGrant(flat);
        rec.onCheck(flat, true, 101, 102);
    });
    at(eq, 102, [&] { rec.onMemAccept(flat); });
    at(eq, 110, [&] { rec.onRespond(response(0, 1)); });
    eq.run();

    rec.writeFlightsFile(flights_file.string());
    const auto doc = json::parseJson(slurp(flights_file));
    fs::remove_all(dir);
    ASSERT_TRUE(doc.has_value());
    const json::JsonValue *table = doc->at("flights");
    ASSERT_NE(table, nullptr);
    ASSERT_EQ(table->elements().size(), 2u);

    // Slowest first: the cascaded flight carries the per-level pairs.
    const json::JsonValue &cascaded = table->elements()[0];
    const json::JsonValue *hops = cascaded.at("xbarHops");
    ASSERT_NE(hops, nullptr);
    ASSERT_EQ(hops->elements().size(), 2u);
    EXPECT_EQ(hops->elements()[0].at("offer")->asNumber(), 0.0);
    EXPECT_EQ(hops->elements()[0].at("grant")->asNumber(), 2.0);
    EXPECT_EQ(hops->elements()[1].at("offer")->asNumber(), 2.0);
    EXPECT_EQ(hops->elements()[1].at("grant")->asNumber(), 5.0);

    // The flat flight's record keeps the original byte shape: no
    // xbarHops key at all.
    EXPECT_EQ(table->elements()[1].at("xbarHops"), nullptr);
}

TEST(FlightRecorder, TopNKeepsTheSlowestFlights)
{
    EventQueue eq;
    FlightRecorder rec(eq, 2, "unit");

    // Three flights with end-to-end latencies 10, 40, 20.
    const Cycles latencies[] = {10, 40, 20};
    Cycles start = 0;
    for (std::uint64_t i = 0; i < 3; ++i) {
        const auto req = request(0, i);
        const Cycles s = start;
        at(eq, s, [&rec, req] { rec.onIssue(req); });
        at(eq, s, [&rec, req] {
            rec.onGrant(req);
            rec.onCheck(req, true, req.id * 100, req.id * 100);
        });
        at(eq, s, [&rec, req] { rec.onMemAccept(req); });
        at(eq, s + latencies[i], [&rec, req] {
            rec.onRespond(response(0, req.id));
        });
        start += 100;
    }
    // onCheck start/end above use absolute cycles of the grant.
    eq.run();

    EXPECT_EQ(rec.completedFlights(), 3u);
    const auto flights = rec.slowestFlights();
    ASSERT_EQ(flights.size(), 2u);
    EXPECT_EQ(flights[0].endToEnd(), 40u);
    EXPECT_EQ(flights[1].endToEnd(), 20u);
}

TEST(FlightRecorder, HistogramsAggregateIntoTheStatTree)
{
    EventQueue eq;
    FlightRecorder rec(eq, 4, "unit");

    for (std::uint64_t i = 0; i < 8; ++i) {
        const auto req = request(0, i);
        const Cycles s = i * 100;
        at(eq, s, [&rec, req] { rec.onIssue(req); });
        at(eq, s + 1, [&rec, req, s] {
            rec.onGrant(req);
            rec.onCheck(req, true, s + 1, s + 2);
        });
        at(eq, s + 2, [&rec, req] { rec.onMemAccept(req); });
        at(eq, s + 32, [&rec, req] {
            rec.onRespond(response(0, req.id));
        });
    }
    eq.run();

    const stats::StatBase *e2e = rec.statsRoot().find("endToEnd");
    ASSERT_NE(e2e, nullptr);
    const auto *hist = dynamic_cast<const stats::Histogram *>(e2e);
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->samples(), 8u);
    EXPECT_EQ(hist->minSeen(), 32u);
    EXPECT_EQ(hist->maxSeen(), 32u);

    // Attribution totals telescope across the whole run, too.
    std::ostringstream os;
    json::JsonWriter w(os);
    rec.statsRoot().dumpJson(w);
    const auto doc = json::parseJson(os.str());
    ASSERT_TRUE(doc.has_value());
    const double total =
        doc->at("attribution.endToEndCycles")->asNumber();
    const double parts =
        doc->at("attribution.xbarWaitCycles")->asNumber() +
        doc->at("attribution.checkCycles")->asNumber() +
        doc->at("attribution.drainCycles")->asNumber() +
        doc->at("attribution.memCycles")->asNumber();
    EXPECT_EQ(total, parts);
    EXPECT_EQ(total, 8 * 32.0);
}

TEST(FlightRecorder, EmptyArtefactsAreValidJson)
{
    const fs::path dir = fs::temp_directory_path() / "capcheck_flight";
    fs::create_directories(dir);
    const fs::path flights = dir / "empty.flights.json";
    const fs::path latency = dir / "empty.latency.json";

    FlightRecorder::writeEmptyFlightsFile(flights.string(), 10,
                                          "cpu-only");
    FlightRecorder::writeEmptyLatencyFile(latency.string(), "cpu-only");

    const auto fdoc = json::parseJson(slurp(flights));
    ASSERT_TRUE(fdoc.has_value());
    EXPECT_EQ(fdoc->at("label")->asString(), "cpu-only");
    EXPECT_TRUE(fdoc->at("flights")->elements().empty());

    const auto ldoc = json::parseJson(slurp(latency));
    ASSERT_TRUE(ldoc.has_value());
    EXPECT_EQ(ldoc->at("label")->asString(), "cpu-only");
    EXPECT_TRUE(ldoc->at("flights")->isObject());

    fs::remove_all(dir);
}

namespace
{

/**
 * Run @p req with flight recording and check, for every flight in the
 * artefact, that the per-hop breakdown telescopes to the end-to-end
 * latency (the in-run INVARIANT aborts the process otherwise, so this
 * doubles as a parse-level sanity check of the JSON shape).
 */
void
expectAttributionHolds(const RunRequest &req, const std::string &tag)
{
    const fs::path dir =
        fs::temp_directory_path() / ("capcheck_flight_" + tag);
    fs::create_directories(dir);
    const fs::path flights = dir / "run.flights.json";
    const fs::path latency = dir / "run.latency.json";

    obs::ObsOptions opts;
    opts.flightFile = flights.string();
    opts.latencyFile = latency.string();
    opts.topN = 16;
    opts.runLabel = req.label();
    req.execute(opts);

    const auto fdoc = json::parseJson(slurp(flights));
    ASSERT_TRUE(fdoc.has_value()) << tag;
    EXPECT_EQ(fdoc->at("label")->asString(), req.label());
    const json::JsonValue *table = fdoc->at("flights");
    ASSERT_NE(table, nullptr);
    EXPECT_FALSE(table->elements().empty()) << tag;
    for (const json::JsonValue &f : table->elements()) {
        const double sum = f.at("hops.xbarWait")->asNumber() +
                           f.at("hops.check")->asNumber() +
                           f.at("hops.drain")->asNumber() +
                           f.at("hops.mem")->asNumber();
        EXPECT_EQ(sum, f.at("endToEnd")->asNumber()) << tag;
    }

    const auto ldoc = json::parseJson(slurp(latency));
    ASSERT_TRUE(ldoc.has_value()) << tag;
    const double total =
        ldoc->at("flights.attribution.endToEndCycles")->asNumber();
    const double parts =
        ldoc->at("flights.attribution.xbarWaitCycles")->asNumber() +
        ldoc->at("flights.attribution.checkCycles")->asNumber() +
        ldoc->at("flights.attribution.drainCycles")->asNumber() +
        ldoc->at("flights.attribution.memCycles")->asNumber();
    EXPECT_EQ(total, parts) << tag;
    EXPECT_EQ(ldoc->at("flights.issued")->asNumber(),
              ldoc->at("flights.completed")->asNumber())
        << tag;

    fs::remove_all(dir);
}

system::SocConfig
config(SystemMode mode, capchecker::Provenance prov,
       unsigned cache_entries)
{
    SocConfigBuilder b;
    b.mode(mode).numInstances(2).seed(1).provenance(prov);
    if (cache_entries)
        b.capCache(cache_entries, 60);
    return b.build();
}

} // namespace

TEST(FlightRecorderIntegration, AttributionHoldsUnderFineProvenance)
{
    expectAttributionHolds(
        RunRequest::single("aes",
                           config(SystemMode::ccpuCaccel,
                                  capchecker::Provenance::fine, 0)),
        "fine");
}

TEST(FlightRecorderIntegration, AttributionHoldsUnderCoarseProvenance)
{
    expectAttributionHolds(
        RunRequest::single("aes",
                           config(SystemMode::ccpuCaccel,
                                  capchecker::Provenance::coarse, 0)),
        "coarse");
}

TEST(FlightRecorderIntegration, AttributionHoldsWithACapCache)
{
    expectAttributionHolds(
        RunRequest::single("gemm_ncubed",
                           config(SystemMode::ccpuCaccel,
                                  capchecker::Provenance::fine, 4)),
        "cache");
}

TEST(FlightRecorderIntegration, AttributionHoldsOnUnprotectedPath)
{
    expectAttributionHolds(
        RunRequest::single("aes",
                           config(SystemMode::cpuAccel,
                                  capchecker::Provenance::fine, 0)),
        "passthrough");
}

TEST(FlightRecorderIntegration, CacheOutcomesAppearInTheArtefacts)
{
    const fs::path dir =
        fs::temp_directory_path() / "capcheck_flight_outcomes";
    fs::create_directories(dir);
    const fs::path latency = dir / "run.latency.json";

    const auto req = RunRequest::single(
        "gemm_ncubed",
        config(SystemMode::ccpuCaccel, capchecker::Provenance::fine,
               4));
    obs::ObsOptions opts;
    opts.latencyFile = latency.string();
    opts.runLabel = req.label();
    req.execute(opts);

    const auto doc = json::parseJson(slurp(latency));
    ASSERT_TRUE(doc.has_value());
    const double hits = doc->at("flights.cacheHits")->asNumber();
    const double misses = doc->at("flights.cacheMisses")->asNumber();
    EXPECT_GT(hits + misses, 0.0);
    EXPECT_GT(misses, 0.0); // cold cache: the first accesses walk

    fs::remove_all(dir);
}
