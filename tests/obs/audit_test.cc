/** @file Tests for the JSONL security audit log. */

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/audit.hh"

using namespace capcheck;
using capchecker::ExceptionRecord;
using capchecker::Provenance;
using obs::AuditLog;

namespace
{

ExceptionRecord
denied()
{
    ExceptionRecord rec;
    rec.task = 3;
    rec.object = 7;
    rec.addr = 0x1040;
    rec.cmd = MemCmd::write;
    rec.reason = "address beyond capability bounds";
    rec.capValid = true;
    rec.capBase = 0x1000;
    rec.capLength = 64;
    rec.capPerms = 0x3;
    return rec;
}

} // namespace

TEST(AuditLog, RecordsBoundsWhenTheCapabilityMatched)
{
    AuditLog log;
    log.record(1234, denied(), Provenance::fine);
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log.records()[0],
              "{\"cycle\":1234,\"task\":3,\"object\":7,"
              "\"cmd\":\"write\",\"addr\":\"0x1040\","
              "\"reason\":\"address beyond capability bounds\","
              "\"capBase\":\"0x1000\",\"capLength\":64,"
              "\"capPerms\":\"0x3\",\"provenance\":\"fine\"}");
}

TEST(AuditLog, MissingCapabilityFieldsAreNull)
{
    ExceptionRecord rec;
    rec.task = 1;
    rec.object = 9;
    rec.addr = 0xdead;
    rec.cmd = MemCmd::read;
    rec.reason = "no capability for (task, object)";

    AuditLog log;
    log.record(0, rec, Provenance::coarse);
    const std::string &line = log.records()[0];
    EXPECT_NE(line.find("\"capBase\":null,\"capLength\":null,"
                        "\"capPerms\":null"),
              std::string::npos);
    EXPECT_NE(line.find("\"provenance\":\"coarse\""),
              std::string::npos);
    EXPECT_NE(line.find("\"cmd\":\"read\""), std::string::npos);
}

TEST(AuditLog, ReasonTextIsJsonEscaped)
{
    ExceptionRecord rec = denied();
    rec.reason = "line1\nline2 \"quoted\"";
    AuditLog log;
    log.record(5, rec, Provenance::fine);
    EXPECT_NE(log.records()[0].find("line1\\nline2 \\\"quoted\\\""),
              std::string::npos);
    // The raw control character never reaches the output.
    EXPECT_EQ(log.records()[0].find('\n'), std::string::npos);
}

TEST(AuditLog, WriteEmitsOneLinePerRecord)
{
    AuditLog log;
    log.record(1, denied(), Provenance::fine);
    log.record(2, denied(), Provenance::coarse);

    std::ostringstream os;
    log.write(os);
    const std::string body = os.str();
    ASSERT_FALSE(body.empty());
    EXPECT_EQ(body.back(), '\n');

    std::istringstream is(body);
    std::string line;
    std::size_t count = 0;
    while (std::getline(is, line)) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        ++count;
    }
    EXPECT_EQ(count, 2u);
}

TEST(AuditLog, WriteFileMatchesStreamOutput)
{
    namespace fs = std::filesystem;
    const fs::path file =
        fs::temp_directory_path() / "capcheck_audit_test.jsonl";
    fs::remove(file);

    AuditLog log;
    log.record(42, denied(), Provenance::coarse);
    ASSERT_TRUE(log.writeFile(file.string()));

    std::ifstream is(file);
    std::stringstream body;
    body << is.rdbuf();
    std::ostringstream expected;
    log.write(expected);
    EXPECT_EQ(body.str(), expected.str());
    fs::remove(file);
}
