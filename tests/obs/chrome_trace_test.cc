/** @file Tests for the Chrome trace-event timeline builder. */

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/chrome_trace.hh"

using namespace capcheck;
using obs::ChromeTrace;

namespace
{

std::string
render(const ChromeTrace &trace)
{
    std::ostringstream os;
    trace.write(os);
    return os.str();
}

} // namespace

TEST(ChromeTrace, EmptyTraceIsAValidArray)
{
    const std::string doc = render(ChromeTrace{});
    EXPECT_EQ(doc, "[\n\n]\n");
}

TEST(ChromeTrace, TracksBecomeThreadNameMetadata)
{
    ChromeTrace trace;
    EXPECT_EQ(trace.addTrack("CapChecker"), 0u);
    EXPECT_EQ(trace.addTrack("aes#0"), 1u);
    EXPECT_EQ(trace.numTracks(), 2u);

    const std::string doc = render(trace);
    EXPECT_NE(
        doc.find("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":0,\"args\":{\"name\":\"CapChecker\"}}"),
        std::string::npos);
    EXPECT_NE(doc.find("\"tid\":1,\"args\":{\"name\":\"aes#0\"}"),
              std::string::npos);
}

TEST(ChromeTrace, DurationInstantAndCounterEvents)
{
    ChromeTrace trace;
    const unsigned track = trace.addTrack("t");
    trace.duration(track, "task 0", "task", 100, 50,
                   "{\"task\":0,\"failed\":false}");
    trace.instant(track, "violation", "security", 120);
    trace.counter(track, "capCache", 130, "{\"hits\":3,\"misses\":1}");
    EXPECT_EQ(trace.numEvents(), 3u);

    const std::string doc = render(trace);
    EXPECT_NE(doc.find("{\"name\":\"task 0\",\"ph\":\"X\",\"cat\":"
                       "\"task\",\"pid\":1,\"tid\":0,\"ts\":100,"
                       "\"dur\":50,\"args\":{\"task\":0,\"failed\":"
                       "false}}"),
              std::string::npos);
    // Instant events carry thread scope and no dur.
    EXPECT_NE(doc.find("{\"name\":\"violation\",\"ph\":\"i\",\"cat\":"
                       "\"security\",\"pid\":1,\"tid\":0,\"ts\":120,"
                       "\"s\":\"t\"}"),
              std::string::npos);
    EXPECT_NE(doc.find("{\"name\":\"capCache\",\"ph\":\"C\",\"pid\":1,"
                       "\"tid\":0,\"ts\":130,\"args\":{\"hits\":3,"
                       "\"misses\":1}}"),
              std::string::npos);
}

TEST(ChromeTrace, EscapesEventNames)
{
    ChromeTrace trace;
    trace.instant(trace.addTrack("t\"rack"), "na\"me", "c\\at", 1);
    const std::string doc = render(trace);
    EXPECT_NE(doc.find("t\\\"rack"), std::string::npos);
    EXPECT_NE(doc.find("na\\\"me"), std::string::npos);
    EXPECT_NE(doc.find("c\\\\at"), std::string::npos);
}

TEST(ChromeTrace, EventsKeepEmissionOrder)
{
    ChromeTrace trace;
    const unsigned track = trace.addTrack("t");
    // Out-of-timestamp-order emission is preserved verbatim: the
    // simulation emits in deterministic order and viewers sort by ts.
    trace.instant(track, "second", "c", 20);
    trace.instant(track, "first", "c", 10);
    const std::string doc = render(trace);
    EXPECT_LT(doc.find("\"second\""), doc.find("\"first\""));
}

TEST(ChromeTrace, WriteFileRoundTrips)
{
    namespace fs = std::filesystem;
    const fs::path file =
        fs::temp_directory_path() / "capcheck_chrome_trace_test.json";
    fs::remove(file);

    ChromeTrace trace;
    trace.duration(trace.addTrack("t"), "ev", "c", 1, 2);
    ASSERT_TRUE(trace.writeFile(file.string()));

    std::ifstream is(file);
    std::stringstream body;
    body << is.rdbuf();
    EXPECT_EQ(body.str(), render(trace));
    fs::remove(file);
}
