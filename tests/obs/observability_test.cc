/**
 * @file
 * End-to-end tests for the observability layer: Chrome traces, stat
 * time-series, audit logs and flight-recorder artefacts must be
 * byte-identical at any --jobs (they are keyed purely by simulated
 * cycles), CPU-only runs must still produce valid (empty) outputs,
 * and enabling observability must not perturb the simulation itself.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/sweep_runner.hh"
#include "obs/options.hh"
#include "system/soc_config_builder.hh"

using namespace capcheck;
using namespace capcheck::harness;
using system::SocConfig;
using system::SocConfigBuilder;
using system::SystemMode;

namespace fs = std::filesystem;

namespace
{

SocConfig
smallConfig(SystemMode mode, std::uint64_t seed = 1)
{
    return SocConfigBuilder()
        .mode(mode)
        .numInstances(2)
        .seed(seed)
        .build();
}

/** Distinct requests only: every worker writes its own output files. */
std::vector<RunRequest>
uniqueBatch()
{
    std::vector<RunRequest> requests;
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        requests.push_back(RunRequest::single(
            "aes", smallConfig(SystemMode::ccpuAccel, seed)));
        requests.push_back(RunRequest::single(
            "aes", smallConfig(SystemMode::ccpuCaccel, seed)));
    }
    return requests;
}

SweepRunner::Options
observing(unsigned jobs, const fs::path &dir)
{
    SweepRunner::Options opts;
    opts.jobs = jobs;
    opts.cacheEnabled = false;
    opts.progress = nullptr;
    opts.traceDir = dir.string();
    opts.sampleInterval = 500;
    opts.auditDir = dir.string();
    opts.flightDir = dir.string();
    opts.latencyDir = dir.string();
    opts.topN = 5;
    return opts;
}

std::string
slurp(const fs::path &file)
{
    std::ifstream is(file);
    std::stringstream body;
    body << is.rdbuf();
    return body.str();
}

} // namespace

TEST(Observability, OutputsAreByteIdenticalAcrossJobCounts)
{
    const fs::path serial_dir =
        fs::temp_directory_path() / "capcheck_obs_serial";
    const fs::path parallel_dir =
        fs::temp_directory_path() / "capcheck_obs_parallel";
    fs::remove_all(serial_dir);
    fs::remove_all(parallel_dir);

    const auto requests = uniqueBatch();
    SweepRunner serial(observing(1, serial_dir));
    SweepRunner parallel(observing(8, parallel_dir));
    const auto outcomes = serial.run(requests, "obs");
    parallel.run(requests, "obs");

    for (const auto &out : outcomes) {
        const std::string hash = out.request.hashHex();
        for (const std::string &suffix :
             {std::string(".trace.json"), std::string(".samples.json"),
              std::string(".audit.jsonl"),
              std::string(".flights.json"),
              std::string(".latency.json")}) {
            const std::string name = "run-" + hash + suffix;
            ASSERT_TRUE(fs::exists(serial_dir / name)) << name;
            ASSERT_TRUE(fs::exists(parallel_dir / name)) << name;
            EXPECT_EQ(slurp(serial_dir / name),
                      slurp(parallel_dir / name))
                << name << " differs between --jobs 1 and --jobs 8";
        }
    }

    fs::remove_all(serial_dir);
    fs::remove_all(parallel_dir);
}

TEST(Observability, TraceContainsTheExpectedEventKinds)
{
    const fs::path dir =
        fs::temp_directory_path() / "capcheck_obs_kinds";
    fs::remove_all(dir);

    SweepRunner runner(observing(1, dir));
    const auto req = RunRequest::single(
        "aes", smallConfig(SystemMode::ccpuCaccel));
    const auto outcomes = runner.run({req}, "kinds");

    const std::string trace = slurp(
        dir / ("run-" + outcomes.front().request.hashHex() +
               ".trace.json"));
    EXPECT_EQ(trace.front(), '[');
    EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(trace.find("\"cat\":\"check\""), std::string::npos);
    EXPECT_NE(trace.find("\"cat\":\"task\""), std::string::npos);
    EXPECT_NE(trace.find("\"capInstall\""), std::string::npos);

    const std::string samples = slurp(
        dir / ("run-" + outcomes.front().request.hashHex() +
               ".samples.json"));
    EXPECT_NE(samples.find("\"interval\": 500"), std::string::npos);
    EXPECT_NE(samples.find("\"cycle\""), std::string::npos);

    fs::remove_all(dir);
}

TEST(Observability, CpuOnlyRunsWriteValidEmptyOutputs)
{
    const fs::path dir =
        fs::temp_directory_path() / "capcheck_obs_cpuonly";
    fs::remove_all(dir);

    SweepRunner runner(observing(1, dir));
    const auto req =
        RunRequest::single("aes", smallConfig(SystemMode::ccpu));
    const auto outcomes = runner.run({req}, "cpuonly");

    const std::string hash = outcomes.front().request.hashHex();
    // A CPU-only system has no accelerators, CapChecker or driver to
    // observe, but the promised files must still exist and parse.
    EXPECT_EQ(slurp(dir / ("run-" + hash + ".trace.json")),
              "[\n\n]\n");
    const std::string samples =
        slurp(dir / ("run-" + hash + ".samples.json"));
    EXPECT_NE(samples.find("\"samples\": []"), std::string::npos);
    EXPECT_TRUE(fs::exists(dir / ("run-" + hash + ".audit.jsonl")));
    EXPECT_TRUE(
        fs::is_empty(dir / ("run-" + hash + ".audit.jsonl")));
    const std::string flights =
        slurp(dir / ("run-" + hash + ".flights.json"));
    EXPECT_NE(flights.find("\"issued\": 0"), std::string::npos);
    EXPECT_NE(flights.find("\"label\""), std::string::npos);
    const std::string latency =
        slurp(dir / ("run-" + hash + ".latency.json"));
    EXPECT_NE(latency.find("\"flights\": {}"), std::string::npos);

    fs::remove_all(dir);
}

TEST(Observability, EnablingObservationDoesNotPerturbTheRun)
{
    const fs::path dir =
        fs::temp_directory_path() / "capcheck_obs_perturb";
    fs::remove_all(dir);
    fs::create_directories(dir);

    const auto req = RunRequest::single(
        "aes", smallConfig(SystemMode::ccpuCaccel));
    const system::RunResult plain = req.execute();

    obs::ObsOptions obs_opts;
    obs_opts.traceFile = (dir / "perturb.trace.json").string();
    obs_opts.samplesFile = (dir / "perturb.samples.json").string();
    obs_opts.sampleInterval = 100;
    obs_opts.auditFile = (dir / "perturb.audit.jsonl").string();
    obs_opts.flightFile = (dir / "perturb.flights.json").string();
    obs_opts.latencyFile = (dir / "perturb.latency.json").string();
    obs_opts.runLabel = req.label();
    const system::RunResult observed = req.execute(obs_opts);

    // Probes and listeners are pure observers: every simulated number
    // (cycles, stats, per-task results) must be bit-identical.
    EXPECT_EQ(plain, observed);

    fs::remove_all(dir);
}
