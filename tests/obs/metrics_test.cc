/**
 * @file
 * Unit tests for the serving-layer metrics registry and the request
 * spans: get-or-create semantics, snapshot determinism, the
 * byte-identical JSON round-trip contract the stats wire frame
 * depends on, Prometheus exposition shape, thread-safety under
 * concurrent writers, and the span-sum INVARIANT.
 */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/json_value.hh"
#include "base/logging.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"

using namespace capcheck;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::RequestSpan;

namespace
{

MetricsSnapshot
reparse(const std::string &text)
{
    std::string err;
    auto v = json::parseJson(text, &err);
    EXPECT_TRUE(v.has_value()) << err;
    std::string ferr;
    auto snap = MetricsSnapshot::fromJson(*v, &ferr);
    EXPECT_TRUE(snap.has_value()) << ferr;
    return snap.value_or(MetricsSnapshot{});
}

} // namespace

TEST(Metrics, GetOrCreateReturnsTheSameInstrument)
{
    MetricsRegistry reg;
    auto &a = reg.counter("requests.executed", "fresh sims");
    auto &b = reg.counter("requests.executed", "ignored help");
    EXPECT_EQ(&a, &b);
    a.inc();
    b.inc(2);
    EXPECT_EQ(a.value(), 3u);

    auto &g = reg.gauge("queue.depth");
    g.set(5);
    g.add(2);
    g.sub(3);
    EXPECT_EQ(g.value(), 4);
    EXPECT_EQ(&g, &reg.gauge("queue.depth"));

    auto &h = reg.histogram("span.endToEnd");
    EXPECT_EQ(&h, &reg.histogram("span.endToEnd"));

    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].help, "fresh sims")
        << "the first caller's help must stick";
    EXPECT_EQ(snap.counterValue("requests.executed"), 3u);
    EXPECT_EQ(snap.gaugeValue("queue.depth"), 4);
    EXPECT_EQ(snap.counterValue("no.such.counter"), 0u);
    EXPECT_EQ(snap.findHisto("span.endToEnd")->samples, 0u);
}

TEST(Metrics, SnapshotKeepsRegistrationOrder)
{
    MetricsRegistry reg;
    reg.counter("zebra");
    reg.counter("aardvark");
    reg.gauge("zulu");
    reg.gauge("alpha");
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].name, "zebra");
    EXPECT_EQ(snap.counters[1].name, "aardvark");
    ASSERT_EQ(snap.gauges.size(), 2u);
    EXPECT_EQ(snap.gauges[0].name, "zulu");
    EXPECT_EQ(snap.gauges[1].name, "alpha");
}

TEST(Metrics, HistogramReusesLog2BucketGeometry)
{
    MetricsRegistry reg;
    auto &h = reg.histogram("span.queue", "queue wait");
    for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 900ull, 1000ull})
        h.observe(v);
    const MetricsSnapshot::Histo snap = h.snapshot();
    EXPECT_EQ(snap.samples, 6u);
    EXPECT_EQ(snap.sum, 1906u);
    EXPECT_EQ(snap.min, 0u);
    EXPECT_EQ(snap.max, 1000u);
    EXPECT_GT(snap.p95, snap.p50);
    // Sparse buckets: 0, 1, {2,3}, {512..1023}.
    ASSERT_EQ(snap.buckets.size(), 4u);
    EXPECT_EQ(snap.buckets[0].index, 0u);
    EXPECT_EQ(snap.buckets[0].count, 1u);
    EXPECT_EQ(snap.buckets[2].index, 2u);
    EXPECT_EQ(snap.buckets[2].count, 2u);
    EXPECT_EQ(snap.buckets[3].index, 10u);
    EXPECT_EQ(snap.buckets[3].count, 2u);
    EXPECT_DOUBLE_EQ(snap.mean(), 1906.0 / 6.0);
}

TEST(Metrics, JsonRoundTripIsByteIdentical)
{
    MetricsRegistry reg;
    reg.counter("requests.executed", "fresh sims").inc(41);
    reg.gauge("queue.depth", "queued units").set(-3);
    auto &h = reg.histogram("span.endToEnd", "service time");
    for (std::uint64_t v = 1; v <= 1000; v *= 3)
        h.observe(v);

    const std::string text = reg.snapshot().toJsonText();
    const MetricsSnapshot back = reparse(text);
    EXPECT_EQ(back.toJsonText(), text)
        << "encode -> parse -> re-encode must be byte-stable";
    EXPECT_EQ(back.counterValue("requests.executed"), 41u);
    EXPECT_EQ(back.gaugeValue("queue.depth"), -3);
    const MetricsSnapshot::Histo *histo =
        back.findHisto("span.endToEnd");
    ASSERT_NE(histo, nullptr);
    EXPECT_EQ(histo->samples, 7u);
    EXPECT_EQ(histo->help, "service time");
}

TEST(Metrics, EmptySnapshotRoundTripsToo)
{
    MetricsRegistry reg;
    const std::string text = reg.snapshot().toJsonText();
    const MetricsSnapshot back = reparse(text);
    EXPECT_TRUE(back.empty());
    EXPECT_EQ(back.toJsonText(), text);
}

TEST(Metrics, FromJsonRejectsShapeErrors)
{
    std::string err;
    auto v = json::parseJson("{\"counters\":7}", &err);
    ASSERT_TRUE(v.has_value());
    std::string ferr;
    EXPECT_FALSE(MetricsSnapshot::fromJson(*v, &ferr).has_value());
    EXPECT_FALSE(ferr.empty());
}

TEST(Metrics, PrometheusExpositionShape)
{
    MetricsRegistry reg;
    reg.counter("requests.executed", "fresh sims").inc(4);
    reg.gauge("queue.depth").set(2);
    auto &h = reg.histogram("span.endToEnd", "service time");
    h.observe(1);
    h.observe(5);
    h.observe(900);

    const std::string text = reg.snapshot().prometheusText();
    EXPECT_NE(text.find("# HELP capcheck_requests_executed "
                        "fresh sims\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE capcheck_requests_executed counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("capcheck_requests_executed 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE capcheck_queue_depth gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE capcheck_span_endToEnd histogram\n"),
              std::string::npos);
    // Cumulative buckets: le="1" sees one sample, le="7" two, +Inf
    // all three; _count and _sum close the series.
    EXPECT_NE(text.find("capcheck_span_endToEnd_bucket{le=\"1\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("capcheck_span_endToEnd_bucket{le=\"7\"} 2\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("capcheck_span_endToEnd_bucket{le=\"+Inf\"} 3\n"),
        std::string::npos);
    EXPECT_NE(text.find("capcheck_span_endToEnd_count 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("capcheck_span_endToEnd_sum 906\n"),
              std::string::npos);
}

TEST(Metrics, PrometheusEscapesHelpText)
{
    // HELP text escapes backslash and newline per the exposition
    // format (quotes are legal in HELP and pass through).
    EXPECT_EQ(obs::prometheusEscapeHelp("plain help"), "plain help");
    EXPECT_EQ(obs::prometheusEscapeHelp("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::prometheusEscapeHelp("two\nlines"), "two\\nlines");
    EXPECT_EQ(obs::prometheusEscapeHelp("say \"hi\""), "say \"hi\"");

    MetricsRegistry reg;
    reg.counter("odd.help", "first\nsecond \\ line").inc();
    const std::string text = reg.snapshot().prometheusText();
    EXPECT_NE(text.find("# HELP capcheck_odd_help "
                        "first\\nsecond \\\\ line\n"),
              std::string::npos);
    // The raw newline must not have leaked into the exposition.
    EXPECT_EQ(text.find("first\nsecond"), std::string::npos);
}

TEST(Metrics, PrometheusEscapesLabelValues)
{
    // Label values escape backslash, double-quote and newline.
    EXPECT_EQ(obs::prometheusEscapeLabel("plain"), "plain");
    EXPECT_EQ(obs::prometheusEscapeLabel("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::prometheusEscapeLabel("say \"hi\""),
              "say \\\"hi\\\"");
    EXPECT_EQ(obs::prometheusEscapeLabel("two\nlines"),
              "two\\nlines");

    MetricsRegistry reg;
    reg.counter("requests.executed").inc();
    const std::string text = reg.snapshot().prometheusText({
        {"socket", "/tmp/od\"d\\path\nx.sock"},
        {"protocol", "3"},
    });
    // The info gauge leads the exposition and carries the metadata
    // as properly escaped label values.
    EXPECT_EQ(text.rfind("# HELP capcheck_info ", 0), 0u)
        << text.substr(0, 120);
    EXPECT_NE(
        text.find("capcheck_info{socket=\"/tmp/od\\\"d\\\\path\\nx"
                  ".sock\",protocol=\"3\"} 1\n"),
        std::string::npos)
        << text;
    // Exactly one exposition line mentions the socket path, and no
    // raw newline from the value survives anywhere.
    EXPECT_EQ(text.find("x.sock"), text.rfind("x.sock"));
    EXPECT_EQ(text.find("path\nx"), std::string::npos);
}

TEST(Metrics, PrometheusOmitsInfoGaugeWithoutLabels)
{
    MetricsRegistry reg;
    reg.counter("requests.executed").inc();
    EXPECT_EQ(reg.snapshot().prometheusText().find("capcheck_info"),
              std::string::npos);
}

TEST(Metrics, ConcurrentWritersLoseNothing)
{
    MetricsRegistry reg;
    auto &counter = reg.counter("hits");
    auto &gauge = reg.gauge("level");
    auto &histo = reg.histogram("lat");
    constexpr unsigned kThreads = 8;
    constexpr unsigned kIters = 5000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (unsigned i = 0; i < kIters; ++i) {
                counter.inc();
                gauge.add(1);
                histo.observe(i % 64);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counterValue("hits"),
              std::uint64_t{kThreads} * kIters);
    EXPECT_EQ(snap.gaugeValue("level"),
              std::int64_t{kThreads} * kIters);
    EXPECT_EQ(snap.findHisto("lat")->samples,
              std::uint64_t{kThreads} * kIters);
}

TEST(Span, SegmentsTelescopeToEndToEnd)
{
    RequestSpan span;
    span.traceId = "t#0";
    span.received = 100;
    span.admitted = 150;
    span.dequeued = 400;
    span.executed = 900;
    span.rendered = 950;
    span.streamed = 1000;
    EXPECT_EQ(span.admitNanos(), 50);
    EXPECT_EQ(span.queueNanos(), 250);
    EXPECT_EQ(span.executeNanos(), 500);
    EXPECT_EQ(span.renderNanos(), 50);
    EXPECT_EQ(span.streamNanos(), 50);
    EXPECT_EQ(span.endToEndNanos(), 900);
    EXPECT_EQ(span.admitNanos() + span.queueNanos() +
                  span.executeNanos() + span.renderNanos() +
                  span.streamNanos(),
              span.endToEndNanos());
    EXPECT_NO_THROW(span.checkInvariant());
}

TEST(Span, NonMonotoneStampsViolateTheInvariant)
{
    RequestSpan span;
    span.traceId = "t#1";
    span.received = 100;
    span.admitted = 90; // admitted before received
    span.dequeued = span.executed = 200;
    span.rendered = 210;
    span.streamed = 220;
    EXPECT_THROW(span.checkInvariant(), SimError);
}

TEST(Span, ClockIsMonotone)
{
    obs::SpanClock clock;
    const std::int64_t a = clock.nowNanos();
    const std::int64_t b = clock.nowNanos();
    EXPECT_GE(a, 0);
    EXPECT_GE(b, a);
}
