/** @file Tests for the periodic StatGroup sampler. */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "base/stats.hh"
#include "obs/sampler.hh"
#include "sim/eventq.hh"

using namespace capcheck;
using obs::StatsSampler;

namespace
{

/** Occurrences of @p needle in @p haystack. */
std::size_t
countOf(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

std::string
render(const StatsSampler &sampler)
{
    std::ostringstream os;
    sampler.write(os);
    return os.str();
}

} // namespace

TEST(StatsSampler, SamplesOnIntervalBoundaries)
{
    stats::StatGroup root("soc");
    stats::Scalar counter(root, "events", "events seen so far");

    EventQueue eq;
    StatsSampler sampler(root, 100);
    sampler.attach(eq);

    // The cycle probe fires when time advances *to* a cycle, before
    // that cycle's events run, and the sampler snapshots on the first
    // advance at or past each interval boundary.
    LambdaEvent early([&] { counter += 1; });
    LambdaEvent later([&] { counter += 10; });
    LambdaEvent last([&] { counter += 100; });
    eq.schedule(&early, 10);
    eq.schedule(&later, 150);
    eq.schedule(&last, 250);
    eq.run();

    sampler.finalize(300);
    EXPECT_EQ(sampler.numSamples(), 3u); // cycles 150, 250, 300

    const std::string doc = render(sampler);
    EXPECT_NE(doc.find("\"interval\": 100"), std::string::npos);
    EXPECT_NE(doc.find("\"cycle\": 150"), std::string::npos);
    EXPECT_NE(doc.find("\"cycle\": 250"), std::string::npos);
    EXPECT_NE(doc.find("\"cycle\": 300"), std::string::npos);
    // Each snapshot happened before that cycle's own event ran.
    EXPECT_EQ(countOf(doc, "\"events\": 1\n"), 1u);   // at 150
    EXPECT_EQ(countOf(doc, "\"events\": 11\n"), 1u);  // at 250
    EXPECT_EQ(countOf(doc, "\"events\": 111\n"), 1u); // at 300
}

TEST(StatsSampler, FinalizeSkipsDuplicateEndSnapshot)
{
    stats::StatGroup root("soc");
    stats::Scalar counter(root, "events", "events seen so far");

    StatsSampler sampler(root, 50);
    sampler.sampleNow(200);
    sampler.finalize(200);
    EXPECT_EQ(sampler.numSamples(), 1u);

    sampler.finalize(300); // a later end cycle does add a snapshot
    EXPECT_EQ(sampler.numSamples(), 2u);
}

TEST(StatsSampler, FinalizeDetachesFromTheQueue)
{
    stats::StatGroup root("soc");
    EventQueue eq;
    StatsSampler sampler(root, 10);

    ASSERT_FALSE(eq.cycleProbe().connected());
    sampler.attach(eq);
    EXPECT_TRUE(eq.cycleProbe().connected());
    sampler.finalize(0);
    EXPECT_FALSE(eq.cycleProbe().connected());
}

TEST(StatsSampler, SnapshotsAreIndependentOfLaterUpdates)
{
    stats::StatGroup root("soc");
    stats::Scalar counter(root, "events", "events seen so far");

    StatsSampler sampler(root, 10);
    counter += 5;
    sampler.sampleNow(10);
    counter += 5; // must not retroactively change the first snapshot

    const std::string doc = render(sampler);
    EXPECT_EQ(countOf(doc, "\"events\": 5\n"), 1u);
}

TEST(StatsSampler, EmptySeriesStillWritesValidShape)
{
    stats::StatGroup root("soc");
    StatsSampler sampler(root, 1000);
    const std::string doc = render(sampler);
    EXPECT_NE(doc.find("\"interval\": 1000"), std::string::npos);
    EXPECT_NE(doc.find("\"samples\": []"), std::string::npos);
}
