/**
 * @file
 * Unit tests for the host-time self-profiler (obs/prof): site
 * registration idempotence, scope attribution (self vs total,
 * nesting, recursion), the exact-books "other" domain, merge
 * semantics for per-thread buffers, JSON/folded output shape, and
 * the disabled fast path.
 */

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/json_value.hh"
#include "obs/prof.hh"

using namespace capcheck;
using prof::ProfileSession;
using prof::RunProfile;
using prof::ScopeTimer;

namespace
{

/** Busy-wait so a scope accumulates a nonzero steady_clock delta. */
void
spin()
{
    const auto t0 = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - t0 <
           std::chrono::microseconds(200)) {
    }
}

const RunProfile::SiteTotals *
findSite(const std::vector<RunProfile::SiteTotals> &rows,
         const std::string &domain, const std::string &name)
{
    for (const auto &row : rows) {
        if (row.domain == domain && row.name == name)
            return &row;
    }
    return nullptr;
}

} // namespace

TEST(Prof, RegisterSiteIsIdempotent)
{
    const prof::SiteId a = prof::registerSite("t.reg", "alpha");
    const prof::SiteId b = prof::registerSite("t.reg", "alpha");
    const prof::SiteId c = prof::registerSite("t.reg", "beta");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);

    const auto table = prof::siteTable();
    ASSERT_GT(table.size(), a);
    EXPECT_EQ(table[a].domain, "t.reg");
    EXPECT_EQ(table[a].name, "alpha");
}

TEST(Prof, NoScopesRecordWithoutASession)
{
    // current() is null outside a session, so ScopeTimer is inert.
    ASSERT_EQ(prof::current(), nullptr);
    const prof::SiteId site = prof::registerSite("t.idle", "scope");
    {
        const ScopeTimer timer(site);
        spin();
    }
    RunProfile profile;
    EXPECT_EQ(profile.wallNanos(), 0u);
    EXPECT_TRUE(profile.siteTotals().empty());
}

TEST(Prof, SessionAttributesScopesAndWall)
{
    if (!prof::compiledIn())
        GTEST_SKIP() << "profiler compiled out";
    const prof::SiteId site = prof::registerSite("t.one", "work");

    RunProfile profile;
    {
        const ProfileSession session(profile);
        EXPECT_EQ(prof::current(), &profile);
        const ScopeTimer timer(site);
        spin();
    }
    EXPECT_EQ(prof::current(), nullptr);

    const auto sites = profile.siteTotals();
    const auto *row = findSite(sites, "t.one", "work");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->calls, 1u);
    EXPECT_GT(row->selfNanos, 0u);
    EXPECT_EQ(row->selfNanos, row->totalNanos);
    // The scope ran inside the session window.
    EXPECT_GE(profile.wallNanos(), row->selfNanos);
}

TEST(Prof, NestedScopesSplitSelfFromTotal)
{
    if (!prof::compiledIn())
        GTEST_SKIP() << "profiler compiled out";
    const prof::SiteId outer = prof::registerSite("t.nest", "outer");
    const prof::SiteId inner = prof::registerSite("t.nest", "inner");

    RunProfile profile;
    {
        const ProfileSession session(profile);
        const ScopeTimer a(outer);
        spin();
        {
            const ScopeTimer b(inner);
            spin();
        }
    }

    const auto sites = profile.siteTotals();
    const auto *o = findSite(sites, "t.nest", "outer");
    const auto *i = findSite(sites, "t.nest", "inner");
    ASSERT_NE(o, nullptr);
    ASSERT_NE(i, nullptr);
    // Outer's total covers the inner scope; its self does not.
    EXPECT_GE(o->totalNanos, o->selfNanos + i->selfNanos);
    EXPECT_EQ(i->selfNanos, i->totalNanos);
}

TEST(Prof, RecursionCountsTotalOnceButEveryCall)
{
    if (!prof::compiledIn())
        GTEST_SKIP() << "profiler compiled out";
    const prof::SiteId site = prof::registerSite("t.rec", "fib");

    RunProfile profile;
    {
        const ProfileSession session(profile);
        const ScopeTimer a(site);
        spin();
        {
            const ScopeTimer b(site);
            spin();
            {
                const ScopeTimer c(site);
                spin();
            }
        }
    }

    const auto sites = profile.siteTotals();
    const auto *row = findSite(sites, "t.rec", "fib");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->calls, 3u);
    // All three activations contribute self time, but total is the
    // outermost activation only — no double counting, so total can
    // never exceed the session wall.
    EXPECT_GE(row->selfNanos, row->totalNanos * 9 / 10);
    EXPECT_LE(row->totalNanos, profile.wallNanos());
}

TEST(Prof, OtherDomainClosesTheBooks)
{
    if (!prof::compiledIn())
        GTEST_SKIP() << "profiler compiled out";
    const prof::SiteId site = prof::registerSite("t.books", "covered");

    RunProfile profile;
    {
        const ProfileSession session(profile);
        {
            const ScopeTimer timer(site);
            spin();
        }
        spin(); // unattributed session time -> "other"
    }

    const auto domains = profile.domainTotals();
    ASSERT_FALSE(domains.empty());
    EXPECT_EQ(domains.back().domain, "other");
    std::uint64_t selfSum = 0;
    for (const auto &dom : domains)
        selfSum += dom.selfNanos;
    EXPECT_EQ(selfSum, profile.wallNanos());
    EXPECT_GT(domains.back().selfNanos, 0u);
}

TEST(Prof, MergeFoldsSitesStacksAndWall)
{
    if (!prof::compiledIn())
        GTEST_SKIP() << "profiler compiled out";
    const prof::SiteId site = prof::registerSite("t.merge", "work");

    // Two per-thread buffers, merged at "run end" like SweepRunner
    // merges --jobs N workers.
    RunProfile a;
    RunProfile b;
    const auto fill = [&](RunProfile &profile) {
        const ProfileSession session(profile);
        const ScopeTimer timer(site);
        spin();
    };
    fill(a);
    std::thread worker(fill, std::ref(b));
    worker.join();

    RunProfile merged;
    merged.merge(a);
    merged.merge(b);

    const auto mergedSites = merged.siteTotals();
    const auto *row = findSite(mergedSites, "t.merge", "work");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->calls, 2u);
    const auto aSites = a.siteTotals();
    const auto bSites = b.siteTotals();
    const auto *ra = findSite(aSites, "t.merge", "work");
    const auto *rb = findSite(bSites, "t.merge", "work");
    ASSERT_NE(ra, nullptr);
    ASSERT_NE(rb, nullptr);
    EXPECT_EQ(row->selfNanos, ra->selfNanos + rb->selfNanos);
    EXPECT_EQ(merged.wallNanos(), a.wallNanos() + b.wallNanos());

    // Folded stacks merged too: one line per distinct stack plus the
    // trailing "other".
    const std::string folded = merged.foldedText();
    EXPECT_NE(folded.find("t.merge.work "), std::string::npos);
    EXPECT_NE(folded.find("other "), std::string::npos);
}

TEST(Prof, JsonHasTheDocumentedShape)
{
    if (!prof::compiledIn())
        GTEST_SKIP() << "profiler compiled out";
    const prof::SiteId site = prof::registerSite("t.json", "work");

    RunProfile profile;
    {
        const ProfileSession session(profile);
        const ScopeTimer timer(site);
        spin();
    }

    const std::string text = profile.json("kmp tasks=4", "fast");
    std::string err;
    const auto doc = json::parseJson(text, &err);
    ASSERT_TRUE(doc.has_value()) << err;
    ASSERT_TRUE(doc->isObject());
    EXPECT_EQ(doc->get("schema")->asString(), "capcheck.prof.v1");
    EXPECT_EQ(doc->get("label")->asString(), "kmp tasks=4");
    EXPECT_EQ(doc->get("kernel")->asString(), "fast");
    EXPECT_GT(doc->get("wallNanos")->asNumber(), 0.0);

    const json::JsonValue *domains = doc->get("domains");
    ASSERT_TRUE(domains && domains->isArray());
    double selfSum = 0;
    double shareSum = 0;
    for (const json::JsonValue &dom : domains->elements()) {
        selfSum += dom.get("selfNanos")->asNumber();
        shareSum += dom.get("share")->asNumber();
    }
    // Domain self times sum to the wall time exactly; shares to 1
    // within floating-point rounding.
    EXPECT_EQ(selfSum, doc->get("wallNanos")->asNumber());
    EXPECT_NEAR(shareSum, 1.0, 1e-9);

    const json::JsonValue *sites = doc->get("sites");
    ASSERT_TRUE(sites && sites->isArray());
    bool found = false;
    for (const json::JsonValue &s : sites->elements()) {
        if (s.get("domain")->asString() == "t.json" &&
            s.get("name")->asString() == "work")
            found = true;
    }
    EXPECT_TRUE(found);

    // Deterministic shape: rendering twice yields identical bytes.
    EXPECT_EQ(text, profile.json("kmp tasks=4", "fast"));
}

TEST(Prof, ProfScopeMacroCompilesInAnyBlock)
{
    RunProfile profile;
    {
        const ProfileSession session(profile);
        PROF_SCOPE("t.macro", "block");
        spin();
    }
    if (!prof::compiledIn()) {
        EXPECT_TRUE(profile.siteTotals().empty());
        return;
    }
    const auto sites = profile.siteTotals();
    const auto *row = findSite(sites, "t.macro", "block");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->calls, 1u);
}
