#include <gtest/gtest.h>

#include "accel/trace_player.hh"
#include "base/logging.hh"
#include "capchecker/capchecker.hh"
#include "mem/interconnect.hh"
#include "mem/mem_ctrl.hh"
#include "protect/check_stage.hh"
#include "protect/no_protection.hh"

namespace capcheck::accel
{
namespace
{

using workloads::BufferAccess;
using workloads::BufferPlacement;
using workloads::KernelSpec;

/** Small two-buffer spec: one streamed in/out, one external. */
KernelSpec
makeSpec(unsigned max_outstanding = 4)
{
    KernelSpec spec;
    spec.name = "t";
    spec.buffers = {
        {"stream", 64, BufferAccess::readWrite,
         BufferPlacement::streamed},
        {"ext", 64, BufferAccess::readWrite,
         BufferPlacement::external},
    };
    spec.timing.ilp = 4;
    spec.timing.maxOutstanding = max_outstanding;
    spec.timing.startupCycles = 2;
    return spec;
}

struct Platform
{
    explicit Platform(protect::ProtectionChecker &checker,
                      unsigned masters = 1)
        : root("t"), memctrl(eq, &root, 10),
          stage(eq, &root, checker), xbar(eq, &root, masters)
    {
        xbar.memSide().bind(stage.cpuSide());
        stage.memSide().bind(memctrl.cpuSide());
    }

    EventQueue eq;
    stats::StatGroup root;
    MemoryController memctrl;
    protect::CheckStage stage;
    AxiInterconnect xbar;
};

std::vector<BufferMapping>
mappings()
{
    return {{0x1000, 64, {}}, {0x2000, 64, {}}};
}

TEST(TracePlayer, RunsStreamsAndBodyToCompletion)
{
    protect::NoProtection none;
    Platform plat(none);

    InstanceTrace trace;
    trace.ops.push_back(TraceOp::access(MemCmd::read, 1, 0, 8));
    trace.ops.push_back(TraceOp::delay(5));
    trace.ops.push_back(TraceOp::access(MemCmd::write, 1, 8, 8));
    trace.ops.push_back(TraceOp::barrier());

    const KernelSpec spec = makeSpec();
    TracePlayer player(plat.eq, &plat.root, "p0", spec, trace,
                       mappings(), 0, 0, AddressingMode{});
    player.memSide().bind(plat.xbar.accelSide(0));
    bool done_cb = false;
    player.onDone([&] { done_cb = true; });
    player.start(0);
    plat.eq.run();

    EXPECT_TRUE(player.done());
    EXPECT_FALSE(player.failed());
    EXPECT_TRUE(done_cb);
    // Streams: 8 in-beats + 8 out-beats; body: 2 beats.
    EXPECT_EQ(plat.xbar.beatsGranted(), 18u);
    EXPECT_GT(player.finishCycle(), 18u);
}

TEST(TracePlayer, StartDelayDefersIssue)
{
    protect::NoProtection none;
    Platform plat(none);
    InstanceTrace trace;
    const KernelSpec spec = makeSpec();
    TracePlayer player(plat.eq, &plat.root, "p0", spec, trace,
                       mappings(), 0, 0, AddressingMode{});
    player.memSide().bind(plat.xbar.accelSide(0));
    player.start(100);
    plat.eq.run();
    EXPECT_TRUE(player.done());
    EXPECT_GT(player.finishCycle(),
              100u + spec.timing.startupCycles);
}

TEST(TracePlayer, DelaysExtendRuntime)
{
    protect::NoProtection none;

    auto run_with_delay = [&](Cycles delay) {
        Platform plat(none);
        InstanceTrace trace;
        trace.ops.push_back(TraceOp::delay(delay));
        const KernelSpec spec = makeSpec();
        TracePlayer player(plat.eq, &plat.root, "p0", spec, trace,
                           mappings(), 0, 0, AddressingMode{});
        player.memSide().bind(plat.xbar.accelSide(0));
        player.start(0);
        plat.eq.run();
        return player.finishCycle();
    };

    // The delay replaces the single cycle the op itself would occupy.
    EXPECT_EQ(run_with_delay(500) - run_with_delay(0), 499u);
    EXPECT_EQ(run_with_delay(100) - run_with_delay(0), 99u);
}

TEST(TracePlayer, MaxOutstandingThrottlesIssue)
{
    protect::NoProtection none;

    auto run_with_credits = [&](unsigned credits) {
        Platform plat(none);
        InstanceTrace trace;
        for (unsigned i = 0; i < 8; ++i)
            trace.ops.push_back(TraceOp::access(MemCmd::read, 1, 0, 8));
        const KernelSpec spec = makeSpec(credits);
        TracePlayer player(plat.eq, &plat.root, "p0", spec, trace,
                           mappings(), 0, 0, AddressingMode{});
        player.memSide().bind(plat.xbar.accelSide(0));
        player.start(0);
        plat.eq.run();
        return player.finishCycle();
    };

    // credit 1: each body access waits a full round trip.
    EXPECT_GT(run_with_credits(1), run_with_credits(8) + 30);
}

TEST(TracePlayer, DeniedBeatAbortsInstance)
{
    capchecker::CapChecker checker; // nothing installed: denies all
    Platform plat(checker);

    InstanceTrace trace;
    trace.ops.push_back(TraceOp::access(MemCmd::read, 1, 0, 8));
    const KernelSpec spec = makeSpec();
    TracePlayer player(plat.eq, &plat.root, "p0", spec, trace,
                       mappings(), 0, 0, AddressingMode{});
    player.memSide().bind(plat.xbar.accelSide(0));
    player.start(0);
    plat.eq.run();

    EXPECT_TRUE(player.done());
    EXPECT_TRUE(player.failed());
    EXPECT_TRUE(checker.exceptionFlagSet());
}

TEST(TracePlayer, FineMetadataTravelsWithRequests)
{
    capchecker::CapChecker checker;
    checker.installCapability(0, 0,
                              cheri::Capability::root()
                                  .setBounds(0x1000, 64)
                                  .andPerms(cheri::permDataRW));
    checker.installCapability(0, 1,
                              cheri::Capability::root()
                                  .setBounds(0x2000, 64)
                                  .andPerms(cheri::permDataRW));
    Platform plat(checker);

    InstanceTrace trace;
    trace.ops.push_back(TraceOp::access(MemCmd::read, 1, 16, 8));
    const KernelSpec spec = makeSpec();
    TracePlayer player(plat.eq, &plat.root, "p0", spec, trace,
                       mappings(), 0, 0, AddressingMode{});
    player.memSide().bind(plat.xbar.accelSide(0));
    player.start(0);
    plat.eq.run();

    EXPECT_TRUE(player.done());
    EXPECT_FALSE(player.failed());
    EXPECT_EQ(checker.checksDenied(), 0u);
}

TEST(TracePlayer, CoarseAddressingFoldsObjectIntoAddress)
{
    capchecker::CapChecker::Params params;
    params.provenance = capchecker::Provenance::coarse;
    capchecker::CapChecker checker(params);
    checker.installCapability(0, 0,
                              cheri::Capability::root()
                                  .setBounds(0x1000, 64)
                                  .andPerms(cheri::permDataRW));
    checker.installCapability(0, 1,
                              cheri::Capability::root()
                                  .setBounds(0x2000, 64)
                                  .andPerms(cheri::permDataRW));
    Platform plat(checker);

    InstanceTrace trace;
    trace.ops.push_back(TraceOp::access(MemCmd::write, 1, 0, 8));
    AddressingMode addressing;
    addressing.objectMetadata = false;
    addressing.objectInAddress = true;
    const KernelSpec spec = makeSpec();
    TracePlayer player(plat.eq, &plat.root, "p0", spec, trace,
                       mappings(), 0, 0, addressing);
    player.memSide().bind(plat.xbar.accelSide(0));
    player.start(0);
    plat.eq.run();

    EXPECT_TRUE(player.done());
    EXPECT_FALSE(player.failed());
}

TEST(TracePlayer, TwoPlayersShareTheBus)
{
    protect::NoProtection none;
    Platform plat(none, /*masters=*/2);

    auto make_player = [&](PortId port) {
        InstanceTrace trace;
        for (unsigned i = 0; i < 8; ++i) {
            trace.ops.push_back(
                TraceOp::access(MemCmd::read, 1, (i % 8) * 8, 8));
        }
        static const KernelSpec spec = makeSpec(8);
        auto player = std::make_unique<TracePlayer>(
            plat.eq, &plat.root, "p" + std::to_string(port), spec,
            trace, mappings(), port, port, AddressingMode{});
        player->memSide().bind(plat.xbar.accelSide(port));
        return player;
    };

    auto p0 = make_player(0);
    auto p1 = make_player(1);
    p0->start(0);
    p1->start(0);
    plat.eq.run();

    EXPECT_TRUE(p0->done() && p1->done());
    // 2 x (16 stream-in + 16 stream-out... none: spec has stream buffer
    // of 64 B = 8 beats each way) + 2 x 8 body beats.
    EXPECT_EQ(plat.xbar.beatsGranted(), 2u * (8 + 8 + 8));
}

TEST(TracePlayer, DoubleStartPanics)
{
    protect::NoProtection none;
    Platform plat(none);
    const KernelSpec spec = makeSpec();
    TracePlayer player(plat.eq, &plat.root, "p0", spec, InstanceTrace{},
                       mappings(), 0, 0, AddressingMode{});
    player.memSide().bind(plat.xbar.accelSide(0));
    player.start(0);
    EXPECT_THROW(player.start(0), SimError);
    plat.eq.run();
}

} // namespace
} // namespace capcheck::accel
