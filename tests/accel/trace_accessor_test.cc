#include <gtest/gtest.h>

#include "accel/trace_accessor.hh"
#include "base/logging.hh"

namespace capcheck::accel
{
namespace
{

using workloads::BufferAccess;
using workloads::BufferPlacement;
using workloads::KernelSpec;

KernelSpec
makeSpec()
{
    KernelSpec spec;
    spec.name = "test";
    spec.buffers = {
        {"streamed_in", 64, BufferAccess::readOnly,
         BufferPlacement::streamed},
        {"external", 64, BufferAccess::readWrite,
         BufferPlacement::external},
        {"streamed_out", 64, BufferAccess::writeOnly,
         BufferPlacement::streamed},
    };
    spec.timing.ilp = 4;
    return spec;
}

std::vector<BufferMapping>
makeMappings()
{
    return {{0x1000, 64, {}}, {0x2000, 64, {}}, {0x3000, 64, {}}};
}

class TraceAccessorTest : public ::testing::Test
{
  protected:
    TraceAccessorTest()
        : spec(makeSpec()), mem(1 << 16),
          acc(mem, spec, makeMappings())
    {
    }

    KernelSpec spec;
    TaggedMemory mem;
    TraceAccessor acc;
};

TEST_F(TraceAccessorTest, FunctionalAccessHitsSharedMemory)
{
    acc.st<std::uint32_t>(1, 2, 0xabcd);
    EXPECT_EQ(mem.readValue<std::uint32_t>(0x2008), 0xabcdu);
    EXPECT_EQ(acc.ld<std::uint32_t>(1, 2), 0xabcdu);
}

TEST_F(TraceAccessorTest, ExternalAccessesAreTraced)
{
    acc.ld<std::uint32_t>(1, 0);
    acc.st<std::uint32_t>(1, 1, 7);
    const InstanceTrace trace = acc.take();
    ASSERT_EQ(trace.ops.size(), 2u);
    EXPECT_EQ(trace.ops[0].kind, TraceOp::Kind::access);
    EXPECT_EQ(trace.ops[0].cmd, MemCmd::read);
    EXPECT_EQ(trace.ops[0].obj, 1u);
    EXPECT_EQ(trace.ops[0].off, 0u);
    EXPECT_EQ(trace.ops[1].cmd, MemCmd::write);
    EXPECT_EQ(trace.ops[1].off, 4u);
}

TEST_F(TraceAccessorTest, StreamedAccessesProduceNoBeats)
{
    acc.ld<std::uint32_t>(0, 0);
    acc.st<std::uint32_t>(2, 0, 1);
    const InstanceTrace trace = acc.take();
    EXPECT_EQ(trace.accessBeats(), 0u);
}

TEST_F(TraceAccessorTest, ComputeAccumulatesAsPipelinedDelay)
{
    acc.computeInt(6);
    acc.computeFp(6); // 12 ops at ILP 4 -> 3 cycles
    acc.barrier();
    const InstanceTrace trace = acc.take();
    ASSERT_GE(trace.ops.size(), 2u);
    EXPECT_EQ(trace.ops[0].kind, TraceOp::Kind::delay);
    EXPECT_EQ(trace.ops[0].cycles, 3u);
    EXPECT_EQ(trace.ops[1].kind, TraceOp::Kind::barrier);
}

TEST_F(TraceAccessorTest, DelayFlushedBeforeExternalAccess)
{
    acc.computeInt(8);
    acc.ld<std::uint32_t>(1, 0);
    const InstanceTrace trace = acc.take();
    ASSERT_EQ(trace.ops.size(), 2u);
    EXPECT_EQ(trace.ops[0].kind, TraceOp::Kind::delay);
    EXPECT_EQ(trace.ops[0].cycles, 2u);
    EXPECT_EQ(trace.ops[1].kind, TraceOp::Kind::access);
}

TEST_F(TraceAccessorTest, ConsecutiveBarriersCoalesce)
{
    acc.barrier();
    acc.barrier();
    acc.barrier();
    const InstanceTrace trace = acc.take();
    EXPECT_EQ(trace.ops.size(), 1u);
}

TEST_F(TraceAccessorTest, TrailingComputeFlushedByTake)
{
    acc.computeFp(5);
    const InstanceTrace trace = acc.take();
    ASSERT_EQ(trace.ops.size(), 1u);
    EXPECT_EQ(trace.ops[0].cycles, 2u); // ceil(5/4)
}

TEST_F(TraceAccessorTest, CopyBetweenStreamedBuffersIsLocal)
{
    acc.st<std::uint64_t>(0, 0, 0x1122334455667788ull);
    acc.copy(2, 0, 0, 0, 32);
    EXPECT_EQ(mem.readValue<std::uint64_t>(0x3000),
              0x1122334455667788ull);
    EXPECT_EQ(acc.take().accessBeats(), 0u);
}

TEST_F(TraceAccessorTest, CopyWithExternalEndpointGeneratesBeats)
{
    acc.copy(1, 0, 0, 0, 32); // streamed -> external: 4 write beats
    const InstanceTrace trace = acc.take();
    EXPECT_EQ(trace.accessBeats(), 4u);
    for (const TraceOp &op : trace.ops) {
        if (op.kind == TraceOp::Kind::access) {
            EXPECT_EQ(op.cmd, MemCmd::write);
        }
    }
}

TEST_F(TraceAccessorTest, OutOfBufferPanics)
{
    EXPECT_THROW(acc.ld<std::uint64_t>(1, 8), SimError);
    EXPECT_THROW(acc.st<std::uint8_t>(9, 0, 1), SimError);
}

TEST_F(TraceAccessorTest, MappingCountMismatchIsFatal)
{
    EXPECT_THROW(TraceAccessor(mem, spec, {{0x1000, 64, {}}}),
                 SimError);
}

} // namespace
} // namespace capcheck::accel
