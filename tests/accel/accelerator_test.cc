#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "base/logging.hh"
#include "workloads/kernel.hh"

namespace capcheck::accel
{
namespace
{

TEST(Accelerator, ClaimAndRelease)
{
    Accelerator accel("gemm", workloads::kernelSpec("gemm_ncubed"), 2);
    const auto a = accel.claimInstance(10);
    const auto b = accel.claimInstance(11);
    ASSERT_TRUE(a && b);
    EXPECT_NE(*a, *b);
    EXPECT_FALSE(accel.claimInstance(12));

    accel.releaseInstance(*a);
    const auto c = accel.claimInstance(12);
    ASSERT_TRUE(c);
    EXPECT_EQ(*c, *a);
}

TEST(Accelerator, RegsTrackOwnership)
{
    Accelerator accel("aes", workloads::kernelSpec("aes"), 1);
    const auto idx = accel.claimInstance(42);
    ASSERT_TRUE(idx);
    EXPECT_TRUE(accel.regs(*idx).busy);
    EXPECT_EQ(accel.regs(*idx).task, 42u);
}

TEST(Accelerator, ReleaseClearsControlRegisters)
{
    Accelerator accel("aes", workloads::kernelSpec("aes"), 1);
    const auto idx = accel.claimInstance(1);
    ASSERT_TRUE(idx);
    accel.regs(*idx).objBase[0] = 0xdead0000;
    accel.regs(*idx).started = true;

    accel.releaseInstance(*idx);
    // Stale pointers must not leak to the next task (Fig. 6 (2)).
    EXPECT_EQ(accel.regs(*idx).objBase[0], 0u);
    EXPECT_FALSE(accel.regs(*idx).started);
    EXPECT_EQ(accel.regs(*idx).task, invalidTaskId);
}

TEST(Accelerator, ObjBaseRegisterPerBuffer)
{
    Accelerator accel("bfs", workloads::kernelSpec("bfs_bulk"), 3);
    EXPECT_EQ(accel.regs(0).objBase.size(), 5u);
    EXPECT_EQ(accel.controlRegCount(), 6u); // 5 pointers + start
}

TEST(Accelerator, ReleaseIdleInstancePanics)
{
    Accelerator accel("aes", workloads::kernelSpec("aes"), 1);
    EXPECT_THROW(accel.releaseInstance(0), SimError);
}

TEST(Accelerator, ZeroInstancesIsFatal)
{
    EXPECT_THROW(
        Accelerator("x", workloads::kernelSpec("aes"), 0), SimError);
}

} // namespace
} // namespace capcheck::accel
