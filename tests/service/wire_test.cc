/**
 * @file
 * Tests for the capcheckd wire messages and the full-fidelity
 * request/result JSON encodings under them: a request round-tripped
 * through the protocol must re-hash to the same key (including cost
 * parameters and topology file), a result must compare equal field by
 * field, and the defensive decode paths (hash mismatch, missing
 * fields) must fail with precise errors.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "base/json.hh"
#include "base/json_value.hh"
#include "harness/result_json.hh"
#include "service/wire.hh"
#include "system/soc_config_builder.hh"

using namespace capcheck;
using namespace capcheck::service;
using harness::RunRequest;
using system::SocConfigBuilder;
using system::SystemMode;

namespace
{

RunRequest
sampleRequest(std::uint64_t seed = 1)
{
    return RunRequest::single("aes",
                              SocConfigBuilder()
                                  .mode(SystemMode::ccpuCaccel)
                                  .numInstances(2)
                                  .seed(seed)
                                  .build());
}

std::string
encodeRequest(const RunRequest &req)
{
    std::ostringstream os;
    json::JsonWriter w(os);
    harness::writeRequestWireJson(w, req);
    return os.str();
}

json::JsonValue
parsed(const std::string &text)
{
    auto v = json::parseJson(text);
    EXPECT_TRUE(v.has_value()) << text;
    return std::move(*v);
}

} // namespace

TEST(Wire, RequestRoundTripPreservesTheHash)
{
    const RunRequest req = sampleRequest();
    std::string err;
    const auto back =
        harness::requestFromWireJson(parsed(encodeRequest(req)), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->hash(), req.hash());
    EXPECT_TRUE(*back == req);
}

TEST(Wire, RequestRoundTripKeepsNonDefaultCosts)
{
    // Cost parameters feed the hash but are omitted from the
    // human-facing run JSON; the wire encoding must carry them.
    RunRequest req = sampleRequest();
    req.config.cpuCosts.missPenalty += 7;
    req.config.driverCosts.iommuMapPerPage += 3;
    std::string err;
    const auto back =
        harness::requestFromWireJson(parsed(encodeRequest(req)), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->config.cpuCosts.missPenalty,
              req.config.cpuCosts.missPenalty);
    EXPECT_EQ(back->config.driverCosts.iommuMapPerPage,
              req.config.driverCosts.iommuMapPerPage);
    EXPECT_EQ(back->hash(), req.hash());
}

TEST(Wire, MixedRequestRoundTrips)
{
    const RunRequest req =
        RunRequest::mixed({"aes", "backprop"},
                          SocConfigBuilder()
                              .mode(SystemMode::ccpuAccel)
                              .numInstances(2)
                              .build());
    std::string err;
    const auto back =
        harness::requestFromWireJson(parsed(encodeRequest(req)), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->benchmarks, req.benchmarks);
    EXPECT_EQ(back->hash(), req.hash());
}

TEST(Wire, RequestDecodeReportsMissingFields)
{
    std::string err;
    EXPECT_FALSE(harness::requestFromWireJson(
                     parsed("{\"benchmarks\": [\"aes\"]}"), &err)
                     .has_value());
    EXPECT_FALSE(err.empty());
}

TEST(Wire, ResultRoundTripComparesEqual)
{
    // A synthetic result with every field non-default, so a dropped
    // field cannot hide behind a zero.
    system::RunResult result;
    result.benchmark = "aes";
    result.mode = SystemMode::ccpuCaccel;
    result.numTasks = 3;
    result.totalCycles = 123456;
    result.driverAllocCycles = 1111;
    result.kernelCycles = 2222;
    result.driverDeallocCycles = 333;
    result.initCycles = 44;
    result.functionallyCorrect = true;
    result.exceptions = 5;
    result.dmaBeats = 6789;
    result.peakTableEntries = 17;
    result.statsText = "line one\nline two\n";
    result.statsJson = "{\n  \"stats\": {}\n}";

    std::ostringstream os;
    json::JsonWriter w(os);
    harness::writeResultWireJson(w, result);
    std::string err;
    const auto back =
        harness::resultFromWireJson(parsed(os.str()), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(*back, result);
}

TEST(Wire, SubmitRoundTripCarriesOptionsAndRequests)
{
    harness::SweepOptions so;
    so.jsonDir = "/tmp/out";
    so.traceDir = "/tmp/tr";
    so.auditDir = "/tmp/au";
    so.sampleInterval = 500;
    so.topN = 4;
    so.cacheEnabled = false;
    const std::vector<RunRequest> reqs = {sampleRequest(1),
                                          sampleRequest(2)};
    const std::string msg = encodeSubmit(
        7, "grid", SubmitOptions::fromSweepOptions(so), reqs);

    std::string err;
    const auto back = submitFromJson(parsed(msg), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->batch, 7u);
    EXPECT_EQ(back->sweep, "grid");
    EXPECT_EQ(back->options.jsonDir, "/tmp/out");
    EXPECT_EQ(back->options.traceDir, "/tmp/tr");
    EXPECT_EQ(back->options.auditDir, "/tmp/au");
    EXPECT_EQ(back->options.sampleInterval, 500u);
    EXPECT_EQ(back->options.topN, 4u);
    EXPECT_TRUE(back->options.noCache);
    ASSERT_EQ(back->requests.size(), 2u);
    EXPECT_EQ(back->requests[0].hash(), reqs[0].hash());
    EXPECT_EQ(back->requests[1].hash(), reqs[1].hash());
}

TEST(Wire, SubmitRejectsAClientServerHashMismatch)
{
    // Tamper with a field after hashing: the server recomputes the
    // hash from decoded fields and must refuse to key a different
    // experiment under the client's claim.
    const std::string msg =
        encodeSubmit(1, "s", SubmitOptions{}, {sampleRequest()});
    std::string text = msg;
    const std::string needle = "\"numTasks\": 2";
    const auto pos = text.find(needle);
    ASSERT_NE(pos, std::string::npos) << msg;
    text.replace(pos, needle.size(), "\"numTasks\": 3");

    std::string err;
    EXPECT_FALSE(submitFromJson(parsed(text), &err).has_value());
    EXPECT_NE(err.find("hash mismatch"), std::string::npos) << err;
}

TEST(Wire, PingAndPongCarryTheProtocolVersion)
{
    const auto ping = parsed(encodePing());
    EXPECT_EQ(messageType(ping), "ping");
    const auto pong = parsed(encodePong());
    EXPECT_EQ(messageType(pong), "pong");
    const json::JsonValue *proto = pong.get("protocol");
    ASSERT_NE(proto, nullptr);
    EXPECT_EQ(static_cast<unsigned>(proto->asNumber()),
              protocolVersion);
}

TEST(Wire, StatsRoundTrip)
{
    ServiceStats stats;
    stats.executed = 10;
    stats.cacheHits = 20;
    stats.jobs = 4;
    stats.queueDepth = 3;
    stats.activeClients = 2;
    stats.rejectedOverload = 1;
    stats.memCache.entries = 5;
    stats.memCache.bytes = 5000;
    stats.memCache.hits = 7;
    stats.memCache.lookups = 9;
    stats.diskCache.entries = 6;
    stats.diskCache.evictions = 2;
    stats.diskCachePresent = true;

    const auto back = statsFromJson(parsed(encodeStats(stats)));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->executed, 10u);
    EXPECT_EQ(back->cacheHits, 20u);
    EXPECT_EQ(back->jobs, 4u);
    EXPECT_EQ(back->queueDepth, 3u);
    EXPECT_EQ(back->activeClients, 2u);
    EXPECT_EQ(back->rejectedOverload, 1u);
    EXPECT_EQ(back->memCache.entries, 5u);
    EXPECT_EQ(back->memCache.bytes, 5000u);
    EXPECT_EQ(back->memCache.hits, 7u);
    EXPECT_EQ(back->memCache.lookups, 9u);
    ASSERT_TRUE(back->diskCachePresent);
    EXPECT_EQ(back->diskCache.entries, 6u);
    EXPECT_EQ(back->diskCache.evictions, 2u);
}

TEST(Wire, StatsOmitsTheDiskBlockWhenAbsent)
{
    ServiceStats stats;
    const std::string text = encodeStats(stats);
    EXPECT_EQ(text.find("diskCache"), std::string::npos);
    const auto back = statsFromJson(parsed(text));
    ASSERT_TRUE(back.has_value());
    EXPECT_FALSE(back->diskCachePresent);
}

TEST(Wire, ErrorFramesCarryCodeBatchAndRetry)
{
    const auto v = parsed(
        encodeError(errOverloaded, "queue full", 42, 250));
    EXPECT_EQ(messageType(v), "error");
    EXPECT_EQ(v.get("code")->asString(), errOverloaded);
    EXPECT_EQ(v.get("message")->asString(), "queue full");
    EXPECT_EQ(v.get("batch")->asNumber(), 42.0);
    EXPECT_EQ(v.get("retryAfterMillis")->asNumber(), 250.0);

    const auto noBatch =
        parsed(encodeError(errBadFrame, "x", std::nullopt));
    EXPECT_EQ(noBatch.get("batch"), nullptr);
    EXPECT_EQ(noBatch.get("retryAfterMillis"), nullptr);
}

TEST(Wire, ResultFrameEmbedsTheRunJsonBodyVerbatim)
{
    const RunRequest req = sampleRequest();
    system::RunResult result;
    result.benchmark = "aes";
    result.statsJson = "{\n  \"a\": 1\n}";
    const std::string body = harness::runJson(req, result);

    const auto v = parsed(encodeResult(
        1, 0, req.hash(), RunStatus::executed, &result, &body, 1.5,
        std::string()));
    EXPECT_EQ(v.get("status")->asString(), "executed");
    EXPECT_EQ(v.get("hash")->asString(), req.hashHex());
    ASSERT_NE(v.get("resultJson"), nullptr);
    // The embedded body must survive JSON escaping byte-for-byte:
    // it is what the client writes to run-<hash>.json.
    EXPECT_EQ(v.get("resultJson")->asString(), body);
    std::string err;
    const auto back =
        harness::resultFromWireJson(*v.get("result"), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(*back, result);
}

TEST(Wire, RunStatusNamesAreStable)
{
    EXPECT_STREQ(runStatusName(RunStatus::executed), "executed");
    EXPECT_STREQ(runStatusName(RunStatus::cached), "cached");
    EXPECT_STREQ(runStatusName(RunStatus::failed), "failed");
}
