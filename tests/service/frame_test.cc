/**
 * @file
 * Tests for the capcheckd framing layer: header encode/decode, magic
 * and length-cap enforcement, and whole frames over a socketpair —
 * including the corruption cases (bad magic, truncated payload) that
 * must surface as structured FrameErrors, never as garbage JSON or an
 * unbounded allocation.
 */

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "service/frame.hh"
#include "service/socket.hh"

using namespace capcheck::service;

namespace
{

/** A connected AF_UNIX socketpair with RAII ends. */
struct Pair
{
    Fd a, b;

    Pair()
    {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = Fd(fds[0]);
        b = Fd(fds[1]);
    }
};

} // namespace

TEST(Frame, HeaderRoundTrips)
{
    char header[frameHeaderBytes];
    encodeFrameHeader(header, 123456);
    EXPECT_EQ(std::memcmp(header, frameMagic, sizeof(frameMagic)), 0);
    EXPECT_EQ(decodeFrameHeader(header, 0), 123456u);
    EXPECT_EQ(decodeFrameHeader(header, 123456), 123456u);
}

TEST(Frame, HeaderLengthIsLittleEndian)
{
    char header[frameHeaderBytes];
    encodeFrameHeader(header, 0x0102u);
    EXPECT_EQ(static_cast<unsigned char>(header[4]), 0x02u);
    EXPECT_EQ(static_cast<unsigned char>(header[5]), 0x01u);
    EXPECT_EQ(static_cast<unsigned char>(header[6]), 0x00u);
    EXPECT_EQ(static_cast<unsigned char>(header[7]), 0x00u);
}

TEST(Frame, BadMagicIsRejected)
{
    char header[frameHeaderBytes];
    encodeFrameHeader(header, 4);
    header[0] = 'X';
    try {
        decodeFrameHeader(header, 0);
        FAIL() << "bad magic accepted";
    } catch (const FrameError &e) {
        EXPECT_EQ(e.kind(), FrameError::Kind::badMagic);
    }
}

TEST(Frame, OversizeLengthIsRejected)
{
    char header[frameHeaderBytes];
    encodeFrameHeader(header, 1000);
    try {
        decodeFrameHeader(header, 999);
        FAIL() << "over-cap length accepted";
    } catch (const FrameError &e) {
        EXPECT_EQ(e.kind(), FrameError::Kind::oversize);
    }
}

TEST(Frame, RoundTripsOverASocket)
{
    Pair p;
    const std::string payload = "{\"type\":\"ping\"}";
    sendFrame(p.a.get(), payload);
    const auto got = recvFrame(p.b.get());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
}

TEST(Frame, EmptyPayloadRoundTrips)
{
    Pair p;
    sendFrame(p.a.get(), "");
    const auto got = recvFrame(p.b.get());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "");
}

TEST(Frame, SeveralFramesArriveInOrder)
{
    Pair p;
    sendFrame(p.a.get(), "one");
    sendFrame(p.a.get(), "two");
    sendFrame(p.a.get(), "three");
    EXPECT_EQ(recvFrame(p.b.get()).value(), "one");
    EXPECT_EQ(recvFrame(p.b.get()).value(), "two");
    EXPECT_EQ(recvFrame(p.b.get()).value(), "three");
}

TEST(Frame, CleanEofBetweenFramesIsNullopt)
{
    Pair p;
    sendFrame(p.a.get(), "last");
    p.a.reset();
    EXPECT_EQ(recvFrame(p.b.get()).value(), "last");
    EXPECT_FALSE(recvFrame(p.b.get()).has_value());
}

TEST(Frame, GarbageMagicOnTheWireIsBadMagic)
{
    Pair p;
    const char garbage[8] = {'G', 'A', 'R', 'B', 4, 0, 0, 0};
    ASSERT_TRUE(sendAll(p.a.get(), garbage, sizeof(garbage)));
    try {
        recvFrame(p.b.get());
        FAIL() << "garbage magic accepted";
    } catch (const FrameError &e) {
        EXPECT_EQ(e.kind(), FrameError::Kind::badMagic);
    }
}

TEST(Frame, TruncatedPayloadIsAnIoError)
{
    Pair p;
    char header[frameHeaderBytes];
    encodeFrameHeader(header, 100);
    ASSERT_TRUE(sendAll(p.a.get(), header, sizeof(header)));
    ASSERT_TRUE(sendAll(p.a.get(), "only ten b", 10));
    p.a.reset(); // EOF 90 bytes early
    try {
        recvFrame(p.b.get());
        FAIL() << "truncated frame accepted";
    } catch (const FrameError &e) {
        EXPECT_EQ(e.kind(), FrameError::Kind::io);
    }
}

TEST(Frame, ReceiverCapIsEnforcedPerCall)
{
    Pair p;
    sendFrame(p.a.get(), std::string(64, 'x'));
    try {
        recvFrame(p.b.get(), 16);
        FAIL() << "frame above the per-call cap accepted";
    } catch (const FrameError &e) {
        EXPECT_EQ(e.kind(), FrameError::Kind::oversize);
    }
}

TEST(Frame, LargeFrameSurvives)
{
    // Bigger than any single send/recv chunk the kernel will do at
    // once, so the sendAll/recvAll loops actually loop. Writer runs in
    // a thread: a megabyte cannot fit in the socket buffer.
    Pair p;
    std::string big(1u << 20, 'z');
    big[0] = 'a';
    big[big.size() - 1] = 'b';
    std::thread writer(
        [&] { sendFrame(p.a.get(), big); });
    const auto got = recvFrame(p.b.get(), 2u << 20);
    writer.join();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, big);
}
