/**
 * @file
 * Integration tests for the SweepService layer: the in-process
 * backend's streaming and cache attribution, a live capcheckd Server
 * driven through RemoteService over a temp socket (byte-identical
 * artefacts, restart-from-disk-cache), and the protocol's defensive
 * paths — garbage framing, oversize batches, overload rejection —
 * exercised against a real daemon.
 */

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/json.hh"
#include "harness/result_json.hh"
#include "service/frame.hh"
#include "service/inprocess.hh"
#include "service/remote.hh"
#include "service/server.hh"
#include "service/socket.hh"
#include "service/sweep_service.hh"
#include "service/wire.hh"
#include "system/soc_config_builder.hh"

using namespace capcheck;
using namespace capcheck::service;
using harness::RunRequest;
using harness::SweepOptions;
using system::SocConfigBuilder;
using system::SystemMode;

namespace
{

namespace fs = std::filesystem;

/** Scratch directory under /tmp; also keeps socket paths well inside
 *  the sun_path limit. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        path = fs::temp_directory_path() /
               ("capcheck_svc_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter++));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string str(const std::string &leaf) const
    {
        return (path / leaf).string();
    }

    static inline int counter = 0;
};

std::vector<RunRequest>
sampleBatch()
{
    std::vector<RunRequest> requests;
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        requests.push_back(
            RunRequest::single("aes", SocConfigBuilder()
                                          .mode(SystemMode::ccpuAccel)
                                          .numInstances(2)
                                          .seed(seed)
                                          .build()));
        requests.push_back(
            RunRequest::single("aes", SocConfigBuilder()
                                          .mode(SystemMode::ccpuCaccel)
                                          .numInstances(2)
                                          .seed(seed)
                                          .build()));
    }
    return requests;
}

/** A live Server on a socket under @p dir, torn down on scope exit. */
struct Daemon
{
    Server server;

    explicit Daemon(const TempDir &dir, unsigned jobs = 2,
                    std::string cache_dir = {},
                    std::size_t max_batch = 4096,
                    std::size_t max_inflight = 512,
                    std::size_t max_queue = 1024)
        : server([&] {
              ServerOptions o;
              o.socketPath = dir.str("d.sock");
              o.jobs = jobs;
              o.cacheDir = std::move(cache_dir);
              o.maxBatchRequests = max_batch;
              o.maxInflightPerClient = max_inflight;
              o.maxQueue = max_queue;
              return o;
          }())
    {
        server.start();
    }
    ~Daemon() { server.stop(); }
};

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** run-<hash>.json leaf → bytes, for artefact byte-compares. */
std::map<std::string, std::string>
runJsonFiles(const fs::path &dir)
{
    std::map<std::string, std::string> files;
    for (const auto &e : fs::directory_iterator(dir)) {
        const std::string leaf = e.path().filename().string();
        if (leaf.rfind("run-", 0) == 0 &&
            leaf.find(".manifest") == std::string::npos)
            files[leaf] = slurp(e.path());
    }
    return files;
}

/** A raw protocol peer for the malformed/defensive-path tests. */
struct RawClient
{
    Fd fd;

    explicit RawClient(const Server &server)
    {
        std::string err;
        fd = connectUnix(server.socketPath(), &err);
        EXPECT_TRUE(fd.valid()) << err;
    }

    json::JsonValue
    recv()
    {
        const auto payload = recvFrame(fd.get());
        EXPECT_TRUE(payload.has_value()) << "peer closed";
        auto v = json::parseJson(payload.value_or("null"));
        EXPECT_TRUE(v.has_value());
        return std::move(*v);
    }
};

} // namespace

TEST(Service, FactorySelectsTheBackendFromTheOptions)
{
    // Empty serverSocket → in-process; a live daemon's socket →
    // remote. Both satisfy ping().
    auto local = makeService(SweepOptions{});
    ASSERT_NE(local, nullptr);
    EXPECT_NE(dynamic_cast<InProcessService *>(local.get()), nullptr);
    EXPECT_TRUE(local->ping());

    TempDir dir;
    Daemon daemon(dir);
    auto remote = makeService(
        SweepOptions{}.withServerSocket(daemon.server.socketPath()));
    ASSERT_NE(remote, nullptr);
    EXPECT_NE(dynamic_cast<RemoteService *>(remote.get()), nullptr);
    EXPECT_TRUE(remote->ping());
}

TEST(Service, ConnectingToNothingFailsFast)
{
    TempDir dir;
    try {
        RemoteService svc(
            SweepOptions{}.withServerSocket(dir.str("absent.sock")));
        FAIL() << "connected to a socket nobody listens on";
    } catch (const ServiceError &e) {
        EXPECT_EQ(e.code(), errConnect);
    }
}

TEST(Service, InProcessStreamsEveryRequestAndAttributesCacheHits)
{
    auto batch = sampleBatch();
    batch.push_back(batch.front()); // duplicate → cached

    InProcessService svc(SweepOptions{}.withJobs(2));
    std::vector<StreamItem> seen;
    const auto outcomes =
        svc.submit(batch, "stream", [&](const StreamItem &item) {
            ASSERT_NE(item.result, nullptr);
            seen.push_back(item);
            seen.back().result = nullptr; // pointer dies with the call
        });

    ASSERT_EQ(outcomes.size(), batch.size());
    ASSERT_EQ(seen.size(), batch.size());
    std::set<std::size_t> indices;
    for (const auto &item : seen)
        indices.insert(item.index);
    EXPECT_EQ(indices.size(), batch.size()) << "an index streamed "
                                               "twice or not at all";

    // The duplicate is a cache hit with the first occurrence's result.
    EXPECT_TRUE(outcomes.back().cacheHit);
    EXPECT_FALSE(outcomes.front().cacheHit);
    EXPECT_EQ(outcomes.back().result, outcomes.front().result);

    const auto stats = svc.stats();
    EXPECT_EQ(stats.executed, batch.size() - 1);
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.jobs, 2u);
}

TEST(Service, RemoteMatchesInProcessByteForByte)
{
    TempDir dir;
    const auto batch = sampleBatch();

    InProcessService local(
        SweepOptions{}.withJobs(2).withJsonDir(dir.str("local")));
    const auto localOut = local.submit(batch, "grid");

    Daemon daemon(dir);
    RemoteService remote(
        SweepOptions{}
            .withJobs(2)
            .withJsonDir(dir.str("remote"))
            .withServerSocket(daemon.server.socketPath()));
    std::vector<StreamItem> seen;
    const auto remoteOut =
        remote.submit(batch, "grid", [&](const StreamItem &item) {
            seen.push_back(item);
            seen.back().result = nullptr;
            seen.back().resultJson = nullptr;
        });

    // Same outcomes, in input order, comparing every result field.
    ASSERT_EQ(remoteOut.size(), localOut.size());
    for (std::size_t i = 0; i < localOut.size(); ++i) {
        EXPECT_EQ(remoteOut[i].result, localOut[i].result) << i;
        EXPECT_EQ(remoteOut[i].cacheHit, localOut[i].cacheHit) << i;
    }
    EXPECT_EQ(seen.size(), batch.size());

    // Byte-identical run-<hash>.json artefacts.
    const auto localFiles = runJsonFiles(dir.str("local"));
    const auto remoteFiles = runJsonFiles(dir.str("remote"));
    ASSERT_EQ(localFiles.size(), batch.size());
    EXPECT_EQ(remoteFiles, localFiles);

    const auto stats = remote.stats();
    EXPECT_EQ(stats.executed, batch.size());
    EXPECT_EQ(stats.activeClients, 1u);
}

TEST(Service, MixedCachedAndFreshBatchesAgreeAcrossClients)
{
    TempDir dir;
    Daemon daemon(dir);
    const auto batch = sampleBatch();
    const auto opts = SweepOptions{}.withServerSocket(
        daemon.server.socketPath());

    RemoteService first(opts);
    const auto a = first.submit(batch, "warm");

    // A second client: half the old batch plus new seeds. The old
    // half must come back cached, with identical results.
    auto mixed = std::vector<RunRequest>(batch.begin(),
                                         batch.begin() + 2);
    mixed.push_back(
        RunRequest::single("aes", SocConfigBuilder()
                                      .mode(SystemMode::ccpuCaccel)
                                      .numInstances(2)
                                      .seed(99)
                                      .build()));
    RemoteService second(opts);
    std::vector<StreamItem> seen;
    const auto b =
        second.submit(mixed, "mixed", [&](const StreamItem &item) {
            seen.push_back(item);
            seen.back().result = nullptr;
            seen.back().resultJson = nullptr;
        });

    ASSERT_EQ(b.size(), 3u);
    EXPECT_TRUE(b[0].cacheHit);
    EXPECT_TRUE(b[1].cacheHit);
    EXPECT_FALSE(b[2].cacheHit);
    EXPECT_EQ(b[0].result, a[0].result);
    EXPECT_EQ(b[1].result, a[1].result);
    for (const auto &item : seen) {
        EXPECT_EQ(item.status == RunStatus::cached,
                  b[item.index].cacheHit);
    }

    const auto stats = second.stats();
    EXPECT_EQ(stats.executed, batch.size() + 1);
    EXPECT_EQ(stats.cacheHits, 2u);
}

TEST(Service, RestartedDaemonServesTheBatchFromTheDiskCache)
{
    TempDir dir;
    const auto batch = sampleBatch();
    std::vector<harness::RunOutcome> warm;
    {
        Daemon daemon(dir, 2, dir.str("cache"));
        RemoteService svc(SweepOptions{}.withServerSocket(
            daemon.server.socketPath()));
        warm = svc.submit(batch, "warm");
        EXPECT_EQ(svc.stats().executed, batch.size());
    }
    // A fresh daemon process on the same cache dir: every request is
    // a disk hit, nothing simulates again.
    Daemon daemon(dir, 2, dir.str("cache"));
    RemoteService svc(
        SweepOptions{}.withServerSocket(daemon.server.socketPath()));
    std::vector<StreamItem> seen;
    const auto cold =
        svc.submit(batch, "cold", [&](const StreamItem &item) {
            seen.push_back(item);
            seen.back().result = nullptr;
            seen.back().resultJson = nullptr;
        });

    for (const auto &item : seen)
        EXPECT_EQ(item.status, RunStatus::cached);
    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < warm.size(); ++i) {
        EXPECT_EQ(cold[i].result, warm[i].result) << i;
        EXPECT_TRUE(cold[i].cacheHit) << i;
    }
    const auto stats = svc.stats();
    EXPECT_EQ(stats.executed, 0u);
    EXPECT_EQ(stats.cacheHits, batch.size());
    ASSERT_TRUE(stats.diskCachePresent);
    EXPECT_EQ(stats.diskCache.entries, batch.size());
    EXPECT_GE(stats.diskCache.hits, batch.size());
}

TEST(Service, GarbageMagicGetsAStructuredErrorThenDisconnect)
{
    TempDir dir;
    Daemon daemon(dir);
    RawClient raw(daemon.server);
    const char garbage[8] = {'H', 'T', 'T', 'P', 0, 0, 0, 0};
    ASSERT_TRUE(sendAll(raw.fd.get(), garbage, sizeof(garbage)));

    const auto v = raw.recv();
    EXPECT_EQ(messageType(v), "error");
    EXPECT_EQ(v.get("code")->asString(), errBadFrame);
    // The daemon hangs up on framing corruption...
    EXPECT_FALSE(recvFrame(raw.fd.get()).has_value());
    // ...but keeps serving everyone else.
    RawClient next(daemon.server);
    sendFrame(next.fd.get(), encodePing());
    EXPECT_EQ(messageType(next.recv()), "pong");
}

TEST(Service, UnparseableJsonIsBadRequestNotFatal)
{
    TempDir dir;
    Daemon daemon(dir);
    RawClient raw(daemon.server);
    sendFrame(raw.fd.get(), "this is not json");
    const auto v = raw.recv();
    EXPECT_EQ(messageType(v), "error");
    EXPECT_EQ(v.get("code")->asString(), errBadRequest);
    // Same connection still works: framing was intact.
    sendFrame(raw.fd.get(), encodePing());
    EXPECT_EQ(messageType(raw.recv()), "pong");
}

TEST(Service, OversizeBatchIsRejectedBeforeAdmission)
{
    TempDir dir;
    Daemon daemon(dir, 1, {}, /*max_batch=*/1);
    RawClient raw(daemon.server);
    sendFrame(raw.fd.get(),
              encodeSubmit(5, "big", SubmitOptions{}, sampleBatch()));
    const auto v = raw.recv();
    EXPECT_EQ(messageType(v), "error");
    EXPECT_EQ(v.get("code")->asString(), errOversizeBatch);
    EXPECT_EQ(v.get("batch")->asNumber(), 5.0);
    EXPECT_EQ(daemon.server.stats().executed, 0u);
}

TEST(Service, OverloadRejectionIsAllOrNothingAndRetryable)
{
    TempDir dir;
    // In-flight cap of one: any batch of two is rejected atomically,
    // whatever the worker timing.
    Daemon daemon(dir, 1, {}, 4096, /*max_inflight=*/1);
    RawClient raw(daemon.server);
    sendFrame(raw.fd.get(),
              encodeSubmit(9, "burst", SubmitOptions{},
                           sampleBatch()));
    const auto v = raw.recv();
    EXPECT_EQ(messageType(v), "error");
    EXPECT_EQ(v.get("code")->asString(), errOverloaded);
    EXPECT_EQ(v.get("batch")->asNumber(), 9.0);
    ASSERT_NE(v.get("retryAfterMillis"), nullptr);
    EXPECT_GT(v.get("retryAfterMillis")->asNumber(), 0.0);

    const auto stats = daemon.server.stats();
    EXPECT_EQ(stats.executed, 0u);
    EXPECT_EQ(stats.rejectedOverload, 1u);

    // A batch within the cap on the same connection still runs.
    const std::vector<RunRequest> one = {sampleBatch().front()};
    sendFrame(raw.fd.get(),
              encodeSubmit(10, "single", SubmitOptions{}, one));
    std::vector<std::string> types;
    while (true) {
        const auto frame = raw.recv();
        types.push_back(messageType(frame));
        if (types.back() != "result")
            break;
    }
    ASSERT_EQ(types.size(), 2u);
    EXPECT_EQ(types[0], "result");
    EXPECT_EQ(types[1], "done");
}

TEST(Service, StatsFrameReportsTheDaemonConfiguration)
{
    TempDir dir;
    Daemon daemon(dir, 3, dir.str("cache"));
    RemoteService svc(
        SweepOptions{}.withServerSocket(daemon.server.socketPath()));
    const auto stats = svc.stats();
    EXPECT_EQ(stats.jobs, 3u);
    EXPECT_EQ(stats.executed, 0u);
    EXPECT_EQ(stats.activeClients, 1u);
    EXPECT_TRUE(stats.diskCachePresent);
    EXPECT_EQ(stats.diskCache.entries, 0u);
}
