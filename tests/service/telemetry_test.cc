/**
 * @file
 * Integration tests for the serving-layer telemetry: the versioned
 * ping/pong handshake, the byte-identical stats frame carrying the
 * registry snapshot, the Prometheus exposition file, the structured
 * JSONL server log, trace-id propagation, and the span-sum INVARIANT
 * checked under two concurrent clients with overlapping hashes.
 */

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/json_value.hh"
#include "harness/run_request.hh"
#include "obs/metrics.hh"
#include "service/frame.hh"
#include "service/remote.hh"
#include "service/server.hh"
#include "service/socket.hh"
#include "service/sweep_service.hh"
#include "service/wire.hh"
#include "system/soc_config_builder.hh"

using namespace capcheck;
using namespace capcheck::service;
using harness::RunRequest;
using harness::SweepOptions;
using system::SocConfigBuilder;
using system::SystemMode;

namespace
{

namespace fs = std::filesystem;

struct TempDir
{
    fs::path path;

    TempDir()
    {
        path = fs::temp_directory_path() /
               ("capcheck_tel_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter++));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string str(const std::string &leaf) const
    {
        return (path / leaf).string();
    }

    static inline int counter = 0;
};

std::vector<RunRequest>
sampleBatch()
{
    std::vector<RunRequest> requests;
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        requests.push_back(
            RunRequest::single("aes", SocConfigBuilder()
                                          .mode(SystemMode::ccpuAccel)
                                          .numInstances(2)
                                          .seed(seed)
                                          .build()));
        requests.push_back(
            RunRequest::single("aes", SocConfigBuilder()
                                          .mode(SystemMode::ccpuCaccel)
                                          .numInstances(2)
                                          .seed(seed)
                                          .build()));
    }
    return requests;
}

/** One framed request/reply against a raw connection. */
json::JsonValue
rawRoundTrip(Fd &conn, const std::string &payload)
{
    sendFrame(conn.get(), payload);
    auto reply = recvFrame(conn.get());
    EXPECT_TRUE(reply.has_value());
    std::string err;
    auto v = json::parseJson(reply.value_or("null"), &err);
    EXPECT_TRUE(v.has_value()) << err;
    return v ? std::move(*v) : json::JsonValue();
}

SweepOptions
clientOptions(const std::string &socket, const std::string &trace_id)
{
    SweepOptions opts;
    opts.serverSocket = socket;
    opts.traceId = trace_id;
    opts.jobs = 1;
    opts.progress = nullptr;
    return opts;
}

/** Parse every JSONL line of @p path. */
std::vector<json::JsonValue>
readJsonl(const std::string &path)
{
    std::vector<json::JsonValue> events;
    std::ifstream in(path);
    EXPECT_TRUE(static_cast<bool>(in)) << "missing " << path;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string err;
        auto v = json::parseJson(line, &err);
        EXPECT_TRUE(v.has_value()) << err << ": " << line;
        if (v)
            events.push_back(std::move(*v));
    }
    return events;
}

std::int64_t
num(const json::JsonValue &obj, const char *key)
{
    const json::JsonValue *v = obj.get(key);
    EXPECT_NE(v, nullptr) << "missing field " << key;
    return v ? static_cast<std::int64_t>(v->asNumber()) : 0;
}

std::string
str(const json::JsonValue &obj, const char *key)
{
    const json::JsonValue *v = obj.get(key);
    return v ? v->asString() : std::string();
}

} // namespace

TEST(Telemetry, PongCarriesProtocolVersionAndBuildHash)
{
    TempDir dir;
    ServerOptions so;
    so.socketPath = dir.str("d.sock");
    so.jobs = 1;
    Server server(so);
    server.start();

    std::string err;
    Fd conn = connectUnix(so.socketPath, &err);
    ASSERT_TRUE(conn.valid()) << err;
    const json::JsonValue pongv = rawRoundTrip(conn, encodePing());
    EXPECT_EQ(messageType(pongv), "pong");
    // The raw frame must carry the skew-detection fields...
    EXPECT_NE(pongv.get("protocolVersion"), nullptr);
    EXPECT_NE(pongv.get("build"), nullptr);
    // ...and the typed decoder must agree with this build.
    const auto pong = pongFromJson(pongv);
    ASSERT_TRUE(pong.has_value());
    EXPECT_EQ(pong->protocol, protocolVersion);
    EXPECT_EQ(pong->build, buildHash());
    EXPECT_EQ(pong->build.size(), 16u) << "hashHex is 16 hex chars";

    server.stop();
}

TEST(Telemetry, StatsFrameReEncodesByteIdentical)
{
    TempDir dir;
    ServerOptions so;
    so.socketPath = dir.str("d.sock");
    so.jobs = 2;
    Server server(so);
    server.start();

    // Give the registry non-trivial state first: fresh runs plus a
    // resubmit that hits the memory cache.
    RemoteService client(clientOptions(so.socketPath, "rt"));
    client.submit(sampleBatch(), "telemetry");
    client.submit(sampleBatch(), "telemetry");

    std::string err;
    Fd conn = connectUnix(so.socketPath, &err);
    ASSERT_TRUE(conn.valid()) << err;
    sendFrame(conn.get(), encodeStatsQuery());
    auto reply = recvFrame(conn.get());
    ASSERT_TRUE(reply.has_value());

    auto v = json::parseJson(*reply, &err);
    ASSERT_TRUE(v.has_value()) << err;
    auto stats = statsFromJson(*v);
    ASSERT_TRUE(stats.has_value());
    ASSERT_TRUE(stats->metricsPresent);
    EXPECT_FALSE(stats->metrics.empty());
    EXPECT_EQ(encodeStats(*stats), *reply)
        << "stats decode -> re-encode must be byte-stable";

    server.stop();
}

TEST(Telemetry, SpansSumAndCountersConserveUnderConcurrentClients)
{
    TempDir dir;
    ServerOptions so;
    so.socketPath = dir.str("d.sock");
    so.jobs = 2;
    so.jsonLogFile = dir.str("events.jsonl");
    so.metricsOutFile = dir.str("metrics.prom");
    so.metricsIntervalMillis = 50;
    Server server(so);
    server.start();

    // Two concurrent clients submitting the same hashes: every
    // admission outcome — fresh execution, coalesced waiter, memory
    // cache hit — shows up, and sendResult's span stamping has to
    // hold for all of them. Client B sends no trace id, so the
    // daemon must synthesize one.
    std::thread a([&] {
        RemoteService c(clientOptions(so.socketPath, "alpha"));
        c.submit(sampleBatch(), "telemetry");
        c.submit(sampleBatch(), "telemetry");
    });
    std::thread b([&] {
        RemoteService c(clientOptions(so.socketPath, ""));
        c.submit(sampleBatch(), "telemetry");
    });
    a.join();
    b.join();

    const ServiceStats stats = server.stats();
    ASSERT_TRUE(stats.metricsPresent);
    const obs::MetricsSnapshot &m = stats.metrics;

    // Conservation identities over the admission/outcome counters.
    EXPECT_EQ(m.counterValue("requests.received"),
              m.counterValue("requests.admitted") +
                  m.counterValue("requests.rejected"));
    EXPECT_EQ(m.counterValue("requests.admitted"),
              m.counterValue("requests.executed") +
                  m.counterValue("requests.cacheHitsMem") +
                  m.counterValue("requests.cacheHitsDisk") +
                  m.counterValue("requests.coalesced") +
                  m.counterValue("requests.failed"));
    EXPECT_EQ(m.counterValue("requests.received"), 12u);
    EXPECT_EQ(m.counterValue("requests.rejected"), 0u);
    EXPECT_EQ(m.counterValue("requests.executed"), 4u)
        << "4 distinct hashes simulate once across both clients";
    EXPECT_EQ(m.counterValue("requests.failed"), 0u);

    // The span histograms saw every admitted request.
    const obs::MetricsSnapshot::Histo *e2e =
        m.findHisto("span.endToEnd");
    ASSERT_NE(e2e, nullptr);
    EXPECT_EQ(e2e->samples, 12u);

    server.stop();

    // The JSONL log: one complete event per admitted request, each
    // satisfying the span-sum identity exactly, tagged with either
    // the client-provided or the synthesized trace id.
    std::size_t completes = 0, alpha = 0, synthesized = 0;
    for (const json::JsonValue &ev : readJsonl(so.jsonLogFile)) {
        if (str(ev, "event") != "complete")
            continue;
        ++completes;
        const std::int64_t sum =
            num(ev, "admitNanos") + num(ev, "queueNanos") +
            num(ev, "executeNanos") + num(ev, "renderNanos") +
            num(ev, "streamNanos");
        EXPECT_EQ(sum, num(ev, "endToEndNanos"))
            << "trace " << str(ev, "traceId");
        const std::string trace = str(ev, "traceId");
        if (trace.rfind("alpha#", 0) == 0)
            ++alpha;
        else if (trace.rfind("client", 0) == 0)
            ++synthesized;
        EXPECT_EQ(str(ev, "hash").size(), 16u);
    }
    EXPECT_EQ(completes, 12u);
    EXPECT_EQ(alpha, 8u);
    EXPECT_EQ(synthesized, 4u);

    // stop() wrote a final Prometheus exposition; it must agree with
    // the registry and carry the conservation inputs CI scrapes.
    std::ifstream prom(so.metricsOutFile);
    ASSERT_TRUE(static_cast<bool>(prom));
    std::ostringstream text;
    text << prom.rdbuf();
    EXPECT_NE(text.str().find("capcheck_requests_admitted 12\n"),
              std::string::npos)
        << text.str();
    EXPECT_NE(text.str().find("capcheck_span_endToEnd_count 12\n"),
              std::string::npos);
    EXPECT_NE(text.str().find("# TYPE capcheck_queue_depth gauge\n"),
              std::string::npos);
}

TEST(Telemetry, AdmitAndRejectEventsLandInTheJsonLog)
{
    TempDir dir;
    ServerOptions so;
    so.socketPath = dir.str("d.sock");
    so.jobs = 1;
    so.maxBatchRequests = 2; // force an oversizeBatch rejection
    so.jsonLogFile = dir.str("events.jsonl");
    Server server(so);
    server.start();

    RemoteService client(clientOptions(so.socketPath, "tiny"));
    std::vector<RunRequest> two = sampleBatch();
    two.resize(2);
    client.submit(two, "telemetry");
    EXPECT_THROW(client.submit(sampleBatch(), "telemetry"),
                 ServiceError);

    const ServiceStats stats = server.stats();
    ASSERT_TRUE(stats.metricsPresent);
    EXPECT_EQ(stats.metrics.counterValue("batches.rejected"), 1u);
    EXPECT_EQ(stats.metrics.counterValue("requests.rejected"), 4u);
    EXPECT_EQ(stats.metrics.counterValue("requests.received"), 6u);

    server.stop();

    std::size_t admits = 0, rejects = 0;
    for (const json::JsonValue &ev : readJsonl(so.jsonLogFile)) {
        const std::string kind = str(ev, "event");
        if (kind == "admit") {
            ++admits;
            EXPECT_EQ(num(ev, "requests"), 2);
        } else if (kind == "reject") {
            ++rejects;
            EXPECT_EQ(str(ev, "code"), errOversizeBatch);
            EXPECT_EQ(num(ev, "requests"), 4);
        }
    }
    EXPECT_EQ(admits, 1u);
    EXPECT_EQ(rejects, 1u);
}
