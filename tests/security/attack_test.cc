#include <gtest/gtest.h>

#include <map>

#include "security/scenarios.hh"

namespace capcheck::security
{
namespace
{

TEST(Cwe, CatalogMatchesPaperRowCount)
{
    // 20 group-(a) rows + 3 (b) + 5 (c) + 3 (d) + 2 (e) + 4 (f).
    EXPECT_EQ(cweCatalog().size(), 37u);
    EXPECT_NE(findCwe(822), nullptr);
    EXPECT_EQ(findCwe(822)->group, CweGroup::a);
    EXPECT_EQ(findCwe(416)->group, CweGroup::b);
    EXPECT_EQ(findCwe(121)->group, CweGroup::d);
    EXPECT_EQ(findCwe(401)->group, CweGroup::f);
    EXPECT_EQ(findCwe(9999), nullptr);
}

TEST(AttackLab, BufferOverflowGradesMatchPaper)
{
    const std::map<SchemeKind, Grade> expect = {
        {SchemeKind::none, Grade::none},
        {SchemeKind::iopmp, Grade::task},
        {SchemeKind::iommu, Grade::page},
        {SchemeKind::snpu, Grade::task},
        {SchemeKind::capCoarse, Grade::task},
        {SchemeKind::capFine, Grade::object},
    };
    for (const auto &[kind, grade] : expect) {
        AttackLab lab(kind);
        EXPECT_EQ(lab.bufferOverflow().grade, grade)
            << schemeName(kind);
    }
}

TEST(AttackLab, UnderflowGradesMatchPaper)
{
    // The paper singles out 124/127: IOMMUs fail to protect intra-page
    // buffer underflow unless buffers are page-aligned.
    const std::map<SchemeKind, Grade> expect = {
        {SchemeKind::none, Grade::none},
        {SchemeKind::iopmp, Grade::task},
        {SchemeKind::iommu, Grade::page},
        {SchemeKind::snpu, Grade::task},
        {SchemeKind::capCoarse, Grade::task},
        {SchemeKind::capFine, Grade::object},
    };
    for (const auto &[kind, grade] : expect) {
        AttackLab lab(kind);
        EXPECT_EQ(lab.bufferUnderflow().grade, grade)
            << schemeName(kind);
    }
}

TEST(AttackLab, WriteWhatWhereAndVariantsShareTheWorstCaseGrade)
{
    // The remaining group-(a) scenarios exercise distinct mechanics
    // (arbitrary write, scaled index, 32-bit wrap, bad length) but the
    // worst-case reachability — hence the Table 3 grade — matches the
    // paper's single row grade per scheme.
    for (const SchemeKind kind : allSchemes) {
        AttackLab lab(kind);
        const Grade reference = lab.bufferOverflow().grade;
        EXPECT_EQ(lab.writeWhatWhere().grade, reference)
            << schemeName(kind);
        EXPECT_EQ(lab.indexValidation().grade, reference)
            << schemeName(kind);
        EXPECT_EQ(lab.integerOverflow().grade, reference)
            << schemeName(kind);
        EXPECT_EQ(lab.incorrectLength().grade, reference)
            << schemeName(kind);
    }
}

TEST(AttackLab, UntrustedPointerGradesMatchPaper)
{
    const std::map<SchemeKind, Grade> expect = {
        {SchemeKind::none, Grade::none},
        {SchemeKind::iopmp, Grade::task},
        {SchemeKind::iommu, Grade::page},
        {SchemeKind::snpu, Grade::task},
        {SchemeKind::capCoarse, Grade::task},
        {SchemeKind::capFine, Grade::object},
    };
    for (const auto &[kind, grade] : expect) {
        AttackLab lab(kind);
        EXPECT_EQ(lab.untrustedPointer().grade, grade)
            << schemeName(kind);
    }
}

TEST(AttackLab, OnlyCapCheckerDefeatsForging)
{
    for (const SchemeKind kind : allSchemes) {
        const AttackOutcome outcome = runForgingDemo(kind);
        const bool defeated = outcome.grade == Grade::protectedFull;
        const bool is_capchecker = kind == SchemeKind::capCoarse ||
                                   kind == SchemeKind::capFine;
        EXPECT_EQ(defeated, is_capchecker) << schemeName(kind);
    }
}

TEST(AttackLab, ForgingIsDefeatedByTagClearingNotBlocking)
{
    // The CapChecker *allows* the write (it is in-bounds for the
    // attacker's own buffer) — the defence is the cleared tag.
    AttackLab lab(SchemeKind::capFine);
    const AttackOutcome outcome = lab.capabilityForging();
    ASSERT_EQ(outcome.probes.size(), 3u);
    EXPECT_TRUE(outcome.probes[0].allowed);  // write landed
    EXPECT_FALSE(outcome.probes[1].allowed); // tag gone
}

TEST(AttackLab, UseAfterFreeBlockedByAllButNone)
{
    for (const SchemeKind kind : allSchemes) {
        AttackLab lab(kind);
        const Grade grade = lab.useAfterFree().grade;
        if (kind == SchemeKind::none)
            EXPECT_EQ(grade, Grade::none) << schemeName(kind);
        else
            EXPECT_EQ(grade, Grade::protectedFull) << schemeName(kind);
    }
}

TEST(AttackLab, FixedAddressPointerBlockedByAllButNone)
{
    for (const SchemeKind kind : allSchemes) {
        AttackLab lab(kind);
        const Grade grade = lab.fixedAddressPointer().grade;
        if (kind == SchemeKind::none)
            EXPECT_EQ(grade, Grade::none) << schemeName(kind);
        else
            EXPECT_EQ(grade, Grade::protectedFull) << schemeName(kind);
    }
}

TEST(AttackLab, SanityProbeAlwaysPasses)
{
    // Every scheme must keep legitimate in-bounds accesses working.
    for (const SchemeKind kind : allSchemes) {
        AttackLab lab(kind);
        const AttackOutcome outcome = lab.bufferOverflow();
        ASSERT_FALSE(outcome.probes.empty());
        EXPECT_TRUE(outcome.probes[0].allowed) << schemeName(kind);
    }
}

TEST(Table3, MatrixShapeAndKeyCells)
{
    const auto matrix = buildTable3();
    EXPECT_EQ(matrix.size(), cweCatalog().size());

    auto cell = [&](unsigned cwe, SchemeKind kind) {
        for (const Table3Row &row : matrix) {
            if (row.entry.id == cwe) {
                for (std::size_t s = 0; s < allSchemes.size(); ++s) {
                    if (allSchemes[s] == kind)
                        return row.cells[s].grade;
                }
            }
        }
        ADD_FAILURE() << "missing cell " << cwe;
        return Grade::notApplicable;
    };

    // Spot-check the paper's key cells.
    EXPECT_EQ(cell(125, SchemeKind::capFine), Grade::object);
    EXPECT_EQ(cell(125, SchemeKind::capCoarse), Grade::task);
    EXPECT_EQ(cell(125, SchemeKind::iommu), Grade::page);
    EXPECT_EQ(cell(125, SchemeKind::none), Grade::none);
    EXPECT_EQ(cell(761, SchemeKind::capFine), Grade::object);
    EXPECT_EQ(cell(761, SchemeKind::iommu), Grade::none);
    EXPECT_EQ(cell(822, SchemeKind::capFine), Grade::object);
    EXPECT_EQ(cell(822, SchemeKind::capCoarse), Grade::task);
    EXPECT_EQ(cell(416, SchemeKind::iommu), Grade::protectedFull);
    EXPECT_EQ(cell(416, SchemeKind::none), Grade::none);
    EXPECT_EQ(cell(415, SchemeKind::none), Grade::protectedFull);
    EXPECT_EQ(cell(121, SchemeKind::capFine), Grade::notApplicable);
    EXPECT_EQ(cell(401, SchemeKind::capFine), Grade::none);
}

TEST(Table3, GroupAIsExecutedNotAsserted)
{
    const auto matrix = buildTable3();
    for (const Table3Row &row : matrix) {
        if (row.entry.group == CweGroup::a && row.entry.id != 761) {
            for (const Table3Cell &cell : row.cells)
                EXPECT_TRUE(cell.executed) << row.entry.id;
        }
        if (row.entry.group == CweGroup::f) {
            for (const Table3Cell &cell : row.cells)
                EXPECT_FALSE(cell.executed);
        }
    }
}

TEST(Grades, SymbolsAreStable)
{
    EXPECT_STREQ(gradeSymbol(Grade::none), "X");
    EXPECT_STREQ(gradeSymbol(Grade::page), "PG");
    EXPECT_STREQ(gradeSymbol(Grade::task), "TA");
    EXPECT_STREQ(gradeSymbol(Grade::object), "OB");
    EXPECT_STREQ(gradeSymbol(Grade::protectedFull), "ok");
    EXPECT_STREQ(gradeSymbol(Grade::notApplicable), "NA");
}

} // namespace
} // namespace capcheck::security
