/**
 * @file
 * Executable evidence for Table 3's group (c): the temporal
 * memory-safety weaknesses the trusted driver is responsible for
 * (under threat-model assumption 3), tied to the concrete CWE ids.
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "base/logging.hh"
#include "driver/driver.hh"
#include "workloads/kernel.hh"

namespace capcheck::driver
{
namespace
{

class TemporalSafety : public ::testing::Test
{
  protected:
    TemporalSafety()
        : mem(16 << 20), heap(0x100000, (16 << 20) - 0x100000),
          accel("aes", workloads::kernelSpec("aes"), 2)
    {
        app = tree.derive(
            tree.rootNode(), cheri::CapNodeKind::cpuTask,
            tree.capOf(tree.rootNode()).setBounds(0x100000, 15 << 20),
            "app");
    }

    TaggedMemory mem;
    RegionAllocator heap;
    cheri::CapTree tree;
    cheri::CapNodeId app = cheri::invalidCapNode;
    accel::Accelerator accel;
};

TEST_F(TemporalSafety, Cwe415DoubleFreeIsCaught)
{
    // CWE-415: freeing the same allocation twice is detected by the
    // driver's allocator bookkeeping, not silently corrupting state.
    Driver driver(mem, heap, tree, true, nullptr);
    auto handle = driver.allocateTask(accel, 0, app);
    ASSERT_TRUE(handle);
    const Addr base = handle->buffers[0].base;
    driver.deallocateTask(*handle, false);
    EXPECT_THROW(heap.free(base), SimError);
}

TEST_F(TemporalSafety, Cwe763ReleaseOfInvalidPointerIsCaught)
{
    // CWE-763: releasing an address that was never allocated.
    EXPECT_THROW(heap.free(0x123450), SimError);
}

TEST_F(TemporalSafety, Cwe590FreeOfNonHeapMemoryIsCaught)
{
    // CWE-590: an address outside the managed heap region.
    EXPECT_THROW(heap.free(0x10), SimError);
}

TEST_F(TemporalSafety, Cwe244HeapClearedBeforeReuseAfterException)
{
    // CWE-244: after a faulting task, the driver scrubs the buffers so
    // the next task allocated over the same memory sees no residue.
    capchecker::CapChecker checker;
    Driver driver(mem, heap, tree, true, &checker);

    auto victim = driver.allocateTask(accel, 0, app);
    ASSERT_TRUE(victim);
    const Addr base = victim->buffers[0].base;
    mem.writeValue<std::uint64_t>(base + 32, 0x5ec7e7aa11ull);
    driver.deallocateTask(*victim, /*had_exception=*/true);

    auto next = driver.allocateTask(accel, 1, app);
    ASSERT_TRUE(next);
    // First-fit: the new task reuses the same region — and reads 0.
    EXPECT_EQ(next->buffers[0].base, base);
    EXPECT_EQ(mem.readValue<std::uint64_t>(base + 32), 0u);
    driver.deallocateTask(*next, false);
}

TEST_F(TemporalSafety, Cwe416StaleCapabilitiesCannotAuthorizeDma)
{
    // CWE-416 at the hardware level: once a task is deallocated, its
    // capabilities are evicted and even its exact old addresses are
    // unreachable for its (reused) task id.
    capchecker::CapChecker checker;
    Driver driver(mem, heap, tree, true, &checker);

    auto handle = driver.allocateTask(accel, 7, app);
    ASSERT_TRUE(handle);
    const Addr base = handle->buffers[0].base;

    MemRequest req;
    req.cmd = MemCmd::read;
    req.addr = base + 8;
    req.size = 8;
    req.task = 7;
    req.object = 0;
    EXPECT_TRUE(checker.check(req).allowed);

    driver.deallocateTask(*handle, false);
    EXPECT_FALSE(checker.check(req).allowed);
}

TEST_F(TemporalSafety, ControlRegistersClearedBetweenUsers)
{
    // Fig. 6 (2): stale pointer registers must not leak from one user
    // of a functional unit to the next (CWE-824-adjacent).
    Driver driver(mem, heap, tree, true, nullptr);
    auto first = driver.allocateTask(accel, 0, app);
    ASSERT_TRUE(first);
    const unsigned instance = first->instance;
    EXPECT_NE(accel.regs(instance).objBase[0], 0u);
    driver.deallocateTask(*first, false);
    EXPECT_EQ(accel.regs(instance).objBase[0], 0u);
    EXPECT_FALSE(accel.regs(instance).started);
}

} // namespace
} // namespace capcheck::driver
