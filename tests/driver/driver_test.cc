#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "base/logging.hh"
#include "driver/driver.hh"
#include "workloads/kernel.hh"

namespace capcheck::driver
{
namespace
{

class DriverTest : public ::testing::Test
{
  protected:
    DriverTest()
        : mem(16 << 20), heap(0x100000, (16 << 20) - 0x100000),
          accel("gemm", workloads::kernelSpec("gemm_ncubed"), 8)
    {
        app = tree.derive(
            tree.rootNode(), cheri::CapNodeKind::cpuTask,
            tree.capOf(tree.rootNode()).setBounds(0x100000,
                                                  (15 << 20)),
            "app");
    }

    TaggedMemory mem;
    RegionAllocator heap;
    cheri::CapTree tree;
    cheri::CapNodeId app = cheri::invalidCapNode;
    accel::Accelerator accel;
};

TEST_F(DriverTest, AllocateInstallsCapabilitiesAndPointers)
{
    capchecker::CapChecker checker;
    Driver driver(mem, heap, tree, true, &checker);

    auto handle = driver.allocateTask(accel, 0, app);
    ASSERT_TRUE(handle);
    EXPECT_EQ(handle->buffers.size(), 3u);
    EXPECT_EQ(checker.capTable().used(), 3u);
    EXPECT_GT(handle->allocCycles, 0u);

    // Control registers carry the buffer base pointers.
    const auto &regs = accel.regs(handle->instance);
    EXPECT_TRUE(regs.started);
    for (unsigned i = 0; i < 3; ++i)
        EXPECT_EQ(regs.objBase[i], handle->buffers[i].base);

    // Capability tree: app -> accel task -> 3 buffers, all monotonic.
    EXPECT_EQ(tree.size(), 2u + 1u + 3u);
    EXPECT_TRUE(tree.audit().empty());
}

TEST_F(DriverTest, BufferPermsFollowAccessMode)
{
    capchecker::CapChecker checker;
    Driver driver(mem, heap, tree, true, &checker);
    auto handle = driver.allocateTask(accel, 0, app);
    ASSERT_TRUE(handle);

    // gemm: A/B read-only, C write-only.
    const auto *a = checker.capTable().lookup(0, 0);
    const auto *c = checker.capTable().lookup(0, 2);
    ASSERT_TRUE(a && c);
    EXPECT_TRUE(a->decoded.hasPerms(cheri::permLoad));
    EXPECT_FALSE(a->decoded.hasPerms(cheri::permStore));
    EXPECT_TRUE(c->decoded.hasPerms(cheri::permStore));
    EXPECT_FALSE(c->decoded.hasPerms(cheri::permLoad));
}

TEST_F(DriverTest, DeallocateReleasesEverything)
{
    capchecker::CapChecker checker;
    Driver driver(mem, heap, tree, true, &checker);
    auto handle = driver.allocateTask(accel, 0, app);
    ASSERT_TRUE(handle);
    const std::size_t live_before = heap.liveAllocations();

    driver.deallocateTask(*handle, false);
    EXPECT_EQ(checker.capTable().used(), 0u);
    EXPECT_EQ(heap.liveAllocations(), live_before - 3);
    EXPECT_EQ(tree.size(), 2u); // root + app only
    EXPECT_FALSE(accel.regs(handle->instance).busy);
}

TEST_F(DriverTest, ExceptionScrubsBuffers)
{
    capchecker::CapChecker checker;
    Driver driver(mem, heap, tree, true, &checker);
    auto handle = driver.allocateTask(accel, 0, app);
    ASSERT_TRUE(handle);

    const Addr base = handle->buffers[0].base;
    mem.writeValue<std::uint64_t>(base, 0x5ec3e7da7aull);

    const Cycles clean = driver.deallocateTask(*handle, true);
    EXPECT_EQ(mem.readValue<std::uint64_t>(base), 0u);

    // A clean teardown is cheaper (no scrubbing pass).
    auto handle2 = driver.allocateTask(accel, 1, app);
    ASSERT_TRUE(handle2);
    EXPECT_LT(driver.deallocateTask(*handle2, false), clean);
}

TEST_F(DriverTest, InstanceExhaustionReturnsNullopt)
{
    Driver driver(mem, heap, tree, true, nullptr);
    std::vector<TaskHandle> handles;
    for (unsigned t = 0; t < 8; ++t) {
        auto handle = driver.allocateTask(accel, t, app);
        ASSERT_TRUE(handle);
        handles.push_back(std::move(*handle));
    }
    EXPECT_FALSE(driver.allocateTask(accel, 8, app));

    // Releasing one instance unblocks allocation (Fig. 6's stall).
    driver.deallocateTask(handles[3], false);
    EXPECT_TRUE(driver.allocateTask(accel, 8, app));
    // Cleanup.
    for (unsigned i = 0; i < handles.size(); ++i) {
        if (i != 3)
            driver.deallocateTask(handles[i], false);
    }
}

TEST_F(DriverTest, CapTableExhaustionRollsBack)
{
    capchecker::CapChecker::Params params;
    params.tableEntries = 4; // gemm needs 3 per task
    capchecker::CapChecker checker(params);
    Driver driver(mem, heap, tree, true, &checker);

    auto first = driver.allocateTask(accel, 0, app);
    ASSERT_TRUE(first);
    const std::size_t live = heap.liveAllocations();

    // Second task cannot fit its three capabilities.
    auto second = driver.allocateTask(accel, 1, app);
    EXPECT_FALSE(second);
    // No leaked buffers, entries, tree nodes, or claimed instances.
    EXPECT_EQ(heap.liveAllocations(), live);
    EXPECT_EQ(checker.capTable().used(), 3u);
    EXPECT_TRUE(tree.audit().empty());

    // Evicting the first task's capabilities unblocks the next user.
    driver.deallocateTask(*first, false);
    EXPECT_TRUE(driver.allocateTask(accel, 2, app).has_value());
}

TEST_F(DriverTest, CoarseModeEncodesObjectIdsInPointers)
{
    capchecker::CapChecker::Params params;
    params.provenance = capchecker::Provenance::coarse;
    capchecker::CapChecker checker(params);
    Driver driver(mem, heap, tree, true, &checker);

    auto handle = driver.allocateTask(accel, 0, app);
    ASSERT_TRUE(handle);
    for (ObjectId obj = 0; obj < 3; ++obj) {
        EXPECT_EQ(handle->accelBases[obj] >>
                      capchecker::CapChecker::coarseAddrBits,
                  obj);
        EXPECT_EQ(handle->accelBases[obj] &
                      ((Addr{1} << 56) - 1),
                  handle->buffers[obj].base);
    }
    driver.deallocateTask(*handle, false);
}

TEST_F(DriverTest, NonCheriDriverSkipsCapabilityWork)
{
    Driver driver(mem, heap, tree, false, nullptr);
    auto handle = driver.allocateTask(accel, 0, app);
    ASSERT_TRUE(handle);
    EXPECT_EQ(tree.size(), 2u); // no derivations recorded
    EXPECT_FALSE(handle->buffers[0].cap.tag());
    driver.deallocateTask(*handle, false);
}

TEST_F(DriverTest, CapCheckerWithoutCheriCpuIsFatal)
{
    capchecker::CapChecker checker;
    EXPECT_THROW(Driver(mem, heap, tree, false, &checker), SimError);
}

TEST_F(DriverTest, IommuDriverMapsAndUnmapsPages)
{
    protect::Iommu iommu;
    Driver driver(mem, heap, tree, true, nullptr, &iommu);
    auto handle = driver.allocateTask(accel, 0, app);
    ASSERT_TRUE(handle);
    // 3 x 16 KiB buffers = 12 pages.
    EXPECT_EQ(iommu.entriesUsed(), 12u);
    driver.deallocateTask(*handle, false);
    EXPECT_EQ(iommu.entriesUsed(), 0u);
}

TEST_F(DriverTest, IopmpDriverProgramsRegions)
{
    protect::Iopmp iopmp(16);
    Driver driver(mem, heap, tree, true, nullptr, nullptr, &iopmp);
    auto handle = driver.allocateTask(accel, 0, app);
    ASSERT_TRUE(handle);
    EXPECT_EQ(iopmp.entriesUsed(), 3u);
    driver.deallocateTask(*handle, false);
    EXPECT_EQ(iopmp.entriesUsed(), 0u);
}

} // namespace
} // namespace capcheck::driver
